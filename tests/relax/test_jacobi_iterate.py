"""Tests for weighted Jacobi and the residual-driven iteration loop."""

import numpy as np
import pytest

from repro.grids.norms import residual_norm
from repro.grids.poisson import residual, rhs_scale
from repro.relax.iterate import iterate_until_residual
from repro.relax.jacobi import jacobi_sweeps, jacobi_weighted
from repro.relax.sor import sor_redblack
from repro.workloads.distributions import make_problem


class TestJacobi:
    def test_single_sweep_formula(self, rng):
        n = 5
        u = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        omega = 0.7
        r = residual(u, b)
        expected = u.copy()
        h2 = 1.0 / rhs_scale(n)
        expected[1:-1, 1:-1] += omega * h2 * 0.25 * r[1:-1, 1:-1]
        got = jacobi_weighted(u.copy(), b, omega)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_sweeps_reduce_residual(self):
        problem = make_problem("unbiased", 17, seed=31)
        x = problem.initial_guess()
        r0 = residual_norm(residual(x, problem.b))
        jacobi_sweeps(x, problem.b, 2.0 / 3.0, 200)
        assert residual_norm(residual(x, problem.b)) < 0.5 * r0

    def test_sor_converges_faster_than_jacobi(self):
        # The paper's reason for fixing SOR as the smoother.
        problem = make_problem("unbiased", 17, seed=32)
        xs = problem.initial_guess()
        xj = problem.initial_guess()
        sor_redblack(xs, problem.b, 1.15, 30)
        jacobi_sweeps(xj, problem.b, 2.0 / 3.0, 30)
        assert residual_norm(residual(xs, problem.b)) < residual_norm(
            residual(xj, problem.b)
        )

    def test_negative_sweeps_rejected(self):
        with pytest.raises(ValueError):
            jacobi_sweeps(np.zeros((9, 9)), np.zeros((9, 9)), 0.5, -2)

    def test_boundary_untouched(self, rng):
        u = rng.standard_normal((9, 9))
        ring = u[-1, :].copy()
        jacobi_weighted(u, rng.standard_normal((9, 9)))
        np.testing.assert_array_equal(u[-1, :], ring)


class TestIterateUntilResidual:
    def test_counts_iterations(self):
        problem = make_problem("unbiased", 9, seed=33)
        x = problem.initial_guess()
        r0 = residual_norm(residual(x, problem.b))

        def step(u, b):
            sor_redblack(u, b, 1.15, 1)

        count = iterate_until_residual(step, x, problem.b, target=0.1 * r0)
        assert count >= 1
        assert residual_norm(residual(x, problem.b)) <= 0.1 * r0

    def test_raises_on_budget_exhaustion(self):
        problem = make_problem("unbiased", 9, seed=34)
        x = problem.initial_guess()

        def noop(u, b):
            pass

        with pytest.raises(RuntimeError, match="did not reach"):
            iterate_until_residual(noop, x, problem.b, target=0.0, max_iters=3)

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            iterate_until_residual(
                lambda u, b: None, np.zeros((9, 9)), np.zeros((9, 9)), target=-1.0
            )
