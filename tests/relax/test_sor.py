"""Tests for red-black SOR: vectorized vs scalar reference, convergence."""

import numpy as np
import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.grids.norms import residual_norm
from repro.grids.poisson import residual
from repro.linalg.direct import DirectSolver
from repro.relax.sor import sor_redblack, sor_redblack_reference
from repro.relax.weights import OMEGA_RECURSE, omega_opt
from repro.workloads.distributions import make_problem


class TestVectorizedMatchesReference:
    @pytest.mark.parametrize("n", [3, 5, 9, 17])
    @pytest.mark.parametrize("omega", [1.0, 1.15, 1.8])
    def test_single_sweep(self, n, omega, rng):
        u = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        fast = sor_redblack(u.copy(), b, omega, 1)
        slow = sor_redblack_reference(u.copy(), b, omega, 1)
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_multiple_sweeps(self, rng):
        u = rng.standard_normal((9, 9))
        b = rng.standard_normal((9, 9))
        fast = sor_redblack(u.copy(), b, 1.3, 4)
        slow = sor_redblack_reference(u.copy(), b, 1.3, 4)
        np.testing.assert_allclose(fast, slow, rtol=1e-11, atol=1e-11)


class TestSemantics:
    def test_zero_sweeps_is_identity(self, rng):
        u = rng.standard_normal((9, 9))
        before = u.copy()
        sor_redblack(u, np.zeros((9, 9)), 1.15, 0)
        np.testing.assert_array_equal(u, before)

    def test_negative_sweeps_rejected(self):
        with pytest.raises(ValueError):
            sor_redblack(np.zeros((9, 9)), np.zeros((9, 9)), 1.15, -1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sor_redblack(np.zeros((9, 9)), np.zeros((5, 5)), 1.15, 1)

    def test_boundary_untouched(self, rng):
        u = rng.standard_normal((9, 9))
        ring = u[0, :].copy()
        sor_redblack(u, rng.standard_normal((9, 9)), 1.15, 3)
        np.testing.assert_array_equal(u[0, :], ring)

    def test_returns_same_array(self, rng):
        u = rng.standard_normal((9, 9))
        assert sor_redblack(u, np.zeros((9, 9)), 1.0, 1) is u

    def test_fixed_point_is_exact_solution(self):
        # The exact discrete solution is a fixed point of SOR.
        problem = make_problem("unbiased", 9, seed=21)
        x = problem.initial_guess()
        DirectSolver().solve(x, problem.b)
        before = x.copy()
        sor_redblack(x, problem.b, 1.5, 2)
        np.testing.assert_allclose(x, before, rtol=1e-9)


class TestConvergence:
    def test_residual_decreases(self):
        problem = make_problem("unbiased", 17, seed=22)
        x = problem.initial_guess()
        r0 = residual_norm(residual(x, problem.b))
        sor_redblack(x, problem.b, omega_opt(17), 50)
        assert residual_norm(residual(x, problem.b)) < 0.1 * r0

    def test_omega_opt_beats_gauss_seidel(self):
        # SOR with the optimal weight converges faster than omega = 1.
        problem = make_problem("unbiased", 33, seed=23)
        from repro.accuracy.reference import reference_solution

        x_opt = reference_solution(problem)
        results = {}
        for name, omega in (("gs", 1.0), ("opt", omega_opt(33))):
            x = problem.initial_guess()
            judge = AccuracyJudge(x, x_opt)
            sor_redblack(x, problem.b, omega, 120)
            results[name] = judge.accuracy_of(x)
        assert results["opt"] > 2.0 * results["gs"]

    def test_omega_opt_formula(self):
        # 2 / (1 + sin(pi h)); at n=3 (h=1/2): 2/(1+1) = 1.
        assert omega_opt(3) == pytest.approx(1.0)
        assert 1.0 < omega_opt(9) < omega_opt(17) < 2.0

    def test_recurse_weight_constant(self):
        assert OMEGA_RECURSE == 1.15
