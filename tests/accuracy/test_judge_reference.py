"""Tests for the accuracy metric, reference solutions, and their cache."""

import math

import numpy as np
import pytest

from repro.accuracy.judge import AccuracyJudge, accuracy_ratio
from repro.accuracy.reference import ReferenceSolutionCache, reference_solution
from repro.grids.norms import residual_norm
from repro.grids.poisson import residual
from repro.linalg.direct import DirectSolver
from repro.workloads.distributions import make_problem


class TestAccuracyRatio:
    def test_order_of_magnitude(self, rng):
        x_opt = rng.standard_normal((9, 9))
        e = np.zeros((9, 9))
        e[1:-1, 1:-1] = rng.standard_normal((7, 7))
        x_in = x_opt + e
        x_out = x_opt + 0.01 * e
        assert accuracy_ratio(x_in, x_out, x_opt) == pytest.approx(100.0)

    def test_perfect_output_is_inf(self, rng):
        x_opt = rng.standard_normal((9, 9))
        x_in = x_opt + 1.0
        assert accuracy_ratio(x_in, x_opt.copy(), x_opt) == math.inf

    def test_already_optimal_input(self, rng):
        x_opt = rng.standard_normal((9, 9))
        assert accuracy_ratio(x_opt.copy(), x_opt.copy(), x_opt) == math.inf
        worse = x_opt.copy()
        worse[2, 2] += 1.0
        assert accuracy_ratio(x_opt.copy(), worse, x_opt) == 0.0

    def test_degrading_output_below_one(self, rng):
        x_opt = rng.standard_normal((9, 9))
        e = np.zeros((9, 9))
        e[1:-1, 1:-1] = 1.0
        assert accuracy_ratio(x_opt + e, x_opt + 2 * e, x_opt) == pytest.approx(0.5)


class TestJudge:
    def test_judge_matches_ratio(self, rng):
        x_opt = rng.standard_normal((9, 9))
        x_in = x_opt + rng.standard_normal((9, 9))
        judge = AccuracyJudge(x_in, x_opt)
        x = x_opt + 0.1 * (x_in - x_opt)
        assert judge.accuracy_of(x) == pytest.approx(accuracy_ratio(x_in, x, x_opt))

    def test_achieved(self, rng):
        x_opt = rng.standard_normal((9, 9))
        e = np.zeros((9, 9))
        e[1:-1, 1:-1] = 1.0
        judge = AccuracyJudge(x_opt + e, x_opt)
        assert judge.achieved(x_opt + 0.001 * e, 1e3)
        assert not judge.achieved(x_opt + 0.1 * e, 1e3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            AccuracyJudge(np.zeros((9, 9)), np.zeros((5, 5)))


class TestReferenceSolution:
    def test_matches_direct_solver_small(self):
        problem = make_problem("unbiased", 17, seed=61)
        x_opt = reference_solution(problem)
        x = problem.initial_guess()
        DirectSolver(backend="lapack").solve(x, problem.b)
        np.testing.assert_allclose(x_opt, x, rtol=1e-12)

    def test_multigrid_path_reaches_machine_precision(self):
        problem = make_problem("unbiased", 33, seed=62)
        x_opt = reference_solution(problem, direct_cutoff=9)  # force MG path
        scale = float(np.abs(problem.b).max())
        assert residual_norm(residual(np.array(x_opt), problem.b)) <= 1e-10 * scale

    def test_mg_path_agrees_with_direct(self):
        problem = make_problem("biased", 33, seed=63)
        via_direct = reference_solution(problem, direct_cutoff=65)
        via_mg = reference_solution(problem, direct_cutoff=9)
        err = np.abs(via_direct - via_mg).max()
        assert err <= 1e-8 * np.abs(via_direct).max()

    def test_result_is_readonly(self):
        problem = make_problem("unbiased", 9, seed=64)
        x_opt = reference_solution(problem)
        with pytest.raises((ValueError, RuntimeError)):
            x_opt[1, 1] = 0.0


class TestReferenceCache:
    def test_memoizes(self):
        cache = ReferenceSolutionCache()
        problem = make_problem("unbiased", 9, seed=65)
        a = cache.get(problem)
        b = cache.get(problem)
        assert a is b
        assert len(cache) == 1

    def test_distinct_problems_distinct_entries(self):
        cache = ReferenceSolutionCache()
        p1 = make_problem("unbiased", 9, seed=66)
        p2 = make_problem("unbiased", 9, seed=67)
        assert cache.get(p1) is not cache.get(p2)

    def test_id_reuse_cannot_poison_cache(self):
        # Regression: ids of garbage-collected problems must never alias a
        # cache entry to the wrong reference solution.
        cache = ReferenceSolutionCache()
        for i in range(6):
            # Transient problems of alternating sizes; CPython frequently
            # reuses ids across these allocations.
            problem = make_problem("unbiased", 9 if i % 2 else 17, seed=100 + i)
            x_opt = cache.get(problem)
            assert x_opt.shape == problem.b.shape


class TestHardOperatorReferenceFallback:
    def test_stalled_cycles_fall_back_to_exact_solve(self):
        # Strong anisotropy stalls standard V cycles almost immediately;
        # above the direct cutoff the stagnation loop would exit with a
        # far-from-exact "reference".  The quality gate must detect that
        # and fall back to the exact banded solve.
        from repro.accuracy.reference import reference_solution
        from repro.grids.norms import residual_norm
        from repro.operators import shared_operator
        from repro.workloads.distributions import make_problem

        problem = make_problem(
            "unbiased", 65, seed=3, operator="anisotropic(epsilon=0.01)"
        )
        op = shared_operator(problem.operator, problem.n)
        x_opt = reference_solution(problem, direct_cutoff=33)
        r = residual_norm(op.residual(x_opt, problem.b))
        r0 = residual_norm(op.residual(problem.initial_guess(), problem.b))
        assert r < 1e-9 * r0

    def test_poisson_reference_above_cutoff_unchanged(self):
        # The well-conditioned default path must keep using the cycle
        # iteration (and reach the same floor as before the gate).
        from repro.accuracy.reference import reference_solution
        from repro.grids.norms import residual_norm
        from repro.grids.poisson import residual
        from repro.workloads.distributions import make_problem

        problem = make_problem("unbiased", 65, seed=3)
        x_opt = reference_solution(problem, direct_cutoff=33)
        r = residual_norm(residual(x_opt, problem.b))
        r0 = residual_norm(residual(problem.initial_guess(), problem.b))
        assert r < 1e-10 * r0

    def test_fallback_beyond_cutoff_raises_instead_of_huge_solve(self, monkeypatch):
        import repro.accuracy.reference as ref
        from repro.workloads.distributions import make_problem

        problem = make_problem(
            "unbiased", 65, seed=3, operator="anisotropic(epsilon=0.01)"
        )
        monkeypatch.setattr(ref, "FALLBACK_DIRECT_CUTOFF", 33)
        with pytest.raises(RuntimeError, match="stalled at residual ratio"):
            ref.reference_solution(problem, direct_cutoff=33)
