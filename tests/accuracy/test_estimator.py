"""Tests for iterations-to-accuracy estimation on synthetic contractions."""

import numpy as np
import pytest

from repro.accuracy.estimator import InfeasibleCandidate, iterations_to_accuracy


def _contraction_setup(factors):
    """Instances whose error halves (etc.) per step: x holds the error norm
    in cell (1,1); a step multiplies it by its factor."""
    starts = []
    fns = []
    for f in factors:
        x = np.zeros((3, 3))
        x[1, 1] = 1.0
        b = np.full((3, 3), f)
        starts.append((x, b))

        def acc(grid):
            v = abs(grid[1, 1])
            return np.inf if v == 0 else 1.0 / v

        fns.append(acc)
    return starts, fns


def _step(x, b):
    x[1, 1] *= b[1, 1]


class TestIterationsToAccuracy:
    # Contraction factors are powers of two so step counts are exact in
    # binary floating point.

    def test_exact_count_single_instance(self):
        starts, fns = _contraction_setup([0.5])
        # Error 2x down per step; accuracy 8 needs exactly 3 steps.
        assert iterations_to_accuracy(_step, starts, fns, 8.0, 50) == 3

    def test_max_aggregate_takes_worst(self):
        starts, fns = _contraction_setup([0.25, 0.5])
        # 4^s >= 256 needs 4 steps; 2^s >= 256 needs 8.
        assert iterations_to_accuracy(_step, starts, fns, 256.0, 50, "max") == 8

    def test_median_aggregate(self):
        starts, fns = _contraction_setup([0.25, 0.25, 0.5])
        assert iterations_to_accuracy(_step, starts, fns, 256.0, 50, "median") == 4

    def test_mean_aggregate_rounds_up(self):
        starts, fns = _contraction_setup([0.25, 0.5])
        # 128: 4 steps at 0.25, 7 steps at 0.5 -> mean 5.5 -> 6.
        assert iterations_to_accuracy(_step, starts, fns, 128.0, 50, "mean") == 6

    def test_zero_iterations_when_already_there(self):
        starts, fns = _contraction_setup([0.5])
        starts[0][0][1, 1] = 1e-9  # already accurate
        assert iterations_to_accuracy(_step, starts, fns, 1e3, 50) == 0

    def test_infeasible_raises(self):
        starts, fns = _contraction_setup([1.0])  # no progress
        with pytest.raises(InfeasibleCandidate) as exc:
            iterations_to_accuracy(_step, starts, fns, 1e3, max_iters=7)
        assert exc.value.iterations_tried == 7

    def test_misaligned_inputs_rejected(self):
        starts, fns = _contraction_setup([0.5, 0.5])
        with pytest.raises(ValueError):
            iterations_to_accuracy(_step, starts, fns[:1], 1e3, 50)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iterations_to_accuracy(_step, [], [], 1e3, 50)

    def test_bad_max_iters_rejected(self):
        starts, fns = _contraction_setup([0.5])
        with pytest.raises(ValueError):
            iterations_to_accuracy(_step, starts, fns, 1e3, 0)

    def test_unknown_aggregate_rejected(self):
        starts, fns = _contraction_setup([0.5])
        with pytest.raises(ValueError):
            iterations_to_accuracy(_step, starts, fns, 1e3, 50, "p99")
