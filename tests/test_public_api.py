"""Public-API surface tests: imports, __all__ hygiene, and cross-package
wiring a downstream user depends on."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.grids",
    "repro.linalg",
    "repro.relax",
    "repro.multigrid",
    "repro.accuracy",
    "repro.workloads",
    "repro.tuner",
    "repro.cycles",
    "repro.machines",
    "repro.runtime",
    "repro.serve",
    "repro.petabricks",
    "repro.bench",
    "repro.util",
]


class TestImportSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PACKAGES[1:])
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        exported = getattr(mod, "__all__", [])
        assert exported, f"{name} must declare __all__"
        for symbol in exported:
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__


class TestFullMGCorePath:
    def test_solve_accepts_full_mg_plan(self):
        from repro.accuracy import AccuracyJudge, reference_solution
        from repro.core import autotune_full_mg, poisson_problem, solve

        plan = autotune_full_mg(max_level=3, instances=1, seed=31)
        problem = poisson_problem("unbiased", n=9, seed=32)
        x, meter = solve(plan, problem, 1e3)
        judge = AccuracyJudge(problem.initial_guess(), reference_solution(problem))
        assert judge.accuracy_of(x) >= 0.5e3
        assert len(meter.counts) > 0

    def test_autotune_accepts_profile_object(self):
        from repro.core import autotune
        from repro.machines import SUN_NIAGARA

        plan = autotune(max_level=2, machine=SUN_NIAGARA, instances=1, seed=33)
        assert plan.metadata["profile"] == SUN_NIAGARA.name

    def test_autotune_rejects_unknown_machine(self):
        from repro.core import autotune

        with pytest.raises(ValueError, match="pdp11"):
            autotune(max_level=2, machine="pdp11")


class TestTraceModule:
    def test_min_level_empty_raises(self):
        from repro.tuner.trace import Trace

        with pytest.raises(ValueError):
            Trace().min_level()

    def test_null_trace_is_shared_and_inert(self):
        from repro.tuner.trace import NULL_TRACE

        before = len(NULL_TRACE)
        NULL_TRACE.emit("relax", 3)
        assert len(NULL_TRACE) == before

    def test_kinds_listing(self):
        from repro.tuner.trace import Trace

        t = Trace()
        t.emit("enter", 2, 0)
        t.emit("direct", 1)
        assert t.kinds() == ["enter", "direct"]


class TestOpShapeCoverage:
    def test_all_meterable_stencil_ops_have_shapes(self):
        from repro.machines.meter import OPS_2D, OPS_3D
        from repro.machines.profile import OP_SHAPES, OP_SHAPES_3D

        stencil_ops = set(OPS_2D) - {"direct", "direct_solve"}
        assert stencil_ops <= set(OP_SHAPES)
        stencil_ops_3d = {op[:-2] for op in OPS_3D} - {"direct", "direct_solve"}
        assert stencil_ops_3d <= set(OP_SHAPES_3D)

    def test_flops_and_bytes_scale_quadratically(self):
        from repro.machines.profile import OP_SHAPES

        shape = OP_SHAPES["relax"]
        assert shape.flops(10) * 4 == shape.flops(20)
        assert shape.bytes(10) * 4 == shape.bytes(20)
