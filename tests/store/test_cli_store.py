"""Tests for the ``repro-mg store`` CLI subcommands."""

import pytest

from repro.cli import main
from repro.store.trialdb import TrialDB


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "store.sqlite")


def tune_args(db_path, *extra):
    return [
        "store",
        "--db",
        db_path,
        "tune",
        "--machine",
        "intel",
        "--distribution",
        "unbiased",
        "--max-level",
        "3",
        "--instances",
        "1",
        "--seed",
        "3",
        *extra,
    ]


class TestStoreTune:
    def test_tune_then_resume(self, db_path, capsys):
        assert main(tune_args(db_path)) == 0
        out = capsys.readouterr().out
        assert "1 done, 0 pending" in out
        assert "tuned" in out
        # Second invocation resumes: nothing pending, no new cells run.
        assert main(tune_args(db_path)) == 0
        out = capsys.readouterr().out
        assert "0 cells this run" in out

    def test_max_cells_limits_run(self, db_path, capsys):
        args = tune_args(db_path, "--max-cells", "1")
        args[args.index("--max-level") + 1] = "3"
        args += ["--max-level", "4"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 done, 1 pending" in out

    def test_jobs_runs_cells_in_parallel_workers(self, db_path, tmp_path, capsys):
        args = tune_args(db_path, "--jobs", "2", "--machine", "amd")
        args[args.index("--max-level") + 1] = "3"
        args += ["--max-level", "4"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 done, 0 pending" in out
        # The parallel run stores exactly what a serial run would.
        serial_db = str(tmp_path / "serial.sqlite")
        serial_args = tune_args(serial_db, "--machine", "amd")
        serial_args[serial_args.index("--max-level") + 1] = "3"
        serial_args += ["--max-level", "4"]
        assert main(serial_args) == 0
        from repro.store.registry import PlanRegistry

        parallel_contents = PlanRegistry(TrialDB(db_path)).contents()
        serial_contents = PlanRegistry(TrialDB(serial_db)).contents()
        assert parallel_contents == serial_contents
        assert len(parallel_contents) == 4


class TestStoreLsExportGc:
    def test_ls_empty_and_populated(self, db_path, capsys):
        assert main(["store", "--db", db_path, "ls"]) == 0
        assert "no plans" in capsys.readouterr().out
        main(tune_args(db_path))
        capsys.readouterr()
        assert main(["store", "--db", db_path, "ls"]) == 0
        out = capsys.readouterr().out
        assert "intel-harpertown" in out
        assert "hits" in out

    def test_ls_trials(self, db_path, capsys):
        main(tune_args(db_path))
        capsys.readouterr()
        assert main(["store", "--db", db_path, "ls", "--trials"]) == 0
        out = capsys.readouterr().out
        assert "machine_fingerprint" in out
        assert "mp-" in out

    def test_ls_operator_filter(self, db_path, capsys):
        main(tune_args(db_path))  # poisson
        main(tune_args(db_path, "--operator", "anisotropic(epsilon=0.02)"))
        capsys.readouterr()
        # Any spelling of the spec is normalized before filtering.
        assert main(
            ["store", "--db", db_path, "ls", "--operator", "anisotropic(epsilon=2e-2)"]
        ) == 0
        out = capsys.readouterr().out
        assert "anisotropic(epsilon=0.02)" in out
        assert out.count("multigrid-v") == 1  # poisson row filtered out
        assert main(
            ["store", "--db", db_path, "ls", "--operator", "varcoeff"]
        ) == 0
        assert "no plans stored for operator" in capsys.readouterr().out

    def test_ls_trials_operator_filter(self, db_path, capsys):
        main(tune_args(db_path))
        main(tune_args(db_path, "--operator", "anisotropic(epsilon=0.02)"))
        capsys.readouterr()
        assert main(
            ["store", "--db", db_path, "ls", "--trials", "--operator", "poisson"]
        ) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "anisotropic" not in out

    def test_export_stdout_and_csv(self, db_path, tmp_path, capsys):
        main(tune_args(db_path))
        capsys.readouterr()
        assert main(["store", "--db", db_path, "export"]) == 0
        assert "multigrid-v" in capsys.readouterr().out
        csv_path = str(tmp_path / "runs.csv")
        assert main(["store", "--db", db_path, "export", "--csv", csv_path]) == 0
        assert "wrote 1 trial rows" in capsys.readouterr().out

    def test_gc(self, db_path, capsys):
        main(tune_args(db_path))
        # Duplicate the trial row so gc has something to collect.
        db = TrialDB(db_path)
        (trial,) = db.trials()
        db.record_trial(trial)
        db.close()
        capsys.readouterr()
        assert main(["store", "--db", db_path, "gc"]) == 0
        assert "removed 1 superseded trial" in capsys.readouterr().out


class TestStoreParser:
    def test_unknown_subcommand_exits(self, db_path):
        with pytest.raises(SystemExit):
            main(["store", "--db", db_path, "frobnicate"])

    def test_experiment_path_still_works(self, capsys):
        # The classic experiment interface is untouched by the store
        # dispatch (tier-1 behaviour).
        rc = main(["ablation-smoother"])
        assert rc == 0
        assert "smoother" in capsys.readouterr().out
