"""Schema migration: PR-6-era (v4) stores keep working under v5.

Builds a database with the verbatim v4 schema (fleet columns, no
``backend`` keyfield), populates it the way the pre-backend code did,
then opens it through :class:`TrialDB` and checks that the migrated
store resolves old plans unchanged under their ``|numpy``-suffixed
keys, that legacy rows are stamped with the implicit pre-backend
``'numpy'`` default, and that the mid-migration crash-rollback and
concurrent-loser guarantees every earlier step has still hold.
"""

import json
import sqlite3

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB, TuneKey
from repro.store.schema import SCHEMA_VERSION
from repro.store.trialdb import canonical_accuracies, canonical_seed
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

# The v4 schema exactly as PR 6 shipped it: v3 keyfields plus the
# distributed-fleet columns and tables.
V4_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    provenance          TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key_v3
    ON trials (kind, distribution, operator, ndim, max_level, accuracies,
               machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family_v3
    ON plans (kind, distribution, operator, ndim, max_level, accuracies,
              seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    lease_owner         TEXT,
    lease_expires_at    REAL,
    attempts            INTEGER NOT NULL DEFAULT 0,
    last_error          TEXT,
    worker_id           TEXT,
    PRIMARY KEY (campaign, machine, distribution, operator, max_level)
);

CREATE TABLE IF NOT EXISTS campaigns (
    name                TEXT    PRIMARY KEY,
    spec_json           TEXT    NOT NULL,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);

CREATE TABLE IF NOT EXISTS fleet_workers (
    worker_id           TEXT    PRIMARY KEY,
    campaign            TEXT,
    host                TEXT,
    pid                 INTEGER,
    machine_fingerprint TEXT,
    started_at          REAL,
    last_heartbeat      REAL,
    cells_done          INTEGER NOT NULL DEFAULT 0,
    cells_failed        INTEGER NOT NULL DEFAULT 0,
    lease_renewals      INTEGER NOT NULL DEFAULT 0,
    requeues_claimed    INTEGER NOT NULL DEFAULT 0
);
"""

KEY = TuneKey(max_level=3, instances=1, seed=0)


def _tiny_plan():
    return VCycleTuner(
        max_level=KEY.max_level,
        training=TrainingData(distribution=KEY.distribution, instances=1, seed=0),
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


def _v4_plan_key(fingerprint: str, key: TuneKey) -> str:
    """The storage key exactly as PR 6 computed it (no backend suffix)."""
    return "|".join(
        [
            fingerprint,
            key.kind,
            key.distribution,
            str(key.max_level),
            canonical_accuracies(key.accuracies),
            canonical_seed(key.seed),
            str(key.instances),
            key.operator,
            str(key.ndim),
        ]
    )


@pytest.fixture()
def v4_store(tmp_path):
    """A populated PR-6-era database file: one plan, one trial, one done
    campaign cell and one still-pending one."""
    path = tmp_path / "pr6-store.sqlite"
    plan = _tiny_plan()
    plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    fingerprint = INTEL_HARPERTOWN.fingerprint()
    conn = sqlite3.connect(path)
    conn.executescript(V4_SCHEMA)
    conn.execute("PRAGMA user_version = 4")
    conn.execute(
        """
        INSERT INTO plans (plan_key, kind, distribution, operator, ndim,
                           max_level, accuracies, machine_fingerprint, seed,
                           instances, machine_name, profile_json, plan_json, hits)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 5)
        """,
        (
            _v4_plan_key(fingerprint, KEY),
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
            json.dumps(INTEL_HARPERTOWN.to_dict(), sort_keys=True),
            plan_json,
        ),
    )
    conn.execute(
        """
        INSERT INTO trials (kind, distribution, operator, ndim, max_level,
                            accuracies, machine_fingerprint, seed, instances,
                            machine_name)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
        """,
        (
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
        ),
    )
    conn.execute(
        """
        INSERT INTO campaign_cells (campaign, machine, distribution, operator,
                                    ndim, max_level, status, source)
        VALUES ('legacy4', 'intel', 'unbiased', 'poisson', 2, 3, 'done', 'tuned'),
               ('legacy4', 'amd', 'unbiased', 'poisson', 2, 3, 'pending', NULL)
        """
    )
    conn.commit()
    conn.close()
    return path, plan_json


class TestV4Migration:
    def test_migration_stamps_schema_version(self, v4_store):
        path, _ = v4_store
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION

    def test_old_plan_resolves_under_numpy_key(self, v4_store):
        """v4 -> v5 suffixes plan keys with ``|numpy`` — the default
        TuneKey (backend='numpy') must land an exact hit with the plan
        bytes untouched."""
        path, plan_json = v4_store
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None
        assert hit.source == "exact"
        assert hit.plan_json == plan_json

    def test_accelerated_key_misses_legacy_plan(self, v4_store):
        """A cnative-tuned key must not resolve a legacy numpy plan."""
        path, _ = v4_store
        registry = PlanRegistry(TrialDB(path))
        key = TuneKey(max_level=3, instances=1, seed=0, backend="cnative")
        assert registry.get(INTEL_HARPERTOWN, key) is None

    def test_legacy_rows_stamped_numpy(self, v4_store):
        path, _ = v4_store
        db = TrialDB(path)
        records = db.trials()
        assert len(records) == 1
        assert records[0].backend == "numpy"
        backends = [
            row["backend"]
            for row in db.conn.execute("SELECT backend FROM campaign_cells")
        ]
        assert backends == ["numpy", "numpy"]
        (plan_backend,) = db.conn.execute("SELECT backend FROM plans").fetchone()
        assert plan_backend == "numpy"

    def test_plan_key_gains_numpy_suffix(self, v4_store):
        path, _ = v4_store
        db = TrialDB(path)
        (plan_key,) = db.conn.execute("SELECT plan_key FROM plans").fetchone()
        assert plan_key.endswith("|numpy")

    def test_backend_filter_on_trials(self, v4_store):
        path, _ = v4_store
        db = TrialDB(path)
        assert len(db.trials(backend="numpy")) == 1
        assert db.trials(backend="cnative") == []

    def test_migrated_campaign_resumes_without_retuning(self, v4_store):
        path, _ = v4_store
        spec = CampaignSpec(
            name="legacy4", machines=("intel",), distributions=("unbiased",),
            levels=(3,), instances=1, seed=0,
        )
        campaign = Campaign(spec, TrialDB(path))
        assert campaign.pending() == []
        results = campaign.run()
        assert [r.source for r in results] == ["skipped"]


class TestV4MigrationAtomicity:
    def test_failed_migration_rolls_back_to_clean_v4(self, v4_store, monkeypatch):
        import repro.store.schema as schema

        monkeypatch.setattr(
            schema,
            "_MIGRATE_V4_V5",
            schema._MIGRATE_V4_V5 + ("INSERT INTO nonexistent VALUES (1)",),
        )
        path, plan_json = v4_store
        with pytest.raises(sqlite3.OperationalError):
            TrialDB(path)

        # Still version 4, no backend column, key unsuffixed: the
        # rollback was complete.
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == 4
        columns = [row[1] for row in conn.execute("PRAGMA table_info(trials)")]
        assert "backend" not in columns and "provenance" in columns
        (plan_key,) = conn.execute("SELECT plan_key FROM plans").fetchone()
        assert not plan_key.endswith("|numpy")
        conn.close()

        # With the fault removed the same file migrates fine.
        monkeypatch.undo()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_concurrent_migration_loser_noops(self, v4_store):
        import repro.store.schema as schema

        path, plan_json = v4_store
        TrialDB(path).close()  # first opener migrates v4 -> v5
        conn = sqlite3.connect(path)
        schema._migrate_step(conn, 4)  # loser replays: must no-op, not crash
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        conn.close()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_v1_store_chains_every_step(self, tmp_path):
        # A PR-2-era v1 store must hop v1 -> ... -> v5 in one open.
        from tests.store.test_migration import V1_SCHEMA

        path = tmp_path / "v1-chain.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(V1_SCHEMA)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        trial_columns = [
            row[1] for row in db.conn.execute("PRAGMA table_info(trials)")
        ]
        assert {"operator", "ndim", "backend", "provenance"} <= set(trial_columns)
        cell_columns = [
            row[1] for row in db.conn.execute("PRAGMA table_info(campaign_cells)")
        ]
        assert {"backend", "lease_owner", "attempts"} <= set(cell_columns)
