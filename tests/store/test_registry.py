"""Tests for the plan registry: exact hits, nearest fallback, tune-and-insert."""

import json

import pytest

from repro.machines.presets import (
    AMD_BARCELONA,
    INTEL_HARPERTOWN,
    SUN_NIAGARA,
)
from repro.machines.profile import MachineProfile
from repro.store.registry import PlanRegistry, TuneKey, profile_distance
from repro.store.trialdb import TrialDB
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData


class CountingTuner:
    """Wraps the DP tuner, counting invocations."""

    def __init__(self, profile: MachineProfile, key: TuneKey) -> None:
        self.profile = profile
        self.key = key
        self.calls = 0

    def __call__(self):
        self.calls += 1
        training = TrainingData(
            distribution=self.key.distribution,
            instances=self.key.instances,
            seed=self.key.seed,
        )
        return VCycleTuner(
            max_level=self.key.max_level,
            accuracies=tuple(self.key.accuracies),
            training=training,
            timing=CostModelTiming(self.profile),
            keep_audit=False,
        ).tune()


@pytest.fixture
def key() -> TuneKey:
    return TuneKey(max_level=4, instances=1, seed=3)


class TestFingerprint:
    def test_stable_and_content_addressed(self):
        a = INTEL_HARPERTOWN.fingerprint()
        assert a == INTEL_HARPERTOWN.fingerprint()
        assert a.startswith("mp-")
        # Renaming doesn't change the content hash; changing cores does.
        from dataclasses import replace

        renamed = replace(INTEL_HARPERTOWN, name="other", description="x")
        assert renamed.fingerprint() == a
        assert INTEL_HARPERTOWN.with_threads(2).fingerprint() != a

    def test_distinct_presets_distinct_fingerprints(self):
        fps = {p.fingerprint() for p in (INTEL_HARPERTOWN, AMD_BARCELONA, SUN_NIAGARA)}
        assert len(fps) == 3

    def test_profile_distance_properties(self):
        a = INTEL_HARPERTOWN.to_dict()
        b = AMD_BARCELONA.to_dict()
        assert profile_distance(a, a) == 0.0
        assert profile_distance(a, b) == profile_distance(b, a) > 0.0

    def test_profile_distance_sees_op_shapes(self):
        # Nested op-shape tables must enter the metric: a machine with
        # identical scalar rates but 100x op costs is NOT at distance 0.
        from dataclasses import replace

        from repro.machines.profile import OpShape

        weird = replace(
            INTEL_HARPERTOWN,
            op_shapes={
                op: OpShape(s.flops_per_point * 100, s.bytes_per_point * 100, s.barriers)
                for op, s in INTEL_HARPERTOWN.op_shapes.items()
            },
        )
        assert profile_distance(INTEL_HARPERTOWN.to_dict(), weird.to_dict()) > 0.0

    def test_profile_distance_penalizes_missing_fields(self):
        a = INTEL_HARPERTOWN.to_dict()
        partial = dict(a)
        del partial["cores"]
        assert profile_distance(a, partial) > 0.0


class TestGetOrTune:
    def test_second_call_skips_tuner_and_is_byte_identical(self, key):
        registry = PlanRegistry(TrialDB(":memory:"))
        tuner = CountingTuner(INTEL_HARPERTOWN, key)

        first = registry.get_or_tune(INTEL_HARPERTOWN, key, tuner=tuner)
        second = registry.get_or_tune(INTEL_HARPERTOWN, key, tuner=tuner)

        assert tuner.calls == 1  # the acceptance criterion: tuned exactly once
        assert first.source == "tuned"
        assert second.source == "exact"
        assert second.plan_json == first.plan_json  # byte-identical artifact
        assert plan_to_dict(second.plan) == plan_to_dict(first.plan)

    def test_exact_hit_survives_reopen(self, tmp_path, key):
        path = tmp_path / "store.sqlite"
        tuner = CountingTuner(INTEL_HARPERTOWN, key)
        first = PlanRegistry(path).get_or_tune(INTEL_HARPERTOWN, key, tuner=tuner)
        # A different process would see the same database file.
        second = PlanRegistry(path).get_or_tune(INTEL_HARPERTOWN, key, tuner=tuner)
        assert tuner.calls == 1
        assert second.source == "exact"
        assert second.plan_json == first.plan_json

    def test_nearest_profile_fallback(self, key):
        registry = PlanRegistry(TrialDB(":memory:"))
        registry.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        registry.get_or_tune(SUN_NIAGARA, key, tuner=CountingTuner(SUN_NIAGARA, key))

        def never():
            raise AssertionError("nearest hit must not tune")

        hit = registry.get_or_tune(AMD_BARCELONA, key, tuner=never)
        assert hit.source == "nearest"
        # AMD's landscape is much closer to the Xeon than to Niagara's
        # 32-thread shared-FPU design, so the Intel plan serves (Fig 14).
        assert hit.machine_name == INTEL_HARPERTOWN.name
        assert hit.distance > 0.0

    def test_nearest_can_be_disabled_or_bounded(self, key):
        registry = PlanRegistry(TrialDB(":memory:"))
        registry.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        tuner = CountingTuner(AMD_BARCELONA, key)
        hit = registry.get_or_tune(AMD_BARCELONA, key, allow_nearest=False, tuner=tuner)
        assert hit.source == "tuned"
        assert tuner.calls == 1
        # A tight distance bound also rejects the stored Intel plan.
        registry2 = PlanRegistry(TrialDB(":memory:"))
        registry2.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        tuner2 = CountingTuner(AMD_BARCELONA, key)
        hit2 = registry2.get_or_tune(
            AMD_BARCELONA, key, max_distance=1e-9, tuner=tuner2
        )
        assert hit2.source == "tuned"

    def test_different_keys_are_different_plans(self, key):
        registry = PlanRegistry(TrialDB(":memory:"))
        tuner = CountingTuner(INTEL_HARPERTOWN, key)
        registry.get_or_tune(INTEL_HARPERTOWN, key, tuner=tuner)
        other = TuneKey(
            max_level=key.max_level,
            instances=key.instances,
            seed=key.seed,
            distribution="biased",
        )
        tuner2 = CountingTuner(INTEL_HARPERTOWN, other)
        hit = registry.get_or_tune(INTEL_HARPERTOWN, other, tuner=tuner2)
        assert hit.source == "tuned"
        assert tuner2.calls == 1
        assert len(registry) == 2

    def test_default_tuner_and_kind_validation(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        hit = registry.get_or_tune(
            INTEL_HARPERTOWN, max_level=3, instances=1, seed=3, kind="full-multigrid"
        )
        assert hit.source == "tuned"
        assert json.loads(hit.plan_json)["kind"] == "full-multigrid"
        with pytest.raises(ValueError, match="kind"):
            TuneKey(kind="w-cycle")

    def test_trial_logged_on_tune(self, key):
        db = TrialDB(":memory:")
        registry = PlanRegistry(db)
        registry.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        registry.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        trials = db.trials()
        assert len(trials) == 1  # hits don't append trials
        assert trials[0].machine_fingerprint == INTEL_HARPERTOWN.fingerprint()
        assert trials[0].wall_seconds > 0
        assert trials[0].simulated_cost > 0

    def test_hit_counter(self, key):
        registry = PlanRegistry(TrialDB(":memory:"))
        registry.get_or_tune(
            INTEL_HARPERTOWN, key, tuner=CountingTuner(INTEL_HARPERTOWN, key)
        )
        registry.get_or_tune(INTEL_HARPERTOWN, key)
        registry.get_or_tune(INTEL_HARPERTOWN, key)
        (summary,) = registry.plans()
        assert summary["hits"] == 2
        assert summary["last_used_at"] is not None
