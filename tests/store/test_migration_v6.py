"""Schema migration: PR-9-era (v5) stores keep working under v6.

Builds a database with the verbatim v5 schema (backend keyfield, no
``tuner`` column, no ``model_artifacts`` table), populates it the way
the pre-model-tuner code did, then opens it through :class:`TrialDB`
and checks that plan keys resolve *unchanged* (``tuner`` is provenance,
not identity — the first migration step that rewrites no keys), that
legacy rows are stamped with the implicit pre-model ``'dp'`` default,
that the new artifact table exists and starts cold, and that the
mid-migration crash-rollback and concurrent-loser guarantees every
earlier step has still hold.
"""

import json
import sqlite3

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import ModelStore, PlanRegistry, TrialDB, TuneKey
from repro.store.schema import SCHEMA_VERSION
from repro.store.trialdb import canonical_accuracies, canonical_seed
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

# The v5 schema exactly as PR 9 shipped it: v4 tables plus the backend
# keyfield — and, compared to v6, no tuner column and no model_artifacts.
V5_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    provenance          TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key_v5
    ON trials (kind, distribution, operator, ndim, backend, max_level,
               accuracies, machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family_v5
    ON plans (kind, distribution, operator, ndim, backend, max_level,
              accuracies, seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    lease_owner         TEXT,
    lease_expires_at    REAL,
    attempts            INTEGER NOT NULL DEFAULT 0,
    last_error          TEXT,
    worker_id           TEXT,
    PRIMARY KEY (campaign, machine, distribution, operator, max_level)
);

CREATE TABLE IF NOT EXISTS campaigns (
    name                TEXT    PRIMARY KEY,
    spec_json           TEXT    NOT NULL,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);

CREATE TABLE IF NOT EXISTS fleet_workers (
    worker_id           TEXT    PRIMARY KEY,
    campaign            TEXT,
    host                TEXT,
    pid                 INTEGER,
    machine_fingerprint TEXT,
    started_at          REAL,
    last_heartbeat      REAL,
    cells_done          INTEGER NOT NULL DEFAULT 0,
    cells_failed        INTEGER NOT NULL DEFAULT 0,
    lease_renewals      INTEGER NOT NULL DEFAULT 0,
    requeues_claimed    INTEGER NOT NULL DEFAULT 0
);
"""

KEY = TuneKey(max_level=3, instances=1, seed=0)


def _tiny_plan():
    return VCycleTuner(
        max_level=KEY.max_level,
        training=TrainingData(distribution=KEY.distribution, instances=1, seed=0),
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


@pytest.fixture()
def v5_store(tmp_path):
    """A populated PR-9-era database file: one plan and one trial (no
    tuner column anywhere)."""
    path = tmp_path / "pr9-store.sqlite"
    plan = _tiny_plan()
    plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    fingerprint = INTEL_HARPERTOWN.fingerprint()
    conn = sqlite3.connect(path)
    conn.executescript(V5_SCHEMA)
    conn.execute("PRAGMA user_version = 5")
    conn.execute(
        """
        INSERT INTO plans (plan_key, kind, distribution, operator, ndim, backend,
                           max_level, accuracies, machine_fingerprint, seed,
                           instances, machine_name, profile_json, plan_json, hits)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 5)
        """,
        (
            KEY.storage_key(fingerprint),
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.backend,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
            json.dumps(INTEL_HARPERTOWN.to_dict(), sort_keys=True),
            plan_json,
        ),
    )
    conn.execute(
        """
        INSERT INTO trials (kind, distribution, operator, ndim, backend,
                            max_level, accuracies, machine_fingerprint, seed,
                            instances, machine_name)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
        """,
        (
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.backend,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
        ),
    )
    conn.commit()
    conn.close()
    return path, plan_json


class TestV5Migration:
    def test_migration_stamps_schema_version(self, v5_store):
        path, _ = v5_store
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION

    def test_old_plan_key_resolves_unchanged(self, v5_store):
        """``tuner`` is provenance, not identity: v5 -> v6 rewrites no
        plan keys, so the default TuneKey lands an exact hit with the
        plan bytes untouched."""
        path, plan_json = v5_store
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None
        assert hit.source == "exact"
        assert hit.plan_json == plan_json

    def test_plan_keys_byte_identical_across_migration(self, v5_store):
        path, _ = v5_store
        conn = sqlite3.connect(path)
        (before,) = conn.execute("SELECT plan_key FROM plans").fetchone()
        conn.close()
        db = TrialDB(path)
        (after,) = db.conn.execute("SELECT plan_key FROM plans").fetchone()
        assert after == before

    def test_legacy_rows_stamped_dp(self, v5_store):
        path, _ = v5_store
        db = TrialDB(path)
        records = db.trials()
        assert len(records) == 1
        assert records[0].tuner == "dp"
        (plan_tuner,) = db.conn.execute("SELECT tuner FROM plans").fetchone()
        assert plan_tuner == "dp"

    def test_model_artifacts_table_created_cold(self, v5_store):
        path, _ = v5_store
        db = TrialDB(path)
        store = ModelStore(db)
        assert len(store) == 0
        assert store.get_cost_model(INTEL_HARPERTOWN.fingerprint()) is None

    def test_migrated_store_accepts_model_tunes(self, v5_store):
        # The real point of the migration: a legacy store can serve as
        # the model tuner's warm-start corpus straight away.
        path, _ = v5_store
        registry = PlanRegistry(TrialDB(path))
        key = TuneKey(max_level=3, instances=1, seed=1)  # new key, cold
        hit = registry.get_or_tune(
            INTEL_HARPERTOWN, key, allow_nearest=False, tuner="model"
        )
        assert hit.source == "tuned"
        assert hit.plan.metadata["tuner"] == "model"
        tuners = sorted(r.tuner for r in registry.db.trials())
        assert tuners == ["dp", "model"]


class TestV5MigrationAtomicity:
    def test_failed_migration_rolls_back_to_clean_v5(self, v5_store, monkeypatch):
        import repro.store.schema as schema

        monkeypatch.setattr(
            schema,
            "_MIGRATE_V5_V6",
            schema._MIGRATE_V5_V6 + ("INSERT INTO nonexistent VALUES (1)",),
        )
        path, plan_json = v5_store
        with pytest.raises(sqlite3.OperationalError):
            TrialDB(path)

        # Still version 5, no tuner column: the rollback was complete.
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == 5
        columns = [row[1] for row in conn.execute("PRAGMA table_info(trials)")]
        assert "tuner" not in columns and "backend" in columns
        conn.close()

        # With the fault removed the same file migrates fine.
        monkeypatch.undo()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_concurrent_migration_loser_noops(self, v5_store):
        import repro.store.schema as schema

        path, plan_json = v5_store
        TrialDB(path).close()  # first opener migrates v5 -> v6
        conn = sqlite3.connect(path)
        schema._migrate_step(conn, 5)  # loser replays: must no-op, not crash
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        conn.close()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_v1_store_chains_every_step(self, tmp_path):
        # A PR-2-era v1 store must hop v1 -> ... -> v6 in one open.
        from tests.store.test_migration import V1_SCHEMA

        path = tmp_path / "v1-chain.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(V1_SCHEMA)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        trial_columns = [
            row[1] for row in db.conn.execute("PRAGMA table_info(trials)")
        ]
        assert {"operator", "ndim", "backend", "provenance", "tuner"} <= set(
            trial_columns
        )
        tables = {
            row[0]
            for row in db.conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert "model_artifacts" in tables
