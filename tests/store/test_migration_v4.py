"""Schema migration: PR-5-era (v3) stores keep working under v4.

Builds a database with the verbatim v3 schema (ndim keyfield, no fleet
columns), populates it the way the pre-fleet code did, then opens it
through :class:`TrialDB` and checks that the migrated store resolves old
plans unchanged, that legacy campaign cells become claimable fleet work
(attempts start at 0, no lease), and that the fleet tables exist — plus
the mid-migration crash-rollback and concurrent-loser guarantees every
earlier step has.
"""

import json
import sqlite3

import pytest

from repro.fleet import FleetCoordinator, WorkQueue
from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB, TuneKey
from repro.store.schema import SCHEMA_VERSION
from repro.store.trialdb import canonical_accuracies, canonical_seed
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

# The v3 schema exactly as PR 5 shipped it.
V3_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key_v3
    ON trials (kind, distribution, operator, ndim, max_level, accuracies,
               machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family_v3
    ON plans (kind, distribution, operator, ndim, max_level, accuracies,
              seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    PRIMARY KEY (campaign, machine, distribution, operator, max_level)
);
"""

KEY = TuneKey(max_level=3, instances=1, seed=0)


def _tiny_plan():
    return VCycleTuner(
        max_level=KEY.max_level,
        training=TrainingData(distribution=KEY.distribution, instances=1, seed=0),
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


def _v3_plan_key(fingerprint: str, key: TuneKey) -> str:
    """The storage key exactly as PR 5 computed it (ndim-suffixed)."""
    return "|".join(
        [
            fingerprint,
            key.kind,
            key.distribution,
            str(key.max_level),
            canonical_accuracies(key.accuracies),
            canonical_seed(key.seed),
            str(key.instances),
            key.operator,
            str(key.ndim),
        ]
    )


@pytest.fixture()
def v3_store(tmp_path):
    """A populated PR-5-era database file: one plan, one trial, one done
    campaign cell and one still-pending one."""
    path = tmp_path / "pr5-store.sqlite"
    plan = _tiny_plan()
    plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    fingerprint = INTEL_HARPERTOWN.fingerprint()
    conn = sqlite3.connect(path)
    conn.executescript(V3_SCHEMA)
    conn.execute("PRAGMA user_version = 3")
    conn.execute(
        """
        INSERT INTO plans (plan_key, kind, distribution, operator, ndim,
                           max_level, accuracies, machine_fingerprint, seed,
                           instances, machine_name, profile_json, plan_json, hits)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 5)
        """,
        (
            _v3_plan_key(fingerprint, KEY),
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
            json.dumps(INTEL_HARPERTOWN.to_dict(), sort_keys=True),
            plan_json,
        ),
    )
    conn.execute(
        """
        INSERT INTO trials (kind, distribution, operator, ndim, max_level,
                            accuracies, machine_fingerprint, seed, instances,
                            machine_name)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
        """,
        (
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.ndim,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
        ),
    )
    conn.execute(
        """
        INSERT INTO campaign_cells (campaign, machine, distribution, operator,
                                    ndim, max_level, status, source)
        VALUES ('legacy3', 'intel', 'unbiased', 'poisson', 2, 3, 'done', 'tuned'),
               ('legacy3', 'amd', 'unbiased', 'poisson', 2, 3, 'pending', NULL)
        """
    )
    conn.commit()
    conn.close()
    return path, plan_json


class TestV3Migration:
    def test_migration_stamps_schema_version(self, v3_store):
        path, _ = v3_store
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION

    def test_old_plan_resolves_unchanged(self, v3_store):
        """v3 -> v4 adds columns only — plan keys and plan bytes must
        come through untouched."""
        path, plan_json = v3_store
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None
        assert hit.source == "exact"
        assert hit.plan_json == plan_json

    def test_old_trials_have_no_provenance(self, v3_store):
        path, _ = v3_store
        records = TrialDB(path).trials()
        assert len(records) == 1
        assert records[0].provenance is None

    def test_legacy_cells_gain_fleet_columns(self, v3_store):
        path, _ = v3_store
        db = TrialDB(path)
        rows = db.conn.execute(
            """
            SELECT status, attempts, lease_owner, lease_expires_at, worker_id
            FROM campaign_cells WHERE campaign = 'legacy3'
            ORDER BY machine
            """
        ).fetchall()
        assert [(r["status"], r["attempts"]) for r in rows] == [
            ("pending", 0),
            ("done", 0),
        ]
        assert all(
            r["lease_owner"] is None and r["worker_id"] is None for r in rows
        )

    def test_fleet_tables_exist_after_migration(self, v3_store):
        path, _ = v3_store
        db = TrialDB(path)
        tables = {
            row["name"]
            for row in db.conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert {"campaigns", "fleet_workers"} <= tables

    def test_legacy_pending_cell_is_claimable_fleet_work(self, v3_store):
        """A pre-fleet campaign's pending cells become queue work with
        no extra ceremony; its done cells stay done."""
        path, _ = v3_store
        db = TrialDB(path)
        spec = CampaignSpec(
            name="legacy3", machines=("intel", "amd"),
            distributions=("unbiased",), levels=(3,), instances=1, seed=0,
        )
        FleetCoordinator(db, "legacy3").enqueue(spec)
        queue = WorkQueue(db, "legacy3")
        leases = queue.claim("w1", limit=10)
        assert [lease.machine for lease in leases] == ["amd"]
        assert leases[0].attempt == 1
        assert queue.counts()["done"] == 1  # the legacy done cell

    def test_migrated_campaign_resumes_without_retuning(self, v3_store):
        path, _ = v3_store
        spec = CampaignSpec(
            name="legacy3", machines=("intel",), distributions=("unbiased",),
            levels=(3,), instances=1, seed=0,
        )
        campaign = Campaign(spec, TrialDB(path))
        assert campaign.pending() == []
        results = campaign.run()
        assert [r.source for r in results] == ["skipped"]


class TestV3MigrationAtomicity:
    def test_failed_migration_rolls_back_to_clean_v3(self, v3_store, monkeypatch):
        import repro.store.schema as schema

        monkeypatch.setattr(
            schema,
            "_MIGRATE_V3_V4",
            schema._MIGRATE_V3_V4 + ("INSERT INTO nonexistent VALUES (1)",),
        )
        path, plan_json = v3_store
        with pytest.raises(sqlite3.OperationalError):
            TrialDB(path)

        # Still version 3, no lease columns: the rollback was complete.
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == 3
        columns = [
            row[1] for row in conn.execute("PRAGMA table_info(campaign_cells)")
        ]
        assert "lease_owner" not in columns and "ndim" in columns
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert "fleet_workers" not in tables
        conn.close()

        # With the fault removed the same file migrates fine.
        monkeypatch.undo()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_concurrent_migration_loser_noops(self, v3_store):
        import repro.store.schema as schema

        path, plan_json = v3_store
        TrialDB(path).close()  # first opener migrates v3 -> v4
        conn = sqlite3.connect(path)
        schema._migrate_step(conn, 3)  # loser replays: must no-op, not crash
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        conn.close()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_v1_store_chains_every_step(self, tmp_path):
        # A PR-2-era v1 store must hop v1 -> v2 -> v3 -> v4 in one open.
        from tests.store.test_migration import V1_SCHEMA

        path = tmp_path / "v1-chain.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(V1_SCHEMA)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        columns = [
            row[1] for row in db.conn.execute("PRAGMA table_info(campaign_cells)")
        ]
        assert {"operator", "ndim", "lease_owner", "attempts"} <= set(columns)
