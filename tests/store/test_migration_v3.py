"""Schema migration: PR-3/4-era (v2) stores keep working under v3.

Builds a database with the verbatim v2 schema (operator keyfield, no
``ndim``), populates it the way the pre-3-D code did (plan keys ending
with the operator suffix), then opens it through :class:`TrialDB` and
checks that the migrated store resolves old plans (as implicit
``ndim=2``) and accepts new 3-D plans side by side — plus the
mid-migration crash-rollback and concurrent-loser guarantees the v1->v2
step already had.
"""

import json
import sqlite3

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB, TuneKey
from repro.store.schema import SCHEMA_VERSION
from repro.store.trialdb import canonical_accuracies, canonical_seed
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

# The v2 schema exactly as PR 3 shipped it.
V2_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key_v2
    ON trials (kind, distribution, operator, max_level, accuracies,
               machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family_v2
    ON plans (kind, distribution, operator, max_level, accuracies, seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    PRIMARY KEY (campaign, machine, distribution, operator, max_level)
);
"""

KEY = TuneKey(max_level=3, instances=1, seed=0)


def _tiny_plan(operator=None):
    return VCycleTuner(
        max_level=KEY.max_level,
        training=TrainingData(
            distribution=KEY.distribution, instances=1, seed=0, operator=operator
        ),
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


def _v2_plan_key(fingerprint: str, key: TuneKey) -> str:
    """The storage key exactly as PR 3/4 computed it (no ndim suffix)."""
    return "|".join(
        [
            fingerprint,
            key.kind,
            key.distribution,
            str(key.max_level),
            canonical_accuracies(key.accuracies),
            canonical_seed(key.seed),
            str(key.instances),
            key.operator,
        ]
    )


@pytest.fixture()
def v2_store(tmp_path):
    """A populated PR-3/4-era database file."""
    path = tmp_path / "pr4-store.sqlite"
    plan = _tiny_plan()
    plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    fingerprint = INTEL_HARPERTOWN.fingerprint()
    conn = sqlite3.connect(path)
    conn.executescript(V2_SCHEMA)
    conn.execute("PRAGMA user_version = 2")
    conn.execute(
        """
        INSERT INTO plans (plan_key, kind, distribution, operator, max_level,
                           accuracies, machine_fingerprint, seed, instances,
                           machine_name, profile_json, plan_json, hits)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 5)
        """,
        (
            _v2_plan_key(fingerprint, KEY),
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
            json.dumps(INTEL_HARPERTOWN.to_dict(), sort_keys=True),
            plan_json,
        ),
    )
    conn.execute(
        """
        INSERT INTO trials (kind, distribution, operator, max_level, accuracies,
                            machine_fingerprint, seed, instances, machine_name)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
        """,
        (
            KEY.kind,
            KEY.distribution,
            KEY.operator,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
        ),
    )
    conn.execute(
        """
        INSERT INTO campaign_cells (campaign, machine, distribution, operator,
                                    max_level, status, source)
        VALUES ('legacy2', 'intel', 'unbiased', 'poisson', 3, 'done', 'tuned')
        """
    )
    conn.commit()
    conn.close()
    return path, plan_json


class TestV2Migration:
    def test_migration_stamps_schema_version(self, v2_store):
        path, _ = v2_store
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION

    def test_old_plan_resolves_as_implicit_2d(self, v2_store):
        path, plan_json = v2_store
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None
        assert hit.source == "exact"
        assert hit.plan_json == plan_json
        assert KEY.ndim == 2

    def test_old_trials_default_to_ndim_2(self, v2_store):
        path, _ = v2_store
        db = TrialDB(path)
        records = db.trials()
        assert len(records) == 1
        assert records[0].ndim == 2 and records[0].operator == "poisson"
        assert db.trials(ndim=3) == []

    def test_old_campaign_cells_survive_with_ndim(self, v2_store):
        path, _ = v2_store
        db = TrialDB(path)
        rows = db.conn.execute(
            "SELECT ndim, status FROM campaign_cells WHERE campaign = 'legacy2'"
        ).fetchall()
        assert [(r["ndim"], r["status"]) for r in rows] == [(2, "done")]

    def test_3d_plans_coexist_with_migrated_2d_ones(self, v2_store):
        path, _ = v2_store
        registry = PlanRegistry(TrialDB(path))
        key3d = TuneKey(max_level=3, instances=1, seed=0, operator="poisson3d")
        calls = []

        def tuner():
            calls.append(1)
            return _tiny_plan(operator="poisson3d")

        first = registry.get_or_tune(INTEL_HARPERTOWN, key3d, tuner=tuner)
        assert first.source == "tuned" and calls == [1]
        assert registry.get(INTEL_HARPERTOWN, KEY).source == "exact"
        assert registry.get(INTEL_HARPERTOWN, key3d).source == "exact"
        assert len(registry) == 2
        by_ndim = {row["ndim"] for row in registry.plans()}
        assert by_ndim == {2, 3}

    def test_migrated_campaign_resumes_without_retuning(self, v2_store):
        path, _ = v2_store
        spec = CampaignSpec(
            name="legacy2", machines=("intel",), distributions=("unbiased",),
            levels=(3,), instances=1, seed=0,
        )
        campaign = Campaign(spec, TrialDB(path))
        assert campaign.pending() == []
        results = campaign.run()
        assert [r.source for r in results] == ["skipped"]


class TestV2MigrationAtomicity:
    def test_failed_migration_rolls_back_to_clean_v2(self, v2_store, monkeypatch):
        import repro.store.schema as schema

        monkeypatch.setattr(
            schema,
            "_MIGRATE_V2_V3",
            schema._MIGRATE_V2_V3 + ("INSERT INTO nonexistent VALUES (1)",),
        )
        path, plan_json = v2_store
        with pytest.raises(sqlite3.OperationalError):
            TrialDB(path)

        # Still version 2, no ndim column: the rollback was complete.
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == 2
        columns = [row[1] for row in conn.execute("PRAGMA table_info(plans)")]
        assert "ndim" not in columns and "operator" in columns
        conn.close()

        # With the fault removed the same file migrates fine.
        monkeypatch.undo()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_concurrent_migration_loser_noops(self, v2_store):
        import repro.store.schema as schema

        path, plan_json = v2_store
        TrialDB(path).close()  # first opener migrates v2 -> v3
        conn = sqlite3.connect(path)
        schema._migrate_step(conn, 2)  # loser replays: must no-op, not crash
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        conn.close()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_v1_store_chains_both_steps(self, tmp_path):
        # A PR-2-era v1 store must hop v1 -> v2 -> v3 in one open.
        from tests.store.test_migration import V1_SCHEMA

        path = tmp_path / "v1-chain.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(V1_SCHEMA)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        columns = [row[1] for row in db.conn.execute("PRAGMA table_info(plans)")]
        assert "operator" in columns and "ndim" in columns
