"""Tests for the SQLite trial database."""

import sqlite3

import pytest

from repro.store.trialdb import TrialDB, TrialRecord, canonical_seed


def make_record(**overrides) -> TrialRecord:
    base = dict(
        kind="multigrid-v",
        distribution="unbiased",
        max_level=4,
        accuracies=(1e1, 1e3, 1e5),
        machine_fingerprint="mp-0123456789abcdef",
        seed=0,
        instances=2,
        machine_name="intel-harpertown",
        cycle_shape="p0:direct | p1:recurse(j=2, x1)",
        simulated_cost=1.5e-5,
        wall_seconds=0.8,
        plan_json='{"format":"repro-multigrid-config-v1"}',
    )
    base.update(overrides)
    return TrialRecord(**base)


class TestTrialRoundTrip:
    def test_record_and_query(self):
        db = TrialDB(":memory:")
        trial_id = db.record_trial(make_record())
        assert trial_id == 1
        (got,) = db.trials()
        assert got == make_record()
        assert got.trial_id == 1
        assert got.created_at is not None

    def test_seed_none_round_trips(self):
        db = TrialDB(":memory:")
        db.record_trial(make_record(seed=None))
        (got,) = db.trials()
        assert got.seed is None
        assert canonical_seed(None) == "null"

    def test_keyfield_filters(self):
        db = TrialDB(":memory:")
        db.record_trial(make_record())
        db.record_trial(make_record(distribution="biased"))
        db.record_trial(make_record(kind="full-multigrid"))
        assert len(db.trials()) == 3
        assert len(db.trials(distribution="biased")) == 1
        assert len(db.trials(kind="multigrid-v")) == 2
        assert len(db.trials(machine_fingerprint="mp-zzz")) == 0


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with TrialDB(path) as db:
            db.record_trial(make_record())
        with TrialDB(path) as db:
            assert db.count_trials() == 1

    def test_wal_mode_on_disk(self, tmp_path):
        with TrialDB(tmp_path / "store.sqlite") as db:
            (mode,) = db.conn.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "store.sqlite"
        TrialDB(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="schema version 99"):
            TrialDB(path)


class TestRunTable:
    def test_rows_and_format(self):
        db = TrialDB(":memory:")
        db.record_trial(make_record())
        headers, rows = db.run_table_rows()
        assert headers[0] == "kind"
        assert len(rows) == 1
        text = db.format_run_table()
        assert "unbiased" in text
        assert "machine_fingerprint" in text

    def test_empty_format(self):
        assert "no trials" in TrialDB(":memory:").format_run_table()

    def test_export_csv(self, tmp_path):
        db = TrialDB(":memory:")
        db.record_trial(make_record())
        db.record_trial(make_record(distribution="biased"))
        out = tmp_path / "runs.csv"
        assert db.export_csv(out) == 2
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("kind,")


class TestGC:
    def test_gc_keeps_latest_per_key(self):
        db = TrialDB(":memory:")
        db.record_trial(make_record(wall_seconds=1.0))
        db.record_trial(make_record(wall_seconds=2.0))
        db.record_trial(make_record(distribution="biased"))
        removed = db.gc()
        assert removed["trials"] == 1
        kept = db.trials(distribution="unbiased")
        assert len(kept) == 1
        assert kept[0].wall_seconds == 2.0

    def test_gc_drops_unfinished_campaign_cells(self):
        db = TrialDB(":memory:")
        db.conn.execute(
            "INSERT INTO campaign_cells (campaign, machine, distribution, "
            "max_level, status) VALUES ('c', 'intel', 'unbiased', 4, 'pending')"
        )
        db.conn.execute(
            "INSERT INTO campaign_cells (campaign, machine, distribution, "
            "max_level, status) VALUES ('c', 'amd', 'unbiased', 4, 'done')"
        )
        db.conn.commit()
        removed = db.gc()
        assert removed["campaign_cells"] == 1
        (n,) = db.conn.execute("SELECT COUNT(*) FROM campaign_cells").fetchone()
        assert n == 1
