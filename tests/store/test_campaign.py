"""Tests for resumable autotuning campaigns."""

from pathlib import Path

import pytest

from repro.store.campaign import Campaign, CampaignSpec
from repro.store.registry import PlanRegistry
from repro.store.trialdb import TrialDB

SPEC = CampaignSpec(
    name="test-sweep",
    machines=("intel", "amd"),
    distributions=("unbiased",),
    levels=(3, 4),
    instances=1,
    seed=3,
)


class TestDbParameter:
    """Campaign accepts a PlanRegistry, a TrialDB, or a database path."""

    def test_accepts_trialdb(self):
        db = TrialDB(":memory:")
        campaign = Campaign(SPEC, db)
        assert campaign.db is db

    def test_accepts_plan_registry(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        campaign = Campaign(SPEC, registry)
        assert campaign.registry is registry
        assert campaign.db is registry.db

    def test_accepts_str_path(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        campaign = Campaign(SPEC, path)
        assert campaign.db.path == path

    def test_accepts_pathlib_path(self, tmp_path):
        path = tmp_path / "store.sqlite"
        campaign = Campaign(SPEC, path)
        assert campaign.db.path == str(path)
        assert isinstance(path, Path)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="PlanRegistry, TrialDB, or"):
            Campaign(SPEC, 42)


class TestSweep:
    def test_full_run_covers_grid(self):
        campaign = Campaign(SPEC, TrialDB(":memory:"))
        results = campaign.run()
        assert len(results) == 4
        assert all(r.source == "tuned" for r in results)
        assert campaign.status() == {"done": 4, "pending": 0}
        assert campaign.pending() == []

    def test_cells_tuned_per_machine(self):
        # allow_nearest defaults off for campaigns: every machine gets
        # its own plan even when a neighbour's plan is already stored.
        db = TrialDB(":memory:")
        campaign = Campaign(SPEC, db)
        campaign.run()
        assert len(PlanRegistry(db)) == 4

    def test_run_table_lists_every_cell(self):
        campaign = Campaign(SPEC, TrialDB(":memory:"))
        campaign.run(max_cells=1)
        table = campaign.run_table()
        assert table.count("done") == 1
        assert table.count("pending") == 3
        assert "intel" in table and "amd" in table


class TestResume:
    def test_interrupted_campaign_resumes_without_redoing_cells(self, tmp_path):
        path = tmp_path / "store.sqlite"
        first = Campaign(SPEC, TrialDB(path))
        first.run(max_cells=3)  # "interrupted" after three cells
        assert first.status() == {"done": 3, "pending": 1}
        first.db.close()

        tuned_before = len(PlanRegistry(TrialDB(path)))
        resumed = Campaign(SPEC, TrialDB(path))
        results = resumed.run()
        skipped = [r for r in results if r.source == "skipped"]
        executed = [r for r in results if r.source != "skipped"]
        assert len(skipped) == 3  # completed cells are never redone
        assert len(executed) == 1
        assert resumed.status() == {"done": 4, "pending": 0}
        # Only the one pending cell produced a new registry entry.
        assert len(resumed.registry) == tuned_before + 1

    def test_completed_campaign_rerun_is_all_skips(self):
        db = TrialDB(":memory:")
        Campaign(SPEC, db).run()
        trials_before = db.count_trials()
        results = Campaign(SPEC, db).run()
        assert all(r.source == "skipped" for r in results)
        assert db.count_trials() == trials_before

    def test_on_cell_callback_sees_executed_cells_only(self):
        campaign = Campaign(SPEC, TrialDB(":memory:"))
        seen = []
        campaign.run(max_cells=2, on_cell=lambda cell: seen.append(cell))
        assert len(seen) == 2
        assert all(cell.source == "tuned" for cell in seen)

    def test_shared_registry_across_campaigns(self):
        # Two campaigns with the same keyfields share tuned plans: the
        # second campaign's cells are registry exact-hits, not re-tunes.
        db = TrialDB(":memory:")
        Campaign(SPEC, db).run()
        other = CampaignSpec(
            name="second-sweep",
            machines=SPEC.machines,
            distributions=SPEC.distributions,
            levels=SPEC.levels,
            instances=SPEC.instances,
            seed=SPEC.seed,
        )
        results = Campaign(other, db).run()
        assert all(r.source == "exact" for r in results)
        assert db.count_trials() == 4  # no new tuning trials
