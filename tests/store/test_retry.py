"""The locked-database retry helper and its TrialDB integration."""

import sqlite3
import threading
import time

import pytest

from repro.store import TrialDB
from repro.store.retry import (
    DEFAULT_RETRY,
    RetryPolicy,
    is_locked_error,
    run_with_retry,
)


class TestIsLockedError:
    @pytest.mark.parametrize(
        "message",
        ["database is locked", "database table is locked", "database is busy"],
    )
    def test_contention_messages_match(self, message):
        assert is_locked_error(sqlite3.OperationalError(message)) is True

    def test_other_operational_errors_do_not_match(self):
        assert is_locked_error(sqlite3.OperationalError("no such table: x")) is False

    def test_non_sqlite_errors_do_not_match(self):
        assert is_locked_error(RuntimeError("database is locked")) is False


class TestRetryPolicy:
    def test_delay_doubles_then_caps(self):
        policy = RetryPolicy(retries=10, base_delay=0.1, max_delay=0.5)
        assert [policy.delay(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)

    def test_default_is_bounded(self):
        assert DEFAULT_RETRY.retries == 5
        total = sum(DEFAULT_RETRY.delay(i) for i in range(DEFAULT_RETRY.retries))
        assert total < 5.0


class TestRunWithRetry:
    def test_success_needs_no_sleep(self):
        sleeps = []
        assert run_with_retry(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_locked_error_retries_until_success(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        policy = RetryPolicy(retries=5, base_delay=0.01, max_delay=1.0)
        assert run_with_retry(flaky, policy, sleep=sleeps.append) == "ok"
        assert len(attempts) == 3
        assert sleeps == [0.01, 0.02]

    def test_exhausted_retries_reraise_the_lock_error(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        policy = RetryPolicy(retries=2, base_delay=0.0)
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            run_with_retry(always_locked, policy, sleep=lambda _: None)

    def test_non_lock_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: plans")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            run_with_retry(broken, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_on_retry_observes_each_backoff(self):
        attempts = []
        seen = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is busy")
            return None

        run_with_retry(
            flaky,
            RetryPolicy(retries=5, base_delay=0.0),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(0, "database is busy"), (1, "database is busy")]

    def test_zero_retries_means_one_try(self):
        attempts = []

        def always_locked():
            attempts.append(1)
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            run_with_retry(
                always_locked, RetryPolicy(retries=0), sleep=lambda _: None
            )
        assert len(attempts) == 1


class TestTrialDBWrite:
    def test_write_returns_the_callbacks_value(self):
        db = TrialDB(":memory:")
        assert db.write(lambda conn: conn.execute("SELECT 7").fetchone()[0]) == 7
        db.close()

    def test_write_rolls_back_failed_transactions(self):
        db = TrialDB(":memory:")
        with pytest.raises(sqlite3.OperationalError):
            db.write(lambda conn: conn.execute("INSERT INTO nope VALUES (1)"))
        # The connection is still usable afterwards.
        assert db.write(lambda conn: conn.execute("SELECT 1").fetchone()[0]) == 1
        db.close()

    def test_busy_timeout_is_applied(self, tmp_path):
        db = TrialDB(tmp_path / "t.sqlite", busy_timeout=7.5)
        (value,) = db.conn.execute("PRAGMA busy_timeout").fetchone()
        assert value == 7500
        db.close()

    def test_write_retries_through_an_external_lock(self, tmp_path):
        """A second connection holding the write lock makes the first
        writer block, back off, and succeed once the lock drops —
        instead of surfacing 'database is locked'."""
        path = tmp_path / "contended.sqlite"
        # Tiny busy_timeout so the lock error surfaces fast and the
        # retry loop (not SQLite's internal wait) does the work.
        db = TrialDB(path, busy_timeout=0.05, retry=RetryPolicy(
            retries=10, base_delay=0.05, max_delay=0.2
        ))

        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.5, lambda: (blocker.commit(), blocker.close()))
        release.start()
        start = time.perf_counter()
        db.write(
            lambda conn: (
                conn.execute(
                    "INSERT INTO campaigns (name, spec_json) VALUES ('c', '{}')"
                ),
                conn.commit(),
            )
        )
        elapsed = time.perf_counter() - start
        release.join()
        assert elapsed >= 0.3  # it really waited for the blocker
        row = db.conn.execute("SELECT name FROM campaigns").fetchone()
        assert row["name"] == "c"
        db.close()
