"""Tests for the tuner -> store trial-sink hook."""

import json

from repro.machines.presets import INTEL_HARPERTOWN
from repro.store.sink import CollectingSink, DBTrialSink, plan_cycle_shape
from repro.store.trialdb import TrialDB
from repro.tuner.config import plan_from_dict, plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData


def make_training() -> TrainingData:
    return TrainingData(distribution="unbiased", instances=1, seed=3)


class TestVCycleSink:
    def test_tune_emits_one_trial(self):
        sink = CollectingSink()
        plan = VCycleTuner(
            max_level=3,
            training=make_training(),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            sink=sink,
        ).tune()
        (trial,) = sink.trials
        assert trial.kind == "multigrid-v"
        assert trial.distribution == "unbiased"
        assert trial.max_level == 3
        assert trial.machine_fingerprint == INTEL_HARPERTOWN.fingerprint()
        assert trial.machine_name == INTEL_HARPERTOWN.name
        assert trial.seed == 3 and trial.instances == 1
        assert trial.wall_seconds > 0
        assert trial.cycle_shape == plan_cycle_shape(plan)
        # The stored plan JSON reconstructs the exact plan.
        restored = plan_from_dict(json.loads(trial.plan_json))
        assert plan_to_dict(restored) == plan_to_dict(plan)

    def test_no_sink_no_side_effects(self):
        plan = VCycleTuner(
            max_level=2,
            training=make_training(),
            timing=CostModelTiming(INTEL_HARPERTOWN),
        ).tune()
        assert plan.max_level == 2  # just tunes; nothing recorded anywhere

    def test_db_sink_writes_rows(self):
        db = TrialDB(":memory:")
        VCycleTuner(
            max_level=2,
            training=make_training(),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            sink=DBTrialSink(db),
        ).tune()
        assert db.count_trials() == 1
        (trial,) = db.trials(kind="multigrid-v")
        assert trial.simulated_cost > 0


class TestFullMGSink:
    def test_tune_emits_full_mg_trial(self):
        training = make_training()
        timing = CostModelTiming(INTEL_HARPERTOWN)
        vplan = VCycleTuner(max_level=3, training=training, timing=timing).tune()
        sink = CollectingSink()
        FullMGTuner(vplan=vplan, training=training, timing=timing, sink=sink).tune()
        (trial,) = sink.trials
        assert trial.kind == "full-multigrid"
        assert json.loads(trial.plan_json)["kind"] == "full-multigrid"
