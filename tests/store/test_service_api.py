"""Tests for the registry-backed core entry points."""

import pytest

from repro.core import autotune_cached, poisson_problem, solve_service
from repro.core.api import _resolve_registry, default_registry
from repro.store.registry import PlanRegistry
from repro.store.trialdb import TrialDB
from repro.tuner.config import plan_to_dict


class TestAutotuneCached:
    def test_repeat_call_is_a_registry_hit(self, tmp_path):
        path = tmp_path / "store.sqlite"
        plan1 = autotune_cached(max_level=3, instances=1, seed=3, store=path)
        plan2 = autotune_cached(max_level=3, instances=1, seed=3, store=path)
        assert plan_to_dict(plan1) == plan_to_dict(plan2)
        # Exactly one tuning trial was logged for the two calls.
        assert TrialDB(path).count_trials() == 1

    def test_matches_uncached_autotune(self):
        from repro.core import autotune

        cached = autotune_cached(
            max_level=3, instances=1, seed=3, store=TrialDB(":memory:")
        )
        direct = autotune(max_level=3, instances=1, seed=3)
        direct.metadata.pop("audit", None)
        got = plan_to_dict(cached)
        want = plan_to_dict(direct)
        assert got["table"] == want["table"]
        assert got["accuracies"] == want["accuracies"]

    def test_store_argument_forms(self, tmp_path):
        db = TrialDB(":memory:")
        assert isinstance(_resolve_registry(db), PlanRegistry)
        assert isinstance(_resolve_registry(str(tmp_path / "s.sqlite")), PlanRegistry)
        registry = PlanRegistry(db)
        assert _resolve_registry(registry) is registry
        assert _resolve_registry(None) is default_registry()
        with pytest.raises(TypeError, match="store"):
            _resolve_registry(42)

    def test_full_mg_kind(self):
        plan = autotune_cached(
            max_level=3,
            instances=1,
            seed=3,
            kind="full-multigrid",
            store=TrialDB(":memory:"),
        )
        assert plan_to_dict(plan)["kind"] == "full-multigrid"


class TestSolveService:
    def test_cold_then_warm(self, tmp_path):
        store = tmp_path / "service.sqlite"
        problem = poisson_problem("unbiased", n=17, seed=21)
        x1, meter1, hit1 = solve_service(
            problem, 1e5, instances=1, seed=3, store=store
        )
        x2, meter2, hit2 = solve_service(
            problem, 1e5, instances=1, seed=3, store=store
        )
        assert hit1.source == "tuned"
        assert hit2.source == "exact"
        assert x1.shape == (17, 17)
        assert (x1 == x2).all()
        assert meter1.counts == meter2.counts

    def test_distribution_from_problem_label(self):
        db = TrialDB(":memory:")
        problem = poisson_problem("biased", n=9, seed=5)
        _, _, hit = solve_service(problem, 1e3, instances=1, seed=3, store=db)
        (trial,) = db.trials()
        assert trial.distribution == "biased"
        assert hit.source == "tuned"

    def test_unlabelled_problem_needs_explicit_distribution(self):
        import numpy as np

        from repro.workloads.problem import PoissonProblem

        problem = PoissonProblem(b=np.zeros((9, 9)), boundary=np.zeros(32))
        with pytest.raises(ValueError, match="distribution"):
            solve_service(problem, 1e3, store=TrialDB(":memory:"))
        # Passing distribution= explicitly works.
        _, _, hit = solve_service(
            problem,
            1e3,
            distribution="unbiased",
            instances=1,
            seed=3,
            store=TrialDB(":memory:"),
        )
        assert hit.source == "tuned"


class TestSolveServiceAutoDistribution:
    def test_auto_classifies_unlabelled_problem(self):
        import numpy as np

        from repro.workloads.problem import PoissonProblem

        rng = np.random.default_rng(1)
        scale, shift = float(2**32), float(2**31)
        problem = PoissonProblem(
            b=rng.uniform(-scale, scale, (9, 9)) + shift,
            boundary=rng.uniform(-scale, scale, 32) + shift,
        )
        db = TrialDB(":memory:")
        _, _, hit = solve_service(
            problem, 1e3, distribution="auto", instances=1, seed=3, store=db
        )
        (trial,) = db.trials()
        assert trial.distribution == "biased"
        assert hit.source == "tuned"

    def test_auto_overrides_the_label(self):
        """'auto' classifies the data even when a label is present."""
        db = TrialDB(":memory:")
        problem = poisson_problem("unbiased", n=9, seed=5)
        _, _, _ = solve_service(
            problem, 1e3, distribution="auto", instances=1, seed=3, store=db
        )
        (trial,) = db.trials()
        assert trial.distribution == "unbiased"  # classifier agrees here

    def test_unknown_label_still_raises_without_auto(self):
        import numpy as np

        from repro.workloads.problem import PoissonProblem

        problem = PoissonProblem(b=np.zeros((9, 9)), boundary=np.zeros(32))
        with pytest.raises(ValueError, match='"auto"'):
            solve_service(problem, 1e3, store=TrialDB(":memory:"))


class TestDefaultRegistry:
    def test_env_var_change_takes_effect(self, tmp_path, monkeypatch):
        from repro.core.api import STORE_ENV

        monkeypatch.delenv(STORE_ENV, raising=False)
        in_memory = default_registry()
        path = tmp_path / "env-store.sqlite"
        monkeypatch.setenv(STORE_ENV, str(path))
        on_disk = default_registry()
        assert on_disk is not in_memory
        assert on_disk.db.path == str(path)
        assert default_registry() is on_disk  # cached per path
        monkeypatch.delenv(STORE_ENV)
        assert default_registry() is in_memory

    def test_repeated_calls_share_one_connection(self, tmp_path, monkeypatch):
        from repro.core.api import STORE_ENV

        monkeypatch.setenv(STORE_ENV, str(tmp_path / "shared.sqlite"))
        first = default_registry()
        second = default_registry()
        assert second is first
        assert second.db is first.db
        assert second.db.conn is first.db.conn  # one SQLite connection

    def test_relative_spellings_resolve_to_one_registry(
        self, tmp_path, monkeypatch
    ):
        from repro.core.api import STORE_ENV

        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv(STORE_ENV, "rel-store.sqlite")
        plain = default_registry()
        monkeypatch.setenv(STORE_ENV, "./rel-store.sqlite")
        dotted = default_registry()
        assert dotted is plain

    def test_close_default_registry(self, tmp_path, monkeypatch):
        import sqlite3

        from repro.core import close_default_registry
        from repro.core.api import STORE_ENV

        path = tmp_path / "closeme.sqlite"
        monkeypatch.setenv(STORE_ENV, str(path))
        registry = default_registry()
        assert close_default_registry(str(path)) == 1
        with pytest.raises(sqlite3.ProgrammingError):
            registry.db.conn.execute("SELECT 1")
        # The next call reopens cleanly (a fresh cached instance).
        reopened = default_registry()
        assert reopened is not registry
        assert tuple(reopened.db.conn.execute("SELECT 1").fetchone()) == (1,)

    def test_close_all_and_unknown_path(self, tmp_path, monkeypatch):
        from repro.core import close_default_registry
        from repro.core.api import STORE_ENV

        assert close_default_registry(str(tmp_path / "never-opened.sqlite")) == 0
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "a.sqlite"))
        default_registry()
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "b.sqlite"))
        default_registry()
        assert close_default_registry() >= 2  # closes every cached registry
        assert close_default_registry() == 0  # idempotent
