"""Schema migration: PR-2-era (v1) stores keep working under v2.

Builds a database with the verbatim v1 schema, populates it the way the
PR-2 code did (plan keys without the operator suffix, no operator
columns), then opens it through :class:`TrialDB` and checks that the
migrated store resolves old plans (as the implicit Poisson operator) and
accepts new operator-keyed plans side by side.
"""

import json
import sqlite3

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB, TuneKey
from repro.store.schema import SCHEMA_VERSION
from repro.store.trialdb import canonical_accuracies, canonical_seed
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

# The v1 schema exactly as PR 2 shipped it.
V1_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key
    ON trials (kind, distribution, max_level, accuracies,
               machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family
    ON plans (kind, distribution, max_level, accuracies, seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    PRIMARY KEY (campaign, machine, distribution, max_level)
);
"""

KEY = TuneKey(max_level=3, instances=1, seed=0)


def _tiny_plan():
    return VCycleTuner(
        max_level=KEY.max_level,
        training=TrainingData(distribution=KEY.distribution, instances=1, seed=0),
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


def _v1_plan_key(fingerprint: str, key: TuneKey) -> str:
    """The storage key exactly as PR 2 computed it (no operator suffix)."""
    return "|".join(
        [
            fingerprint,
            key.kind,
            key.distribution,
            str(key.max_level),
            canonical_accuracies(key.accuracies),
            canonical_seed(key.seed),
            str(key.instances),
        ]
    )


@pytest.fixture()
def v1_store(tmp_path):
    """A populated PR-2-era database file."""
    path = tmp_path / "pr2-store.sqlite"
    plan = _tiny_plan()
    plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    fingerprint = INTEL_HARPERTOWN.fingerprint()
    conn = sqlite3.connect(path)
    conn.executescript(V1_SCHEMA)
    conn.execute("PRAGMA user_version = 1")
    conn.execute(
        """
        INSERT INTO plans (plan_key, kind, distribution, max_level, accuracies,
                           machine_fingerprint, seed, instances, machine_name,
                           profile_json, plan_json, hits)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 7)
        """,
        (
            _v1_plan_key(fingerprint, KEY),
            KEY.kind,
            KEY.distribution,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
            json.dumps(INTEL_HARPERTOWN.to_dict(), sort_keys=True),
            plan_json,
        ),
    )
    conn.execute(
        """
        INSERT INTO trials (kind, distribution, max_level, accuracies,
                            machine_fingerprint, seed, instances, machine_name)
        VALUES (?, ?, ?, ?, ?, ?, ?, ?)
        """,
        (
            KEY.kind,
            KEY.distribution,
            KEY.max_level,
            canonical_accuracies(KEY.accuracies),
            fingerprint,
            canonical_seed(KEY.seed),
            KEY.instances,
            INTEL_HARPERTOWN.name,
        ),
    )
    conn.execute(
        """
        INSERT INTO campaign_cells (campaign, machine, distribution, max_level,
                                    status, source)
        VALUES ('legacy', 'intel', 'unbiased', 3, 'done', 'tuned')
        """
    )
    conn.commit()
    conn.close()
    return path, plan_json


class TestV1Migration:
    def test_migration_stamps_schema_version(self, v1_store):
        path, _ = v1_store
        db = TrialDB(path)
        (version,) = db.conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION

    def test_old_plan_resolves_as_poisson(self, v1_store):
        path, plan_json = v1_store
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None
        assert hit.source == "exact"
        assert hit.plan_json == plan_json
        # The implicit-poisson key and an explicit-poisson key are the same.
        assert KEY.operator == "poisson"

    def test_old_trials_default_to_poisson_operator(self, v1_store):
        path, _ = v1_store
        db = TrialDB(path)
        records = db.trials()
        assert len(records) == 1
        assert records[0].operator == "poisson"

    def test_old_campaign_cells_survive_with_operator(self, v1_store):
        path, _ = v1_store
        db = TrialDB(path)
        rows = db.conn.execute(
            "SELECT operator, status FROM campaign_cells WHERE campaign = 'legacy'"
        ).fetchall()
        assert [(r["operator"], r["status"]) for r in rows] == [("poisson", "done")]

    def test_new_operator_plans_coexist_with_migrated_ones(self, v1_store):
        path, _ = v1_store
        registry = PlanRegistry(TrialDB(path))
        aniso_key = TuneKey(max_level=3, instances=1, seed=0,
                            operator="anisotropic(epsilon=0.01)")
        calls = []

        def tuner():
            calls.append(1)
            training = TrainingData(distribution="unbiased", instances=1, seed=0,
                                    operator="anisotropic(epsilon=0.01)")
            return VCycleTuner(
                max_level=3, training=training,
                timing=CostModelTiming(INTEL_HARPERTOWN), keep_audit=False,
            ).tune()

        first = registry.get_or_tune(INTEL_HARPERTOWN, aniso_key, tuner=tuner)
        assert first.source == "tuned" and calls == [1]
        # Both keys now resolve, independently.
        assert registry.get(INTEL_HARPERTOWN, KEY).source == "exact"
        assert registry.get(INTEL_HARPERTOWN, aniso_key).source == "exact"
        assert len(registry) == 2

    def test_migrated_campaign_resumes_without_retuning(self, v1_store):
        path, _ = v1_store
        spec = CampaignSpec(
            name="legacy", machines=("intel",), distributions=("unbiased",),
            levels=(3,), instances=1, seed=0,
        )
        campaign = Campaign(spec, TrialDB(path))
        assert campaign.pending() == []
        results = campaign.run()
        assert [r.source for r in results] == ["skipped"]

    def test_newer_schema_still_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="refusing to open"):
            TrialDB(path)


class TestMigrationAtomicity:
    def test_failed_migration_rolls_back_to_clean_v1(self, v1_store, monkeypatch):
        # A crash mid-migration must not leave a half-migrated store:
        # the next open would die re-adding existing columns.  Simulate
        # by failing after the real statements, then verify the store is
        # still pristine v1 and migrates cleanly on the next attempt.
        import repro.store.schema as schema

        monkeypatch.setattr(
            schema,
            "_MIGRATE_V1_V2",
            schema._MIGRATE_V1_V2 + ("INSERT INTO nonexistent VALUES (1)",),
        )
        path, plan_json = v1_store
        with pytest.raises(sqlite3.OperationalError):
            TrialDB(path)

        # Still version 1, no operator column: the rollback was complete.
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == 1
        columns = [row[1] for row in conn.execute("PRAGMA table_info(plans)")]
        assert "operator" not in columns
        conn.close()

        # With the fault removed the same file migrates fine.
        monkeypatch.undo()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json

    def test_concurrent_migration_loser_noops(self, v1_store):
        # Two processes may race to migrate the same v1 store; whoever
        # acquires the write lock second must detect the already-bumped
        # version inside its transaction and do nothing.
        import repro.store.schema as schema

        path, plan_json = v1_store
        TrialDB(path).close()  # first opener migrates v1 -> v2
        conn = sqlite3.connect(path)
        schema._migrate_v1_v2(conn)  # loser replays: must no-op, not crash
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        assert version == SCHEMA_VERSION
        conn.close()
        registry = PlanRegistry(TrialDB(path))
        hit = registry.get(INTEL_HARPERTOWN, KEY)
        assert hit is not None and hit.plan_json == plan_json
