"""FleetCoordinator: enqueue, status/worker observation, run-table export."""

import csv

import pytest

from repro.fleet import FleetCoordinator, FleetWorker, WorkQueue
from repro.fleet.coordinator import RUN_TABLE_COLUMNS
from repro.store import CampaignSpec, TrialDB
from repro.util.clock import ManualClock

SPEC = CampaignSpec(
    name="coord",
    machines=("intel", "amd"),
    distributions=("unbiased",),
    levels=(3, 4),
    instances=1,
    seed=3,
)


@pytest.fixture()
def db():
    db = TrialDB(":memory:")
    yield db
    db.close()


class TestEnqueue:
    def test_enqueue_seeds_cells_and_spec(self, db):
        coord = FleetCoordinator(db, "coord")
        assert coord.enqueue(SPEC) == 4
        row = db.conn.execute(
            "SELECT spec_json FROM campaigns WHERE name = 'coord'"
        ).fetchone()
        assert row is not None
        assert '"machines": ["intel", "amd"]' in row["spec_json"]

    def test_enqueue_is_idempotent(self, db):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        FleetWorker(db, "coord", worker_id="w1").run(max_cells=1)
        # Re-enqueueing must not reset the completed cell.
        assert coord.enqueue(SPEC) == 3
        assert coord.queue.counts()["done"] == 1

    def test_enqueue_updates_a_changed_spec(self, db):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        wider = CampaignSpec(
            name="coord",
            machines=("intel", "amd", "sun"),
            distributions=("unbiased",),
            levels=(3, 4),
            instances=1,
            seed=3,
        )
        assert coord.enqueue(wider) == 6

    def test_enqueue_rejects_foreign_spec(self, db):
        coord = FleetCoordinator(db, "coord")
        with pytest.raises(ValueError, match="coordinator drives"):
            coord.enqueue(
                CampaignSpec(name="other", machines=("intel",), levels=(3,))
            )


class TestStatus:
    def test_status_snapshot_shape(self, db):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        FleetWorker(db, "coord", worker_id="w1").run()
        snap = coord.status()
        assert snap["campaign"] == "coord"
        assert snap["cells"]["done"] == 4
        assert len(snap["workers"]) == 1
        assert snap["workers"][0]["worker_id"] == "w1"
        assert snap["fleet"]["cells_done"] == 4
        assert snap["fleet"]["cells_per_second"] > 0

    def test_status_releases_expired_leases(self, db):
        clock = ManualClock()
        coord = FleetCoordinator(db, "coord", clock=clock, lease_ttl=10.0)
        coord.enqueue(SPEC)
        WorkQueue(db, "coord", clock=clock, lease_ttl=10.0).claim(
            "dead", limit=2
        )
        clock.advance(10.0)
        snap = coord.status()
        assert snap["cells"]["pending"] == 4
        assert snap["cells"]["leased"] == 0
        assert coord.telemetry.counter("leases_released") == 2

    def test_stale_worker_flagged(self, db):
        clock = ManualClock()
        coord = FleetCoordinator(db, "coord", clock=clock)
        coord.enqueue(SPEC)
        FleetWorker(db, "coord", worker_id="w1", clock=clock).run(max_cells=1)
        clock.advance(600.0)
        workers = coord.workers(stale_after=300.0)
        assert workers[0]["stale"] is True
        assert workers[0]["heartbeat_age_s"] >= 600.0

    def test_format_status_renders_tables(self, db):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        text = coord.format_status()
        assert "campaign 'coord'" in text
        assert "no workers" in text
        FleetWorker(db, "coord", worker_id="w1").run()
        text = coord.format_status()
        assert "w1" in text
        assert "cells_done" in text


class TestExport:
    def test_run_table_has_provenance_columns(self, db):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        FleetWorker(db, "coord", worker_id="w1").run()
        headers, rows = coord.run_table_rows()
        assert headers == list(RUN_TABLE_COLUMNS)
        assert len(rows) == 4
        by_header = [dict(zip(headers, row)) for row in rows]
        for cell in by_header:
            assert cell["status"] == "done"
            assert cell["worker_id"] == "w1"
            assert cell["attempts"] == 1
            assert cell["wall_seconds"] is not None
            assert cell["completed_at"] is not None

    def test_export_run_table_csv(self, db, tmp_path):
        coord = FleetCoordinator(db, "coord")
        coord.enqueue(SPEC)
        FleetWorker(db, "coord", worker_id="w1").run()
        path = tmp_path / "out" / "run_table.csv"
        assert coord.export_run_table(path) == 4
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert set(rows[0]) == set(RUN_TABLE_COLUMNS)
        assert {r["machine"] for r in rows} == {"intel", "amd"}
        assert all(r["worker_id"] == "w1" for r in rows)
