"""Real multi-process fleet: 3 workers, one SQLite store, one killed mid-run.

This is the acceptance scenario (and the CI ``fleet-smoke`` job): worker
processes share a file-backed store; one worker is SIGKILLed while
holding leases; the survivors re-claim its cells after lease expiry and
finish the campaign with zero lost and zero duplicated cells, producing
a registry byte-identical to a serial ``Campaign.run()``.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.fleet import FleetCoordinator, WorkQueue
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB

SPEC = CampaignSpec(
    name="proc-fleet",
    machines=("intel", "amd"),
    distributions=("unbiased",),
    levels=(3, 4),
    instances=1,
    seed=3,
)

LEASE_TTL = 2.0

#: The victim: claims cells through the real WorkQueue, reports, then
#: hangs — exactly what a worker that dies mid-tune looks like from the
#: store's point of view (leases held, never renewed or completed).
VICTIM_SCRIPT = """
import sys, time
from repro.fleet import WorkQueue
from repro.store import TrialDB

db_path, campaign, ttl = sys.argv[1], sys.argv[2], float(sys.argv[3])
queue = WorkQueue(TrialDB(db_path), campaign, lease_ttl=ttl)
leases = queue.claim("victim", limit=2)
print(f"CLAIMED {len(leases)}", flush=True)
time.sleep(120)  # SIGKILL arrives long before this returns
"""


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_worker(db_path: str, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "fleet", "--db", db_path, "work",
            "--campaign", "proc-fleet",
            "--worker-id", worker_id,
            "--lease-ttl", str(LEASE_TTL),
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def test_kill_one_worker_survivors_reclaim(tmp_path):
    db_path = str(tmp_path / "fleet.sqlite")
    db = TrialDB(db_path)
    FleetCoordinator(db, "proc-fleet").enqueue(SPEC)
    db.close()

    victim = subprocess.Popen(
        [sys.executable, "-c", VICTIM_SCRIPT, db_path, "proc-fleet", str(LEASE_TTL)],
        env=_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        line = victim.stdout.readline().strip()
        assert line == "CLAIMED 2", f"victim reported {line!r}"
        # Killed while holding 2 live leases: the crash we recover from.
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        workers = [_spawn_worker(db_path, f"survivor-{i}") for i in range(2)]
        outputs = []
        for proc in workers:
            out, _ = proc.communicate(timeout=180)
            outputs.append(out)
            assert proc.returncode == 0, out
    finally:
        if victim.poll() is None:
            victim.kill()

    db = TrialDB(db_path)
    queue = WorkQueue(db, "proc-fleet")
    counts = queue.counts()
    assert counts == {"pending": 0, "leased": 0, "done": 4, "poisoned": 0}
    cells = queue.cells()
    # Zero lost: every cell completed. Zero duplicated: each cell is one
    # row with a single done transition, owned by exactly one survivor.
    assert all(c["worker_id"] in ("survivor-0", "survivor-1") for c in cells)
    reclaimed = [c for c in cells if c["attempts"] == 2]
    assert len(reclaimed) == 2, [
        (c["machine"], c["max_level"], c["attempts"]) for c in cells
    ]
    assert all(c["attempts"] in (1, 2) for c in cells)

    # The fleet registry is byte-identical to a serial sweep's.
    fleet_contents = PlanRegistry(db).contents()
    db.close()
    serial_db = TrialDB(":memory:")
    Campaign(SPEC, serial_db).run()
    assert fleet_contents == PlanRegistry(serial_db).contents()
    serial_db.close()


def test_three_workers_share_one_store(tmp_path):
    """3 concurrent worker processes drain one campaign with no
    double-claims and no lost cells."""
    db_path = str(tmp_path / "fleet.sqlite")
    db = TrialDB(db_path)
    FleetCoordinator(db, "proc-fleet").enqueue(SPEC)
    db.close()

    workers = [_spawn_worker(db_path, f"w{i}") for i in range(3)]
    for proc in workers:
        out, _ = proc.communicate(timeout=180)
        assert proc.returncode == 0, out

    db = TrialDB(db_path)
    queue = WorkQueue(db, "proc-fleet")
    assert queue.counts() == {"pending": 0, "leased": 0, "done": 4, "poisoned": 0}
    cells = queue.cells()
    assert all(c["attempts"] == 1 for c in cells)  # nobody stole live leases
    assert len(PlanRegistry(db).contents()) == 4
    db.close()
