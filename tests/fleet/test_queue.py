"""Lease lifecycle: claim/renew/complete/fail, expiry, and poison parking."""

import threading

import pytest

from repro.fleet import SQLiteBackend, WorkQueue
from repro.store import Campaign, CampaignSpec, TrialDB
from repro.util.clock import ManualClock

SPEC = CampaignSpec(
    name="q",
    machines=("intel", "amd"),
    distributions=("unbiased",),
    levels=(3, 4),
    instances=1,
    seed=0,
)


@pytest.fixture()
def queue():
    db = TrialDB(":memory:")
    Campaign(SPEC, db)  # seeds the cells
    clock = ManualClock()
    q = WorkQueue(db, "q", clock=clock, lease_ttl=10.0, max_attempts=3)
    yield q, clock, db
    db.close()


class TestClaim:
    def test_claim_marks_leased_and_counts_attempt(self, queue):
        q, clock, db = queue
        leases = q.claim("w1")
        assert len(leases) == 1
        lease = leases[0]
        assert lease.worker_id == "w1"
        assert lease.attempt == 1
        assert lease.expires_at == pytest.approx(10.0)
        assert q.counts() == {"pending": 3, "leased": 1, "done": 0, "poisoned": 0}

    def test_claim_is_exclusive(self, queue):
        q, clock, db = queue
        mine = q.claim("w1", limit=4)
        assert len(mine) == 4
        assert q.claim("w2") == []

    def test_claim_respects_machine_filter(self, queue):
        q, clock, db = queue
        leases = q.claim("w1", limit=4, machines=("amd",))
        assert len(leases) == 2
        assert all(lease.machine == "amd" for lease in leases)

    def test_claim_order_is_deterministic(self, queue):
        q, clock, db = queue
        leases = q.claim("w1", limit=4)
        cells = [lease.cell for lease in leases]
        assert cells == sorted(cells)

    def test_lease_carries_ndim(self, queue):
        q, clock, db = queue
        assert {lease.ndim for lease in q.claim("w1", limit=4)} == {2}


class TestExpiry:
    def test_expired_lease_is_reclaimable(self, queue):
        q, clock, db = queue
        (lost,) = q.claim("w1")  # w1 "crashes" here
        clock.advance(10.0)
        reclaimed = q.claim("w2", limit=4)
        assert lost.cell in [lease.cell for lease in reclaimed]
        again = next(l for l in reclaimed if l.cell == lost.cell)
        assert again.attempt == 2  # the dead worker's attempt stays counted

    def test_live_lease_is_not_reclaimable(self, queue):
        q, clock, db = queue
        q.claim("w1", limit=4)
        clock.advance(9.9)
        assert q.claim("w2") == []

    def test_renew_extends_lease(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        clock.advance(9.0)
        assert q.renew(lease) is True
        clock.advance(9.0)  # 18s total: original lease would have expired
        assert all(l.cell != lease.cell for l in q.claim("w2", limit=4))

    def test_renew_after_loss_fails(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        clock.advance(10.0)
        assert any(l.cell == lease.cell for l in q.claim("w2", limit=4))
        assert q.renew(lease) is False

    def test_release_expired_returns_cells_to_pending(self, queue):
        q, clock, db = queue
        q.claim("w1", limit=2)
        clock.advance(10.0)
        assert q.release_expired() == 2
        assert q.counts()["pending"] == 4


class TestCompleteAndFail:
    def test_complete_marks_done_with_provenance(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        assert q.complete(lease, "tuned", 1.5e-6, 0.25) is True
        cell = next(c for c in q.cells() if c["status"] == "done")
        assert cell["worker_id"] == "w1"
        assert cell["attempts"] == 1
        assert cell["source"] == "tuned"
        assert cell["wall_seconds"] == 0.25
        assert cell["lease_owner"] is None

    def test_complete_after_loss_is_refused(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        clock.advance(10.0)
        (stolen,) = q.claim("w2")
        assert stolen.cell == lease.cell
        assert q.complete(lease, "tuned") is False  # w1 lost the race
        assert q.complete(stolen, "tuned") is True
        assert q.counts()["done"] == 1  # exactly one done transition

    def test_fail_requeues(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        assert q.fail(lease, "boom") == "requeued"
        assert q.counts()["pending"] == 4
        cell = next(c for c in q.cells() if c["last_error"] == "boom")
        assert cell["status"] == "pending"

    def test_fail_without_requeue_parks(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        assert q.fail(lease, "fatal", requeue=False) == "poisoned"
        assert q.counts()["poisoned"] == 1

    def test_fail_after_loss_reports_lost(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        clock.advance(10.0)
        q.claim("w2")
        assert q.fail(lease, "boom") == "lost"


class TestPoisonParking:
    def test_parked_after_max_failed_attempts(self, queue):
        q, clock, db = queue
        outcomes = []
        for worker in ("w1", "w2", "w3", "w4"):
            leases = q.claim(worker, limit=4)
            target = [l for l in leases if l.machine == "amd" and l.max_level == 3]
            for other in leases:
                if other not in target:
                    q.fail(other, "skip this test cell", requeue=True)
            if target:
                outcomes.append(q.fail(target[0], f"crash #{worker}"))
        assert outcomes == ["requeued", "requeued", "poisoned"]

    def test_expired_out_of_attempts_is_parked_not_reclaimed(self, queue):
        q, clock, db = queue
        for _ in range(2):
            (lease,) = q.claim("w1", limit=1)
            q.fail(lease, "boom")
        (lease,) = q.claim("w1", limit=1)
        assert lease.attempt == 3
        clock.advance(10.0)  # third holder dies instead of failing cleanly
        claimed = q.claim("w2", limit=4)
        assert lease.cell not in [l.cell for l in claimed]
        cell = next(c for c in q.cells() if c["status"] == "poisoned")
        assert cell["attempts"] == 3
        assert cell["last_error"] is not None

    def test_poisoned_cells_never_complete(self, queue):
        q, clock, db = queue
        (lease,) = q.claim("w1")
        q.fail(lease, "x", requeue=False)
        assert q.complete(lease, "tuned") is False


class TestConcurrency:
    def test_double_claim_exclusion_under_four_workers(self, tmp_path):
        """4 workers hammering one file-backed store: every cell is
        claimed exactly once, no cell is handed to two workers."""
        path = tmp_path / "fleet.sqlite"
        spec = CampaignSpec(
            name="conc",
            machines=("intel", "amd", "sun"),
            distributions=("unbiased", "biased"),
            levels=(3, 4),
            instances=1,
        )
        Campaign(spec, TrialDB(path)).db.close()
        claimed: dict[str, list] = {}
        barrier = threading.Barrier(4)

        def worker(worker_id: str) -> None:
            db = TrialDB(path)
            queue = WorkQueue(db, "conc", lease_ttl=60.0)
            barrier.wait()
            got = []
            while True:
                leases = queue.claim(worker_id)
                if not leases:
                    break
                got.extend(lease.cell for lease in leases)
            claimed[worker_id] = got
            db.close()

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_cells = [cell for cells in claimed.values() for cell in cells]
        assert len(all_cells) == 12
        assert len(set(all_cells)) == 12  # no double-claims
        db = TrialDB(path)
        q = WorkQueue(db, "conc")
        assert q.counts()["leased"] == 12
        db.close()


class TestBackend:
    def test_trialdb_is_wrapped_automatically(self):
        db = TrialDB(":memory:")
        q = WorkQueue(db, "q")
        assert isinstance(q.backend, SQLiteBackend)
        assert q.backend.db is db

    def test_transact_rolls_back_on_error(self):
        db = TrialDB(":memory:")
        Campaign(SPEC, db)
        backend = SQLiteBackend(db)

        def bad(conn):
            conn.execute("UPDATE campaign_cells SET status = 'leased'")
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            backend.transact(bad)
        assert WorkQueue(backend, "q").counts()["leased"] == 0

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            WorkQueue(TrialDB(":memory:"), "q", max_attempts=0)
