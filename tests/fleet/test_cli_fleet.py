"""`repro-mg fleet {enqueue,work,status,export}` end-to-end via cli.main."""

import csv
import json

import pytest

from repro.cli import main
from repro.store import PlanRegistry, TrialDB

GRID = [
    "--campaign", "cli-fleet",
    "--machine", "intel",
    "--machine", "amd",
    "--max-level", "3",
    "--instances", "1",
    "--seed", "3",
]


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "store.sqlite")


def test_enqueue_then_work_then_status_then_export(db_path, tmp_path, capsys):
    assert main(["fleet", "--db", db_path, "enqueue", *GRID]) == 0
    out = capsys.readouterr().out
    assert "2 cells in grid" in out
    assert "2 open for workers" in out

    assert (
        main(
            [
                "fleet", "--db", db_path, "work",
                "--campaign", "cli-fleet",
                "--worker-id", "cli-w1",
                "--no-wait",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "pulling from 'cli-fleet'" in out
    assert "2 done, 0 failed" in out

    assert main(["fleet", "--db", db_path, "status", "--campaign", "cli-fleet"]) == 0
    out = capsys.readouterr().out
    assert "2 done" in out
    assert "cli-w1" in out

    csv_path = str(tmp_path / "run_table.csv")
    assert (
        main(
            [
                "fleet", "--db", db_path, "export",
                "--campaign", "cli-fleet",
                "--csv", csv_path,
            ]
        )
        == 0
    )
    assert "wrote 2 cell rows" in capsys.readouterr().out
    with open(csv_path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert all(r["worker_id"] == "cli-w1" for r in rows)
    assert all(r["status"] == "done" for r in rows)

    db = TrialDB(db_path)
    assert len(PlanRegistry(db).contents()) == 2
    db.close()


def test_enqueue_is_idempotent_from_cli(db_path, capsys):
    assert main(["fleet", "--db", db_path, "enqueue", *GRID]) == 0
    assert main(["fleet", "--db", db_path, "enqueue", *GRID]) == 0
    out = capsys.readouterr().out
    assert out.count("2 open for workers") == 2


def test_status_json(db_path, capsys):
    main(["fleet", "--db", db_path, "enqueue", *GRID])
    capsys.readouterr()
    assert (
        main(["fleet", "--db", db_path, "status", "--campaign", "cli-fleet", "--json"])
        == 0
    )
    snap = json.loads(capsys.readouterr().out)
    assert snap["campaign"] == "cli-fleet"
    assert snap["cells"]["pending"] == 2
    assert snap["workers"] == []


def test_export_without_cells_prints_notice(db_path, capsys):
    assert main(["fleet", "--db", db_path, "export", "--campaign", "nothing"]) == 0
    assert "no cells enqueued" in capsys.readouterr().out


def test_export_table_to_stdout(db_path, capsys):
    main(["fleet", "--db", db_path, "enqueue", *GRID])
    capsys.readouterr()
    assert main(["fleet", "--db", db_path, "export", "--campaign", "cli-fleet"]) == 0
    out = capsys.readouterr().out
    assert "worker_id" in out
    assert "attempts" in out


def test_work_without_enqueue_fails_clearly(db_path):
    with pytest.raises(ValueError, match="no stored spec"):
        main(["fleet", "--db", db_path, "work", "--campaign", "ghost", "--no-wait"])


def test_enqueue_rejects_mismatched_ndim(db_path):
    with pytest.raises(SystemExit):
        main(
            [
                "fleet", "--db", db_path, "enqueue",
                "--campaign", "bad",
                "--operator", "poisson",
                "--ndim", "3",
            ]
        )


def test_work_machine_filter(db_path, capsys):
    main(["fleet", "--db", db_path, "enqueue", *GRID])
    capsys.readouterr()
    assert (
        main(
            [
                "fleet", "--db", db_path, "work",
                "--campaign", "cli-fleet",
                "--worker-id", "amd-only",
                "--machine", "amd",
                "--no-wait",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "1 done" in out
    assert "amd" in out
    assert "intel" not in out
