"""FleetWorker: drain the queue, match the serial registry, survive crashes."""

import json

import pytest

from repro.fleet import FleetCoordinator, FleetWorker, WorkQueue, load_campaign_spec
from repro.fleet.worker import format_worker_error
from repro.machines.presets import get_preset
from repro.serve.telemetry import Telemetry
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB
from repro.util.clock import ManualClock

SPEC = CampaignSpec(
    name="fleet-test",
    machines=("intel", "amd"),
    distributions=("unbiased",),
    levels=(3, 4),
    instances=1,
    seed=3,
)


def enqueue(db: TrialDB, spec: CampaignSpec = SPEC) -> FleetCoordinator:
    coord = FleetCoordinator(db, spec.name)
    coord.enqueue(spec)
    return coord


class TestLoadCampaignSpec:
    def test_roundtrips_the_enqueued_spec(self):
        db = TrialDB(":memory:")
        enqueue(db)
        assert load_campaign_spec(db, "fleet-test") == SPEC

    def test_missing_campaign_raises(self):
        db = TrialDB(":memory:")
        with pytest.raises(ValueError, match="no stored spec"):
            load_campaign_spec(db, "never-enqueued")


class TestDrain:
    def test_single_worker_drains_the_campaign(self):
        db = TrialDB(":memory:")
        enqueue(db)
        worker = FleetWorker(db, "fleet-test", worker_id="w1")
        results = worker.run()
        assert len(results) == 4
        assert all(r.source == "tuned" for r in results)
        queue = WorkQueue(db, "fleet-test")
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 4, "poisoned": 0}
        assert all(c["worker_id"] == "w1" for c in queue.cells())
        db.close()

    def test_registry_is_byte_identical_to_serial_run(self):
        """The acceptance invariant: a fleet-drained registry equals the
        serial Campaign.run() registry exactly, plan bytes included."""
        serial_db = TrialDB(":memory:")
        Campaign(SPEC, serial_db).run()
        serial = PlanRegistry(serial_db).contents()

        fleet_db = TrialDB(":memory:")
        enqueue(fleet_db)
        FleetWorker(fleet_db, "fleet-test", worker_id="w1").run()
        fleet = PlanRegistry(fleet_db).contents()

        assert fleet == serial
        serial_db.close()
        fleet_db.close()

    def test_max_cells_bounds_the_loop(self):
        db = TrialDB(":memory:")
        enqueue(db)
        results = FleetWorker(db, "fleet-test", worker_id="w1").run(max_cells=2)
        assert len(results) == 2
        assert WorkQueue(db, "fleet-test").counts()["done"] == 2
        db.close()

    def test_machine_filter_restricts_claims(self):
        db = TrialDB(":memory:")
        enqueue(db)
        worker = FleetWorker(
            db, "fleet-test", worker_id="w1", machines=("amd",)
        )
        results = worker.run(wait_for_leased=False)
        assert {r.machine for r in results} == {"amd"}
        counts = WorkQueue(db, "fleet-test").counts()
        assert counts["done"] == 2
        assert counts["pending"] == 2
        db.close()

    def test_worker_records_telemetry(self):
        db = TrialDB(":memory:")
        enqueue(db)
        telemetry = Telemetry()
        FleetWorker(db, "fleet-test", worker_id="w1", telemetry=telemetry).run()
        assert telemetry.counter("cells_done") == 4
        assert telemetry.counter("lease_renewals") == 4
        assert telemetry.counter("cells_failed") == 0
        assert telemetry.gauge("cells_per_second") > 0
        db.close()

    def test_default_worker_id_is_host_pid(self):
        db = TrialDB(":memory:")
        enqueue(db)
        worker = FleetWorker(db, "fleet-test")
        assert ":" in worker.worker_id
        db.close()


class TestCrashRecovery:
    def test_survivor_reclaims_dead_workers_cells(self):
        """Simulated crash: a 'dead' worker claims cells and never
        completes them; once its leases expire a survivor sharing the
        same clock re-claims and finishes every cell."""
        db = TrialDB(":memory:")
        enqueue(db)
        clock = ManualClock()
        # The dead worker grabs half the campaign and vanishes.
        dead = WorkQueue(db, "fleet-test", clock=clock, lease_ttl=30.0)
        stranded = dead.claim("dead-worker", limit=2)
        assert len(stranded) == 2

        survivor = FleetWorker(
            db, "fleet-test", worker_id="survivor", clock=clock, lease_ttl=30.0
        )
        # ManualClock.sleep advances time, so the survivor's idle wait
        # walks the clock past the dead worker's lease expiry.
        results = survivor.run()
        assert len(results) == 4
        cells = WorkQueue(db, "fleet-test").cells()
        assert all(c["status"] == "done" for c in cells)
        assert all(c["worker_id"] == "survivor" for c in cells)
        reclaimed = [c for c in cells if c["attempts"] == 2]
        assert len(reclaimed) == 2  # the stranded cells, exactly once each
        assert survivor.telemetry.counter("cells_reclaimed") == 2
        assert survivor.telemetry.counter("idle_waits") > 0
        db.close()

    def test_wait_for_leased_false_exits_with_foreign_leases_live(self):
        db = TrialDB(":memory:")
        enqueue(db)
        clock = ManualClock()
        WorkQueue(db, "fleet-test", clock=clock, lease_ttl=30.0).claim(
            "dead-worker", limit=2
        )
        worker = FleetWorker(
            db, "fleet-test", worker_id="w1", clock=clock, lease_ttl=30.0
        )
        results = worker.run(wait_for_leased=False)
        assert len(results) == 2  # only the cells that were still pending
        assert WorkQueue(db, "fleet-test").counts()["leased"] == 2
        db.close()

    def test_stop_exits_after_inflight_cell(self):
        db = TrialDB(":memory:")
        enqueue(db)
        worker = FleetWorker(db, "fleet-test", worker_id="w1")
        worker.stop()
        assert worker.run() == []
        db.close()


class TestFormatWorkerError:
    def test_payload_is_structured_json(self):
        try:
            raise ValueError("bad preset")
        except ValueError as exc:
            payload = format_worker_error(exc)
        doc = json.loads(payload)
        assert doc["type"] == "ValueError"
        assert doc["message"] == "bad preset"
        assert "Traceback (most recent call last)" in doc["traceback"]
        assert "raise ValueError" in doc["traceback"]
        # readable as the old "Type: message" style too
        assert "ValueError" in payload and "bad preset" in payload

    def test_traceback_is_tail_bounded(self):
        def recurse(n):
            if n == 0:
                raise RuntimeError("bottom")
            recurse(n - 1)

        try:
            recurse(200)
        except RuntimeError as exc:
            doc = json.loads(format_worker_error(exc, limit=100))
        assert doc["traceback"].startswith("...(truncated)...\n")
        assert len(doc["traceback"]) <= 100 + len("...(truncated)...\n")
        # the tail (the actual raise site) survives the truncation
        assert "bottom" in doc["traceback"]

    def test_message_is_bounded(self):
        try:
            raise RuntimeError("x" * 2000)
        except RuntimeError as exc:
            doc = json.loads(format_worker_error(exc))
        assert len(doc["message"]) == 503
        assert doc["message"].endswith("...")

    def test_poisoned_cell_stores_recoverable_structure(self):
        """The stored last_error round-trips: json.loads on the cell row
        recovers type + message + traceback."""
        db = TrialDB(":memory:")
        spec = CampaignSpec(
            name="fleet-test",
            machines=("no-such-machine",),
            distributions=("unbiased",),
            levels=(3,),
            instances=1,
            seed=3,
        )
        enqueue(db, spec)
        FleetWorker(db, "fleet-test", worker_id="w1", max_attempts=1).run()
        (cell,) = WorkQueue(db, "fleet-test").cells()
        assert cell["status"] == "poisoned"
        doc = json.loads(cell["last_error"])
        assert doc["type"] == "ValueError"
        assert "no-such-machine" in doc["message"]
        assert "Traceback" in doc["traceback"]
        db.close()


class TestFailurePath:
    def test_bad_cell_requeues_then_parks(self):
        """A cell whose machine preset does not exist fails every
        attempt: it is requeued max_attempts-1 times, then poisoned —
        and the rest of the campaign still completes."""
        db = TrialDB(":memory:")
        spec = CampaignSpec(
            name="fleet-test",
            machines=("intel", "no-such-machine"),
            distributions=("unbiased",),
            levels=(3,),
            instances=1,
            seed=3,
        )
        with pytest.raises(ValueError):
            get_preset("no-such-machine")  # the failure we rely on
        enqueue(db, spec)
        worker = FleetWorker(db, "fleet-test", worker_id="w1", max_attempts=3)
        results = worker.run()
        assert len(results) == 1  # only the intel cell tunes
        cells = WorkQueue(db, "fleet-test").cells()
        by_machine = {c["machine"]: c for c in cells}
        assert by_machine["intel"]["status"] == "done"
        poisoned = by_machine["no-such-machine"]
        assert poisoned["status"] == "poisoned"
        assert poisoned["attempts"] == 3
        assert "ValueError" in poisoned["last_error"]
        assert worker.telemetry.counter("cells_failed") == 3
        assert worker.telemetry.counter("cells_requeued") == 2
        assert worker.telemetry.counter("cells_poisoned") == 1
        db.close()

    def test_poisoned_cell_does_not_block_registry(self):
        db = TrialDB(":memory:")
        spec = CampaignSpec(
            name="fleet-test",
            machines=("intel", "no-such-machine"),
            distributions=("unbiased",),
            levels=(3,),
            instances=1,
            seed=3,
        )
        enqueue(db, spec)
        FleetWorker(db, "fleet-test", worker_id="w1").run()
        registry = PlanRegistry(db)
        hit = registry.get(
            get_preset("intel"), spec.key_for("unbiased", 3, spec.operators[0])
        )
        assert hit is not None
        db.close()


class TestHeartbeats:
    def test_heartbeat_row_is_written(self):
        db = TrialDB(":memory:")
        enqueue(db)
        profile = get_preset("intel")
        FleetWorker(
            db, "fleet-test", worker_id="w1", profile=profile
        ).run()
        row = db.conn.execute(
            "SELECT * FROM fleet_workers WHERE worker_id = 'w1'"
        ).fetchone()
        assert row is not None
        assert row["campaign"] == "fleet-test"
        assert row["cells_done"] == 4
        assert row["machine_fingerprint"] == profile.fingerprint()
        assert row["last_heartbeat"] >= row["started_at"]
        db.close()
