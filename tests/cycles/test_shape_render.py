"""Tests for cycle-shape extraction, rendering, and statistics."""

import pytest

from repro.cycles.render import render_call_stack, render_cycle
from repro.cycles.shape import CycleShape, ShapeStep, extract_shape
from repro.cycles.stats import cycle_stats
from repro.tuner.executor import PlanExecutor
from repro.tuner.trace import Trace
from repro.workloads.distributions import make_problem
from tests.tuner.test_choices_plan import tiny_vplan


def hand_trace() -> Trace:
    """A minimal V shape: relax, descend, direct, ascend, relax."""
    t = Trace()
    t.emit("enter", 2, 0)
    t.emit("relax", 2)
    t.emit("descend", 2)
    t.emit("enter", 1, 0)
    t.emit("direct", 1)
    t.emit("exit", 1)
    t.emit("ascend", 2)
    t.emit("relax", 2)
    t.emit("exit", 2)
    return t


class TestExtractShape:
    def test_step_sequence(self):
        shape = extract_shape(hand_trace())
        kinds = [s.kind for s in shape.steps]
        assert kinds == ["relax", "down", "direct", "up", "relax"]
        assert shape.top_level == 2
        assert shape.min_level == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            extract_shape(Trace())

    def test_relaxations_per_level(self):
        shape = extract_shape(hand_trace())
        assert shape.relaxations_per_level() == {2: 2}

    def test_real_plan_trace(self):
        plan = tiny_vplan()
        problem = make_problem("unbiased", 9, seed=601)
        trace = Trace()
        PlanExecutor().run_v(plan, problem.initial_guess(), problem.b, 1, trace=trace)
        shape = extract_shape(trace)
        # (3,1) = recurse x3 into (2,0) = SOR: three descend/ascend pairs.
        downs = [s for s in shape.steps if s.kind == "down"]
        assert len(downs) == 3
        sors = [s for s in shape.steps if s.kind == "sor"]
        assert len(sors) == 3
        assert all(s.count == 5 for s in sors)


class TestRenderCycle:
    def test_contains_level_labels_and_glyphs(self):
        shape = extract_shape(hand_trace())
        text = render_cycle(shape)
        assert "level  2" in text
        assert "level  1" in text
        assert "==>" in text  # direct
        assert "*" in text  # relaxation
        assert "\\" in text and "/" in text

    def test_legend_optional(self):
        shape = extract_shape(hand_trace())
        assert "legend" in render_cycle(shape)
        assert "legend" not in render_cycle(shape, legend=False)

    def test_sor_glyph_carries_count(self):
        shape = CycleShape(top_level=2, steps=(ShapeStep("sor", 2, 7),))
        assert "-7->" in render_cycle(shape, legend=False)

    def test_rows_cover_level_range(self):
        shape = extract_shape(hand_trace())
        lines = render_cycle(shape, legend=False).splitlines()
        assert len(lines) == 2  # levels 2 and 1


class TestRenderCallStack:
    def test_direct_leaf(self):
        plan = tiny_vplan()
        text = render_call_stack(plan, 1, 0)
        assert "direct solve" in text

    def test_recursive_chain_indented(self):
        plan = tiny_vplan()
        text = render_call_stack(plan, 3, 1)
        lines = text.splitlines()
        assert "RECURSE x 3" in lines[0]
        assert lines[1].startswith("  ")
        assert "SOR(w_opt) x 5" in lines[1]

    def test_fmg_stack(self, tuned_fmg_plan):
        text = render_call_stack(tuned_fmg_plan, tuned_fmg_plan.max_level, 0)
        assert "FULL-MG" in text


class TestCycleStats:
    def test_hand_trace_stats(self):
        stats = cycle_stats(extract_shape(hand_trace()))
        assert stats.top_level == 2
        assert stats.bottom_level == 1
        assert stats.direct_level == 1
        assert stats.depth == 1
        assert stats.transitions == 2
        assert stats.sor_segments == 0

    def test_sor_segments_counted(self):
        shape = CycleShape(
            top_level=3,
            steps=(ShapeStep("sor", 3, 4), ShapeStep("sor", 3, 2)),
        )
        stats = cycle_stats(shape)
        assert stats.sor_segments == 2
        assert stats.direct_level is None
