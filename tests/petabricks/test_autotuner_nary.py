"""Tests for the bottom-up genetic autotuner and n-ary search.

The autotuner is tested with an *injected synthetic timer* so results are
deterministic: rule costs follow known asymptotics and the tuner must
discover the known-optimal multi-level composition.
"""

import pytest

from repro.petabricks.autotuner import BottomUpTuner, MultiLevelConfig
from repro.petabricks.language import Rule, Transform
from repro.petabricks.nary import nary_search


def make_synthetic_transform() -> Transform:
    """Two no-op rules; the synthetic timer assigns their costs."""
    return Transform(
        name="syn",
        rules=[
            Rule(name="quadratic", body=lambda t, i, c: i),
            Rule(name="linearithmic", body=lambda t, i, c: i),
        ],
        size_of=len,
    )


def synthetic_timer(run, size: int) -> float:
    """Cost model: quadratic wins below 64, linearithmic above.

    The timer inspects which rule the config selects by running the
    transform... it cannot, so tests pass a closure-bound config cost via
    the candidate's levels instead (see _timer_factory).
    """
    raise NotImplementedError


class TestBottomUpTuner:
    def _tuner(self, max_size=256):
        transform = make_synthetic_transform()

        costs = {
            "quadratic": lambda n: 1e-9 * n * n,
            "linearithmic": lambda n: 4e-8 * n * (max(n, 2)).bit_length(),
        }

        tuner = BottomUpTuner(
            transform=transform,
            make_input=lambda size, trial: list(range(size)),
            start_size=16,
            max_size=max_size,
            population_limit=6,
        )

        def timer(run_fn, size):
            # Identify the selected rule from the candidate under test by
            # replaying the selector.
            raise AssertionError("replaced per-candidate below")

        # Monkeypatch _time_config to price candidates analytically: the
        # rule handling `size` pays its cost, recursive rules pay the
        # composition cost down the levels.
        def time_config(candidate, size):
            def cost(n: int) -> float:
                for max_size_, rule in candidate.config.levels:
                    if n <= max_size_:
                        break
                else:
                    rule = candidate.config.levels[-1][1]
                base = costs[rule](n)
                if rule == "linearithmic" and n > 16:
                    # Divide and conquer: recursion halves until a lower
                    # level takes over.
                    return 4e-8 * n + 2 * cost(n // 2)
                return base

            return cost(size)

        tuner._time_config = time_config  # type: ignore[method-assign]
        return tuner

    def test_discovers_crossover(self):
        tuner = self._tuner(max_size=1024)
        config = tuner.tune()
        levels = config.get("syn.levels")
        assert levels is not None
        # Small sizes must be handled by the quadratic rule, large by the
        # linearithmic one (crossover near 64 under these costs).
        assert levels[0][1] == "quadratic"
        assert levels[-1][1] == "linearithmic"

    def test_history_records_rounds(self):
        tuner = self._tuner(max_size=256)
        tuner.tune()
        sizes = [h["size"] for h in tuner.history]
        assert sizes == [16, 32, 64, 128, 256]

    def test_population_respects_limit(self):
        tuner = self._tuner(max_size=256)
        tuner.tune()
        for h in tuner.history:
            assert len(h["population"]) <= 6 + 2 * 2  # limit + children


class TestMultiLevelConfig:
    def test_levels_must_ascend(self):
        with pytest.raises(ValueError):
            MultiLevelConfig(levels=((100, "a"), (50, "b")))

    def test_with_new_top(self):
        c = MultiLevelConfig(levels=((16, "a"),))
        c2 = c.with_new_top(64, "b")
        assert c2.levels == ((16, "a"), (64, "b"))
        with pytest.raises(ValueError):
            c.with_new_top(8, "b")

    def test_to_configuration(self):
        c = MultiLevelConfig(levels=((16, "a"),))
        cfg = c.to_configuration("t")
        assert cfg.get("t.levels") == [(16, "a")]


class TestNarySearch:
    def test_finds_unimodal_minimum(self):
        best, val = nary_search(lambda x: (x - 321) ** 2, 0, 10_000)
        assert best == 321
        assert val == 0

    def test_boundary_minimum(self):
        best, _ = nary_search(lambda x: x, 5, 500)
        assert best == 5

    def test_memoizes(self):
        calls = []

        def obj(x):
            calls.append(x)
            return (x - 7) ** 2

        nary_search(obj, 0, 100, arity=4)
        assert len(calls) == len(set(calls))

    def test_tiny_range(self):
        best, _ = nary_search(lambda x: -x, 3, 5)
        assert best == 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nary_search(lambda x: x, 5, 1)
        with pytest.raises(ValueError):
            nary_search(lambda x: x, 0, 10, arity=1)
