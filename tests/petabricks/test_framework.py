"""Tests for the mini-PetaBricks framework: language, configs, regions,
choice grids, dependency graph."""

import pytest

from repro.petabricks.choicedep import ChoiceDependencyGraph
from repro.petabricks.choicegrid import build_choice_grid
from repro.petabricks.configfile import Configuration, ConfigSpace
from repro.petabricks.demos import make_sort_transform, stencil_choice_grid
from repro.petabricks.language import Rule, Transform, TunableParam
from repro.petabricks.regions import Region, applicable_region, region_intersection


class TestRegions:
    def test_area_and_contains(self):
        r = Region(0, 4, 0, 3)
        assert r.area == 12
        assert r.contains(3, 2)
        assert not r.contains(4, 0)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Region(2, 1, 0, 0)

    def test_intersection(self):
        a = Region(0, 5, 0, 5)
        b = Region(3, 8, 2, 4)
        assert region_intersection(a, b) == Region(3, 5, 2, 4)

    def test_disjoint_intersection_empty(self):
        a = Region(0, 2, 0, 2)
        b = Region(5, 8, 5, 8)
        assert region_intersection(a, b).empty

    def test_applicable_region_shrinks_by_offsets(self):
        out = Region(0, 10, 0, 10)
        got = applicable_region(out, [(-1, 0), (2, 0), (0, -3), (0, 1)])
        assert got == Region(1, 8, 3, 9)

    def test_shrink_clamps_to_empty(self):
        assert Region(0, 2, 0, 2).shrink(5, 5, 0, 0).empty


class TestChoiceGrid:
    def test_stencil_demo_structure(self):
        grid = stencil_choice_grid(5)
        # 3x3 rectilinear cells: border ring + interior.
        assert len(grid.cells) == 9
        center = grid.cell_at(2, 2)
        assert center.rules == {"centered_stencil", "copy_boundary"}
        corner = grid.cell_at(0, 0)
        assert corner.rules == {"copy_boundary"}
        assert grid.uncovered_cells() == []

    def test_uncovered_detection(self):
        out = Region(0, 4, 0, 4)
        grid = build_choice_grid(out, {"inner": Region(1, 3, 1, 3)})
        assert grid.uncovered_cells()  # the border has no rule

    def test_cell_at_outside_raises(self):
        grid = stencil_choice_grid(5)
        with pytest.raises(KeyError):
            grid.cell_at(10, 10)


class TestChoiceDependencyGraph:
    def test_schedule_topological(self):
        g = ChoiceDependencyGraph()
        g.add_dependency("A", "B", choices=["r1"], direction=(0, 1))
        g.add_dependency("B", "C", choices=["r1"])
        order = g.schedule()
        assert order.index("A") < order.index("B") < order.index("C")

    def test_cycle_detected(self):
        g = ChoiceDependencyGraph()
        g.add_dependency("A", "B", choices=["r1"])
        g.add_dependency("B", "A", choices=["r1"])
        with pytest.raises(ValueError, match="cycle"):
            g.schedule()

    def test_restricted_drops_inactive_edges(self):
        g = ChoiceDependencyGraph()
        g.add_dependency("A", "B", choices=["r1"])
        g.add_dependency("B", "A", choices=["r2"])
        # With only r1 active the cycle disappears.
        assert g.restricted(["r1"]).schedule() == ["A", "B"]

    def test_parallel_stages(self):
        g = ChoiceDependencyGraph()
        g.add_dependency("A", "C", choices=["r"])
        g.add_dependency("B", "C", choices=["r"])
        stages = g.parallel_stages()
        assert stages[0] == ["A", "B"]
        assert stages[1] == ["C"]


class TestConfiguration:
    def test_get_set_updated(self):
        c = Configuration({"a": 1})
        assert c.get("a") == 1
        c2 = c.updated(b=2)
        assert c2.get("b") == 2 and c.get("b") is None

    def test_save_load_normalizes_levels(self, tmp_path):
        c = Configuration({"sort.levels": [(16, "ins"), (1024, "merge")], "x": 3})
        path = tmp_path / "cfg.json"
        c.save(path)
        loaded = Configuration.load(path)
        assert loaded.get("sort.levels") == [(16, "ins"), (1024, "merge")]
        assert loaded.get("x") == 3


class TestConfigSpace:
    def test_tuning_order_leaves_first(self):
        s = ConfigSpace()
        s.add_param("leaf")
        s.add_param("mid", depends_on=["leaf"])
        s.add_param("top", depends_on=["mid"])
        assert s.tuning_order() == [["leaf"], ["mid"], ["top"]]

    def test_cycle_grouped(self):
        s = ConfigSpace()
        s.add_param("a")
        s.add_param("b", depends_on=["a"])
        # Create a cycle a <-> b via an extra edge.
        s._graph.add_edge("b", "a")
        order = s.tuning_order()
        assert ["a", "b"] in order

    def test_duplicate_and_unknown(self):
        s = ConfigSpace()
        s.add_param("a")
        with pytest.raises(ValueError):
            s.add_param("a")
        with pytest.raises(ValueError):
            s.add_param("b", depends_on=["ghost"])


class TestTransform:
    def test_selector_levels(self):
        t = make_sort_transform()
        cfg = Configuration(
            {"sort.levels": [(4, "insertion_sort"), (10_000, "merge_sort")]}
        )
        assert t.select_rule([3, 1], cfg).name == "insertion_sort"
        assert t.select_rule(list(range(100)), cfg).name == "merge_sort"

    def test_run_sorts(self):
        t = make_sort_transform()
        cfg = Configuration(
            {"sort.levels": [(8, "insertion_sort"), (10_000, "quick_sort")]}
        )
        data = [5, 3, 9, 1, 1, 8, 2, 7, 6, 0] * 10
        assert t.run(data, cfg) == sorted(data)

    def test_unconfigured_falls_back_to_first_rule(self):
        t = make_sort_transform()
        assert t.run([3, 1, 2]) == [1, 2, 3]

    def test_duplicate_rules_rejected(self):
        r = Rule(name="x", body=lambda t, i, c: i)
        with pytest.raises(ValueError):
            Transform("t", [r, r])

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            Transform("t", [])

    def test_tunable_validation(self):
        with pytest.raises(ValueError):
            TunableParam(name="c", default=10, minimum=20, maximum=30)
        p = TunableParam(name="c", default=25, minimum=20, maximum=30)
        assert p.clamp(5) == 20 and p.clamp(99) == 30
