"""End-to-end integration: the full paper pipeline at small scale.

Tune V and full-MG plans for two architectures, verify the tuned
algorithms hit their accuracy contracts on unseen data, round-trip the
configuration files, render the cycles, and check the cross-architecture
pricing story — the complete life of a PetaBricks-tuned multigrid solver.
"""

import numpy as np
import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.bench.parallel import simulate_trace
from repro.cycles.render import render_cycle
from repro.cycles.shape import extract_shape
from repro.machines.meter import OpMeter
from repro.machines.presets import INTEL_HARPERTOWN, SUN_NIAGARA
from repro.tuner.config import load_plan, save_plan
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.trace import Trace
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem

MAX_LEVEL = 4


@pytest.fixture(scope="module")
def plans():
    out = {}
    for profile in (INTEL_HARPERTOWN, SUN_NIAGARA):
        training = TrainingData(distribution="biased", instances=2, seed=17)
        vplan = VCycleTuner(
            max_level=MAX_LEVEL,
            training=training,
            timing=CostModelTiming(profile),
            keep_audit=False,
        ).tune()
        fplan = FullMGTuner(
            vplan=vplan, training=training, timing=CostModelTiming(profile)
        ).tune()
        out[profile.name] = (vplan, fplan)
    return out


class TestAccuracyContracts:
    def test_both_architectures_both_plan_kinds(self, plans):
        cache = ReferenceSolutionCache()
        executor = PlanExecutor()
        problem = make_problem("biased", 17, seed=901)
        x_opt = cache.get(problem)
        for vplan, fplan in plans.values():
            for plan, runner in ((vplan, executor.run_v), (fplan, executor.run_full_mg)):
                for i, target in enumerate(plan.accuracies):
                    x = problem.initial_guess()
                    judge = AccuracyJudge(x, x_opt)
                    runner(plan, x, problem.b, i)
                    assert judge.accuracy_of(x) >= 0.5 * target


class TestConfigLifecycle:
    def test_save_load_execute(self, plans, tmp_path):
        vplan, fplan = plans[INTEL_HARPERTOWN.name]
        vpath = tmp_path / "v.json"
        fpath = tmp_path / "f.json"
        save_plan(vplan, vpath)
        save_plan(fplan, fpath)
        v2 = load_plan(vpath)
        f2 = load_plan(fpath)
        problem = make_problem("biased", 17, seed=902)
        a = problem.initial_guess()
        b = problem.initial_guess()
        PlanExecutor().run_v(vplan, a, problem.b, 2)
        PlanExecutor().run_v(v2, b, problem.b, 2)
        np.testing.assert_array_equal(a, b)
        c = problem.initial_guess()
        PlanExecutor().run_full_mg(f2, c, problem.b, 2)


class TestCrossPricing:
    def test_native_tuning_never_loses_at_home(self, plans):
        # Plan tuned for machine M must price at most equal to the other
        # machine's plan when both run on M (the DP optimizes M's prices).
        for home in (INTEL_HARPERTOWN, SUN_NIAGARA):
            native_v, _ = plans[home.name]
            for other_name, (foreign_v, _) in plans.items():
                if other_name == home.name:
                    continue
                for i in range(native_v.num_accuracies):
                    tn = native_v.time_on(home, MAX_LEVEL, i)
                    tf = foreign_v.time_on(home, MAX_LEVEL, i)
                    assert tn <= tf * 1.0001


class TestTraceToParallelSim:
    def test_trace_simulates_with_speedup(self, plans):
        vplan, _ = plans[INTEL_HARPERTOWN.name]
        problem = make_problem("biased", 17, seed=903)
        trace = Trace()
        meter = OpMeter()
        x = problem.initial_guess()
        PlanExecutor().run_v(vplan, x, problem.b, vplan.num_accuracies - 1, meter, trace)
        t1 = simulate_trace(trace, INTEL_HARPERTOWN, workers=1).makespan
        t4 = simulate_trace(trace, INTEL_HARPERTOWN, workers=4).makespan
        assert 0 < t4 <= t1

    def test_cycle_renderable(self, plans):
        vplan, fplan = plans[SUN_NIAGARA.name]
        problem = make_problem("biased", 17, seed=904)
        trace = Trace()
        x = problem.initial_guess()
        PlanExecutor().run_full_mg(fplan, x, problem.b, 2, trace=trace)
        text = render_cycle(extract_shape(trace))
        assert "level" in text
