"""Tests for the input distributions and problem bundles."""

import numpy as np
import pytest

from repro.util.rng import derive_rng
from repro.workloads.distributions import (
    DISTRIBUTIONS,
    biased_uniform,
    make_problem,
    point_sources,
    training_set,
    unbiased_uniform,
)
from repro.workloads.problem import PoissonProblem

SCALE = float(2**32)
SHIFT = float(2**31)


class TestDistributions:
    def test_unbiased_range_and_mean(self):
        p = unbiased_uniform(65, derive_rng(1))
        assert np.abs(p.b).max() <= SCALE
        # Mean of U[-2^32, 2^32] is 0; tolerance ~ 3 sigma / sqrt(n).
        assert abs(p.b.mean()) < 3 * SCALE / np.sqrt(65 * 65)

    def test_biased_shifted_mean(self):
        p = biased_uniform(65, derive_rng(2))
        assert abs(p.b.mean() - SHIFT) < 3 * SCALE / np.sqrt(65 * 65)
        assert abs(np.median(p.boundary) - SHIFT) < 0.25 * SCALE

    def test_point_sources_sparsity(self):
        p = point_sources(33, derive_rng(3), count=8)
        nonzero = np.count_nonzero(p.b)
        assert nonzero == 8
        assert np.count_nonzero(p.b[0, :]) == 0  # sources only interior

    def test_point_sources_count_clamped(self):
        p = point_sources(3, derive_rng(4), count=100)
        assert np.count_nonzero(p.b) == 1

    def test_point_sources_rejects_zero_count(self):
        with pytest.raises(ValueError):
            point_sources(9, derive_rng(5), count=0)

    def test_registry_contains_paper_distributions(self):
        assert {"unbiased", "biased", "point-sources"} <= set(DISTRIBUTIONS)


class TestMakeProblem:
    def test_deterministic(self):
        a = make_problem("unbiased", 17, seed=9)
        b = make_problem("unbiased", 17, seed=9)
        np.testing.assert_array_equal(a.b, b.b)
        np.testing.assert_array_equal(a.boundary, b.boundary)

    def test_index_varies_instance(self):
        a = make_problem("unbiased", 17, seed=9, index=0)
        b = make_problem("unbiased", 17, seed=9, index=1)
        assert not np.array_equal(a.b, b.b)

    def test_unknown_distribution(self):
        with pytest.raises(KeyError):
            make_problem("cauchy", 17)

    def test_training_set_distinct_instances(self):
        problems = training_set("biased", 17, 3, seed=1)
        assert len(problems) == 3
        assert not np.array_equal(problems[0].b, problems[1].b)

    def test_training_set_rejects_zero(self):
        with pytest.raises(ValueError):
            training_set("biased", 17, 0)


class TestPoissonProblem:
    def test_arrays_frozen(self):
        p = make_problem("unbiased", 9, seed=1)
        with pytest.raises((ValueError, RuntimeError)):
            p.b[1, 1] = 0.0
        with pytest.raises((ValueError, RuntimeError)):
            p.boundary[0] = 0.0

    def test_initial_guess_fresh_and_writable(self):
        p = make_problem("unbiased", 9, seed=1)
        x1 = p.initial_guess()
        x2 = p.initial_guess()
        assert x1 is not x2
        x1[1, 1] = 5.0  # must not raise
        assert x2[1, 1] == 0.0

    def test_initial_guess_has_boundary(self):
        p = make_problem("unbiased", 9, seed=1)
        x = p.initial_guess()
        assert np.all(x[1:-1, 1:-1] == 0.0)
        assert np.any(x[0, :] != 0.0)

    def test_level_property(self):
        assert make_problem("unbiased", 33, seed=1).level == 5

    def test_rejects_bad_boundary_length(self):
        with pytest.raises(ValueError):
            PoissonProblem(b=np.zeros((9, 9)), boundary=np.zeros(3))

    def test_rhs_copy_is_writable(self):
        p = make_problem("unbiased", 9, seed=1)
        r = p.rhs()
        r[1, 1] = 42.0
        assert p.b[1, 1] != 42.0 or True  # original untouched
        assert p.b.flags.writeable is False


class TestCallerArraysNotFrozen:
    """Constructing a problem must not mutate caller-owned buffers
    (historically __post_init__ called setflags(write=False) on them)."""

    def test_caller_arrays_stay_writable(self):
        b = np.zeros((9, 9))
        boundary = np.zeros(4 * 9 - 4)
        p = PoissonProblem(b=b, boundary=boundary)
        b[1, 1] = 42.0  # must not raise
        boundary[0] = 7.0
        assert b.flags.writeable and boundary.flags.writeable
        # ... while the problem's own copies are frozen and isolated.
        assert p.b.flags.writeable is False
        assert p.boundary.flags.writeable is False
        assert p.b[1, 1] == 0.0
        assert p.boundary[0] == 0.0

    def test_read_only_input_shared_without_copy(self):
        b = np.zeros((9, 9))
        b.setflags(write=False)
        boundary = np.zeros(4 * 9 - 4)
        boundary.setflags(write=False)
        p = PoissonProblem(b=b, boundary=boundary)
        assert p.b is b and p.boundary is boundary


class TestOperatorField:
    def test_default_operator_is_poisson(self):
        p = make_problem("unbiased", 9, seed=1)
        assert p.operator.canonical() == "poisson"
        assert p.operator.is_default_poisson

    def test_operator_threads_through_factories(self):
        p = make_problem("unbiased", 9, seed=1, operator="anisotropic(epsilon=0.01)")
        assert p.operator.canonical() == "anisotropic(epsilon=0.01)"
        for q in training_set("biased", 9, 2, seed=1, operator="varcoeff"):
            assert q.operator.canonical() == "varcoeff"

    def test_point_sources_through_make_problem(self):
        # Regression: the factory used to pass the distribution name
        # positionally, which bound it to point_sources' count argument.
        p = make_problem("point-sources", 9, seed=1, operator="varcoeff")
        assert p.label == "point-sources"
        assert p.operator.canonical() == "varcoeff"
        assert np.count_nonzero(p.b) > 0

    def test_rhs_draws_are_operator_independent(self):
        a = make_problem("unbiased", 9, seed=1)
        b = make_problem("unbiased", 9, seed=1, operator="varcoeff")
        np.testing.assert_array_equal(a.b, b.b)
        np.testing.assert_array_equal(a.boundary, b.boundary)
