"""Shared fixtures.

Expensive artifacts (tuned plans, reference solutions) are session-scoped:
the DP tuner is deterministic given (seed, profile), so sharing one tuned
plan across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.reference import ReferenceSolutionCache
from repro.machines.presets import AMD_BARCELONA, INTEL_HARPERTOWN, SUN_NIAGARA
from repro.tuner.dp import VCycleTuner
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def small_problem():
    """A 17x17 unbiased instance (level 4)."""
    return make_problem("unbiased", 17, seed=11)


@pytest.fixture(scope="session")
def medium_problem():
    """A 33x33 unbiased instance (level 5)."""
    return make_problem("unbiased", 33, seed=12)


@pytest.fixture(scope="session")
def reference_cache():
    return ReferenceSolutionCache()


@pytest.fixture(scope="session")
def shared_training():
    """Training data shared by the session-scoped tuned plans."""
    return TrainingData(distribution="unbiased", instances=2, seed=7)


@pytest.fixture(scope="session")
def tuned_plan(shared_training):
    """A V plan tuned to level 5 on the Intel cost model."""
    tuner = VCycleTuner(
        max_level=5,
        training=shared_training,
        timing=CostModelTiming(INTEL_HARPERTOWN),
    )
    return tuner.tune()


@pytest.fixture(scope="session")
def tuned_fmg_plan(tuned_plan, shared_training):
    """A full-MG plan sharing the session V plan."""
    tuner = FullMGTuner(
        vplan=tuned_plan,
        training=shared_training,
        timing=CostModelTiming(INTEL_HARPERTOWN),
    )
    return tuner.tune()


@pytest.fixture(params=["intel", "amd", "sun"])
def any_profile(request):
    return {
        "intel": INTEL_HARPERTOWN,
        "amd": AMD_BARCELONA,
        "sun": SUN_NIAGARA,
    }[request.param]
