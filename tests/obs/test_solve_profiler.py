"""SolveProfiler: aggregation cells, merge, training-row export."""

import pytest

from repro.obs.profile import SolveProfiler


class TestSolveProfiler:
    def test_records_aggregate_per_cell(self):
        prof = SolveProfiler()
        prof.record(7, "relax", "numpy", 0.010)
        prof.record(7, "relax", "numpy", 0.030)
        prof.record(7, "residual", "numpy", 0.005)
        assert len(prof) == 2
        rows = {(r["level"], r["op"], r["backend"]): r for r in prof.rows()}
        relax = rows[(7, "relax", "numpy")]
        assert relax["count"] == 2
        assert relax["total_s"] == pytest.approx(0.040)
        assert relax["mean_s"] == pytest.approx(0.020)

    def test_rows_sorted_and_shaped_for_training(self):
        prof = SolveProfiler()
        prof.record(6, "restrict", "cnative", 0.002)
        prof.record(3, "direct", "direct", 0.001)
        rows = prof.rows()
        assert [r["level"] for r in rows] == [3, 6]
        for row in rows:
            assert set(row) == {"level", "op", "backend", "count", "total_s", "mean_s"}

    def test_merge_folds_cells(self):
        a, b = SolveProfiler(), SolveProfiler()
        a.record(7, "relax", "numpy", 0.01)
        b.record(7, "relax", "numpy", 0.03)
        b.record(5, "restrict", "numpy", 0.002)
        a.merge(b)
        rows = {(r["level"], r["op"]): r for r in a.rows()}
        assert rows[(7, "relax")]["count"] == 2
        assert rows[(7, "relax")]["total_s"] == pytest.approx(0.04)
        assert rows[(5, "restrict")]["count"] == 1

    def test_totals_and_dict(self):
        prof = SolveProfiler()
        prof.record(7, "relax", "numpy", 0.01)
        prof.record(6, "residual", "numpy", 0.02)
        assert prof.total_seconds() == pytest.approx(0.03)
        doc = prof.to_dict()
        assert doc["total_s"] == pytest.approx(0.03)
        assert len(doc["rows"]) == 2


class TestTrainingRows:
    """Cells -> cost-model vocabulary (the model tuner's measured input)."""

    def test_rows_carry_size_mean_and_weight(self):
        prof = SolveProfiler()
        prof.record(5, "relax", "numpy", 0.010)
        prof.record(5, "relax", "numpy", 0.030)
        (row,) = prof.to_training_rows()
        assert row["op"] == "relax"
        assert row["n"] == 2**5 + 1
        assert row["seconds"] == pytest.approx(0.020)  # per-call mean
        assert row["weight"] == 2  # call count

    def test_empty_profiler_yields_empty_list(self):
        assert SolveProfiler().to_training_rows() == []
        assert SolveProfiler().to_training_rows(ndim=3) == []

    def test_direct_sentinel_backend_maps_to_bare_op(self):
        # The executor records direct solves under the sentinel backend
        # "direct"; the meter vocabulary has no "direct@direct" op.
        prof = SolveProfiler()
        prof.record(3, "direct", "direct", 0.001)
        (row,) = prof.to_training_rows()
        assert row["op"] == "direct"

    def test_ndim_and_backend_qualify_ops(self):
        prof = SolveProfiler()
        prof.record(6, "relax", "cnative", 0.002)
        prof.record(3, "direct", "direct", 0.001)
        rows = {r["op"] for r in prof.to_training_rows(ndim=3)}
        assert rows == {"relax3d@cnative", "direct3d"}

    def test_zero_signal_cells_dropped(self):
        prof = SolveProfiler()
        prof.record(5, "relax", "numpy", 0.0)  # clock-granularity zero
        prof.record(5, "residual", "numpy", 0.004)
        ops = [r["op"] for r in prof.to_training_rows()]
        assert ops == ["residual"]

    def test_rows_fit_into_cost_model(self):
        # End-to-end: the export is directly consumable by CostModel.fit.
        from repro.machines.presets import INTEL_HARPERTOWN
        from repro.modeltuner import CostModel

        prof = SolveProfiler()
        for level in (4, 5, 6):
            prof.record(level, "relax", "numpy", 1e-6 * 4**level)
        model = CostModel.fit(prof.to_training_rows(), INTEL_HARPERTOWN)
        assert "relax" in model.laws
        assert model.laws["relax"].observations == 3
