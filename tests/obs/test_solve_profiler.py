"""SolveProfiler: aggregation cells, merge, training-row export."""

import pytest

from repro.obs.profile import SolveProfiler


class TestSolveProfiler:
    def test_records_aggregate_per_cell(self):
        prof = SolveProfiler()
        prof.record(7, "relax", "numpy", 0.010)
        prof.record(7, "relax", "numpy", 0.030)
        prof.record(7, "residual", "numpy", 0.005)
        assert len(prof) == 2
        rows = {(r["level"], r["op"], r["backend"]): r for r in prof.rows()}
        relax = rows[(7, "relax", "numpy")]
        assert relax["count"] == 2
        assert relax["total_s"] == pytest.approx(0.040)
        assert relax["mean_s"] == pytest.approx(0.020)

    def test_rows_sorted_and_shaped_for_training(self):
        prof = SolveProfiler()
        prof.record(6, "restrict", "cnative", 0.002)
        prof.record(3, "direct", "direct", 0.001)
        rows = prof.rows()
        assert [r["level"] for r in rows] == [3, 6]
        for row in rows:
            assert set(row) == {"level", "op", "backend", "count", "total_s", "mean_s"}

    def test_merge_folds_cells(self):
        a, b = SolveProfiler(), SolveProfiler()
        a.record(7, "relax", "numpy", 0.01)
        b.record(7, "relax", "numpy", 0.03)
        b.record(5, "restrict", "numpy", 0.002)
        a.merge(b)
        rows = {(r["level"], r["op"]): r for r in a.rows()}
        assert rows[(7, "relax")]["count"] == 2
        assert rows[(7, "relax")]["total_s"] == pytest.approx(0.04)
        assert rows[(5, "restrict")]["count"] == 1

    def test_totals_and_dict(self):
        prof = SolveProfiler()
        prof.record(7, "relax", "numpy", 0.01)
        prof.record(6, "residual", "numpy", 0.02)
        assert prof.total_seconds() == pytest.approx(0.03)
        doc = prof.to_dict()
        assert doc["total_s"] == pytest.approx(0.03)
        assert len(doc["rows"]) == 2
