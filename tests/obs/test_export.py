"""Exporters: JSONL round-trip, Chrome trace_event validity, Prometheus text."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    span_from_dict,
    span_to_dict,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.clock import ManualClock


def sample_spans():
    tracer = Tracer(clock=ManualClock())
    with tracer.span("serve.request", level=7) as root:
        tracer.clock.advance(0.010)
        with tracer.span("mg.level", level=7, backend="numpy"):
            tracer.clock.advance(0.004)
            tracer.leaf("op.relax", {"level": 7}, tracer.clock.now() - 0.001)
    return tracer.spans(), root


class TestJsonl:
    def test_round_trip_preserves_every_field(self, tmp_path):
        spans, _ = sample_spans()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(spans, path) == len(spans)
        back = read_spans_jsonl(path)
        assert [span_to_dict(s) for s in back] == [span_to_dict(s) for s in spans]

    def test_dict_round_trip_of_open_span(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.start("open", level=3)
        restored = span_from_dict(span_to_dict(span))
        assert restored.end_s is None
        assert restored.attrs == {"level": 3}

    def test_lines_are_one_json_object_each(self, tmp_path):
        spans, _ = sample_spans()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(spans, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(spans)
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestChromeTrace:
    def test_document_shape(self):
        spans, root = sample_spans()
        doc = chrome_trace(spans)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == len(spans)
        json.dumps(doc)  # must be valid JSON

    def test_events_are_complete_events_in_microseconds(self):
        spans, root = sample_spans()
        doc = chrome_trace(spans)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert {"ts", "dur", "pid", "tid", "args"} <= set(event)
        level = by_name["mg.level"]
        assert level["dur"] == pytest.approx(4000.0)  # 4ms in us

    def test_args_carry_the_tree(self):
        spans, root = sample_spans()
        doc = chrome_trace(spans)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["serve.request"]["args"]["trace_id"] == root.trace_id
        assert by_name["mg.level"]["args"]["parent_id"] == root.span_id
        assert by_name["op.relax"]["args"]["trace_id"] == root.trace_id


class TestPrometheus:
    def test_registry_exposition(self):
        reg = MetricsRegistry()
        reg.counter("requests", shard="0").inc(3)
        reg.gauge("queue_depth").set(2)
        reg.histogram("solve_latency").record(0.01)
        text = prometheus_text(reg)
        assert '# TYPE repro_requests counter' in text
        assert 'repro_requests{shard="0"} 3' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_solve_latency summary" in text
        assert text.endswith("\n")

    def test_telemetry_snapshot_exposition(self):
        snapshot = {
            "counters": {"requests": 10, "rejected": 1},
            "gauges": {"queue_depth": 0.0},
            "latency": {"solve": {"count": 10, "p99_s": 0.02}},
            "windows": {"e2e": {"count": 4, "p99_s": 0.03}},
        }
        text = prometheus_text(snapshot)
        assert "repro_requests 10" in text
        assert "repro_latency_solve_p99_s 0.02" in text
        assert "repro_window_e2e_count 4" in text

    def test_sharded_frontdoor_stats_exposition(self):
        """FrontDoor.stats() nests a snapshot per tier; the export labels
        them instead of silently emitting nothing."""
        stats = {
            "frontdoor": {
                "counters": {"requests_routed": 5},
                "gauges": {"pool_free": 7.0},
            },
            "shards": {
                "0": {"counters": {"requests_completed": 3}},
                "1": {"counters": {"requests_completed": 2}},
            },
        }
        text = prometheus_text(stats)
        assert 'repro_requests_routed{tier="frontdoor"} 5' in text
        assert 'repro_pool_free{tier="frontdoor"} 7.0' in text
        assert 'repro_requests_completed{tier="shard",shard="0"} 3' in text
        assert 'repro_requests_completed{tier="shard",shard="1"} 2' in text
        # a family's samples stay contiguous under one TYPE line even
        # when several tiers contribute
        assert text.count("# TYPE repro_requests_completed counter") == 1

    def test_names_are_sanitized(self):
        text = prometheus_text({"counters": {"weird-name.x": 1}})
        assert "repro_weird_name_x 1" in text
