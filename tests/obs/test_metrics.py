"""Unified metrics registry: handles, labels, snapshots."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_bounds,
)


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_percentiles_bracket_samples(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.1):
            h.record(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.107)
        assert 0.0005 <= h.percentile(0.5) <= 0.004
        assert h.percentile(0.99) <= h.max * 1.34  # within one bucket width
        with pytest.raises(ValueError):
            h.record(-0.1)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0.2, 0.1))

    def test_default_bounds_are_sorted_geometric(self):
        bounds = default_bounds()
        assert list(bounds) == sorted(bounds)
        assert bounds[0] > 1e-6 / 2 and bounds[-1] > 100.0


class TestRegistry:
    def test_same_name_and_labels_share_a_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("requests", shard="0")
        b = reg.counter("requests", shard="0")
        other = reg.counter("requests", shard="1")
        assert a is b
        assert a is not other
        a.inc()
        assert b.value == 1 and other.value == 0

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("requests", shard="0").inc(2)
        reg.gauge("queue_depth").set(3)
        reg.histogram("latency").record(0.01)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        flat = json.dumps(snap)
        assert "requests" in flat and "queue_depth" in flat and "latency" in flat

    def test_collect_yields_every_family(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        kinds = {type(m) for m in reg.collect()}
        assert kinds == {Counter, Gauge, Histogram}
