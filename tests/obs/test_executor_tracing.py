"""Executor observation: span trees, the op-span floor, numeric identity."""

import numpy as np
import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.obs.profile import SolveProfiler
from repro.obs.trace import Tracer
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import OP_SPAN_MIN_POINTS, PlanExecutor
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.clock import ManualClock
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

# Level 6 so the tuned plan recurses through levels below the default
# op-span floor (level 5 in 2-D): the floor test needs both sides.
LEVEL = 6


@pytest.fixture(scope="module")
def tuned_plan():
    return VCycleTuner(
        max_level=LEVEL,
        training=TrainingData(distribution="unbiased", instances=1, seed=0),
        timing=CostModelTiming(INTEL_HARPERTOWN),
    ).tune()


def solve(executor, plan, seed=0):
    problem = make_problem("unbiased", size_of_level(LEVEL), seed, operator="poisson")
    x = problem.initial_guess()
    executor.run_v(plan, x, problem.b, len(plan.accuracies) - 1)
    return x


class TestSpanTree:
    def test_traced_solve_is_one_tree(self, tuned_plan):
        tracer = Tracer()
        executor = PlanExecutor(
            operator="poisson", tracer=tracer, op_span_min_points=0
        )
        solve(executor, tuned_plan)
        spans = tracer.spans()
        assert spans, "traced solve recorded nothing"
        assert len({s.trace_id for s in spans}) == 1
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "mg.level"
        ids = {s.span_id for s in spans}
        assert all(s.parent_id in ids for s in spans if s.parent_id is not None)

    def test_op_spans_carry_level_and_backend(self, tuned_plan):
        tracer = Tracer()
        executor = PlanExecutor(
            operator="poisson", tracer=tracer, op_span_min_points=0
        )
        solve(executor, tuned_plan)
        ops = [s for s in tracer.spans() if s.name.startswith("op.")]
        assert ops
        for span in ops:
            assert "level" in span.attrs
            assert "backend" in span.attrs
        # every op hangs off the mg.level span of its own level
        levels = {s.span_id: s.attrs["level"] for s in tracer.spans()
                  if s.name == "mg.level"}
        for span in ops:
            assert levels[span.parent_id] == span.attrs["level"]

    def test_nests_under_contextual_parent(self, tuned_plan):
        tracer = Tracer()
        executor = PlanExecutor(operator="poisson", tracer=tracer)
        with tracer.span("serve.batch") as batch:
            solve(executor, tuned_plan)
        roots = [s for s in tracer.spans() if s.parent_id is None]
        assert [s.name for s in roots] == ["serve.batch"]
        mg_roots = [s for s in tracer.spans()
                    if s.name == "mg.level" and s.parent_id == batch.span_id]
        assert len(mg_roots) == 1


class TestOpSpanFloor:
    def test_default_floor_skips_tiny_levels(self, tuned_plan):
        tracer = Tracer()
        executor = PlanExecutor(operator="poisson", tracer=tracer)
        solve(executor, tuned_plan)
        spans = tracer.spans()
        op_levels = {s.attrs["level"] for s in spans if s.name.startswith("op.")}
        mg_levels = {s.attrs["level"] for s in spans if s.name == "mg.level"}
        floor_level = executor._op_span_min_level
        assert all(lv >= floor_level for lv in op_levels)
        assert any(lv < floor_level for lv in mg_levels)  # levels still covered
        assert executor.op_span_min_points == OP_SPAN_MIN_POINTS

    def test_zero_floor_records_everything(self, tuned_plan):
        tracer = Tracer()
        executor = PlanExecutor(
            operator="poisson", tracer=tracer, op_span_min_points=0
        )
        solve(executor, tuned_plan)
        names = {s.name for s in tracer.spans()}
        assert "op.direct" in names or "op.relax" in names


class TestProfiler:
    def test_profiler_rows_without_tracer(self, tuned_plan):
        profiler = SolveProfiler()
        executor = PlanExecutor(
            operator="poisson", profiler=profiler, op_span_min_points=0
        )
        solve(executor, tuned_plan)
        assert len(profiler) > 0
        assert profiler.total_seconds() > 0
        # profiler-only mode must not accumulate span records anywhere
        assert len(executor._obs_tracer.sink) <= 1

    def test_profiler_and_tracer_agree_on_ops(self, tuned_plan):
        tracer, profiler = Tracer(), SolveProfiler()
        executor = PlanExecutor(
            operator="poisson", tracer=tracer, profiler=profiler,
            op_span_min_points=0,
        )
        solve(executor, tuned_plan)
        op_span_count = sum(
            1 for s in tracer.spans() if s.name.startswith("op.")
        )
        profiled_count = sum(r["count"] for r in profiler.rows())
        assert profiled_count == op_span_count


class TestNumericIdentity:
    def test_tracing_never_changes_the_solution(self, tuned_plan):
        """Golden-path identity: observation must be numerically invisible."""
        plain = solve(PlanExecutor(operator="poisson"), tuned_plan)
        traced = solve(
            PlanExecutor(
                operator="poisson", tracer=Tracer(),
                profiler=SolveProfiler(), op_span_min_points=0,
            ),
            tuned_plan,
        )
        assert np.array_equal(plain, traced)  # byte-identical, not approx

    def test_manual_clock_durations_cover_the_solve(self, tuned_plan):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        executor = PlanExecutor(operator="poisson", tracer=tracer)
        solve(executor, tuned_plan)
        root = next(s for s in tracer.spans() if s.parent_id is None)
        assert root.end_s is not None and root.duration_s == 0.0  # manual time
