"""Schema-versioned bench report envelopes."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_envelope,
    read_bench_report,
    write_bench_report,
)


class TestEnvelope:
    def test_shape(self):
        env = bench_envelope("serve", {"p99_s": 0.02}, created=123.0)
        assert env == {
            "schema": BENCH_SCHEMA,
            "bench": "serve",
            "created": 123.0,
            "metrics": {"p99_s": 0.02},
        }

    def test_rejects_pathy_names(self):
        for bad in ("", "a/b", "a\\b"):
            with pytest.raises(ValueError):
                bench_envelope(bad, {}, 0.0)

    def test_write_read_round_trip(self, tmp_path):
        path = write_bench_report("obs", {"overhead": 0.04}, 99.0, tmp_path)
        assert path.name == "BENCH_obs.json"
        doc = read_bench_report(path)
        assert doc["bench"] == "obs"
        assert doc["metrics"] == {"overhead": 0.04}

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other/v9", "bench": "x"}))
        with pytest.raises(ValueError):
            read_bench_report(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            read_bench_report(path)

    def test_read_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "BENCH_y.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA, "bench": "y"}))
        with pytest.raises(ValueError):
            read_bench_report(path)
