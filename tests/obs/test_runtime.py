"""Process-global tracer: configure / get / reset."""

from repro.obs.runtime import configure, get_tracer, reset
from repro.obs.trace import NOOP_TRACER, SpanSink, Tracer
from repro.util.clock import ManualClock


class TestRuntime:
    def teardown_method(self):
        reset()

    def test_defaults_to_noop(self):
        reset()
        assert get_tracer() is NOOP_TRACER

    def test_configure_installs_and_returns(self):
        tracer = configure(clock=ManualClock(), capacity=16)
        assert isinstance(tracer, Tracer)
        assert get_tracer() is tracer
        assert tracer.sink.capacity == 16

    def test_configure_with_shared_sink(self):
        sink = SpanSink(capacity=8)
        tracer = configure(sink=sink)
        assert tracer.sink is sink

    def test_disable_restores_noop(self):
        configure(clock=ManualClock())
        assert configure(enabled=False) is NOOP_TRACER
        assert get_tracer() is NOOP_TRACER

    def test_reset_is_teardown(self):
        configure(clock=ManualClock())
        reset()
        assert get_tracer() is NOOP_TRACER
