"""Tracing core: spans, parenting, the sink's trim contract, no-op cost."""

import pytest

from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    SpanSink,
    Tracer,
)
from repro.util.clock import ManualClock


def manual_tracer(capacity: int = 64) -> tuple[Tracer, ManualClock]:
    clock = ManualClock()
    return Tracer(clock=clock, capacity=capacity), clock


class TestSpan:
    def test_duration_and_attrs(self):
        tracer, clock = manual_tracer()
        span = tracer.start("solve", level=7)
        clock.advance(0.25)
        tracer.finish(span)
        assert span.duration_s == pytest.approx(0.25)
        assert span.attrs == {"level": 7}
        span.set(backend="numpy")
        assert span.attrs["backend"] == "numpy"

    def test_open_span_has_zero_duration(self):
        tracer, _ = manual_tracer()
        span = tracer.start("open")
        assert span.end_s is None
        assert span.duration_s == 0.0

    def test_context_round_trip(self):
        tracer, _ = manual_tracer()
        span = tracer.start("root")
        ctx = span.context()
        restored = SpanContext.from_dict(ctx.to_dict())
        assert (restored.trace_id, restored.span_id) == (span.trace_id, span.span_id)


class TestParenting:
    def test_root_span_mints_trace_id(self):
        tracer, _ = manual_tracer()
        a = tracer.start("a")
        b = tracer.start("b")
        assert a.parent_id is None and b.parent_id is None
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_context_manager_nests(self):
        tracer, _ = manual_tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert tracer.current() is None
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]  # finish order

    def test_explicit_parent_beats_context(self):
        tracer, _ = manual_tracer()
        other = tracer.start("other")
        with tracer.span("current"):
            child = tracer.start("child", parent=other)
        assert child.parent_id == other.span_id
        assert child.trace_id == other.trace_id

    def test_parent_from_span_context(self):
        """Cross-boundary parenting: only (trace_id, span_id) crosses."""
        tracer, _ = manual_tracer()
        ctx = SpanContext("cafe" * 4, "1-2f")
        span = tracer.start("worker.side", parent=ctx)
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id

    def test_activate_installs_existing_span(self):
        tracer, _ = manual_tracer()
        root = tracer.start("root")
        with tracer.activate(root):
            assert tracer.current() is root
            assert tracer.context().span_id == root.span_id
            child = tracer.start("child")
        assert child.parent_id == root.span_id
        assert tracer.current() is None

    def test_error_label_on_exception(self):
        tracer, _ = manual_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"
        assert span.end_s is not None


class TestLeafRecords:
    def test_leaf_materializes_under_parent(self):
        tracer, clock = manual_tracer()
        with tracer.span("parent") as parent:
            start = clock.now()
            clock.advance(0.5)
            duration = tracer.leaf("op.relax", {"level": 7}, start)
        assert duration == pytest.approx(0.5)
        spans = tracer.spans()
        leaf = next(s for s in spans if s.name == "op.relax")
        assert leaf.parent_id == parent.span_id
        assert leaf.trace_id == parent.trace_id
        assert leaf.duration_s == pytest.approx(0.5)
        assert leaf.attrs == {"level": 7}

    def test_leaf_with_explicit_parent(self):
        tracer, clock = manual_tracer()
        parent = tracer.start("parent")
        tracer.leaf("op.residual", {}, clock.now(), parent)
        leaf = next(s for s in tracer.spans() if s.name == "op.residual")
        assert leaf.parent_id == parent.span_id

    def test_orphan_leaf_roots_its_own_trace(self):
        tracer, clock = manual_tracer()
        tracer.leaf("op.loose", {}, clock.now())
        (leaf,) = tracer.spans()
        assert leaf.parent_id is None
        assert leaf.trace_id

    def test_ids_stable_across_reads(self):
        """Lazy materialization must not redraw ids on the next read."""
        tracer, clock = manual_tracer()
        with tracer.span("parent"):
            for _ in range(5):
                tracer.leaf("op", {}, clock.now())
        first = [s.span_id for s in tracer.spans()]
        second = [s.span_id for s in tracer.spans()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_correlation_survives_parent_eviction(self):
        """Leaf records hold the parent by reference, not by ring slot."""
        tracer, clock = manual_tracer(capacity=4)
        with tracer.span("parent") as parent:
            for _ in range(64):  # far past capacity: parent span evicted
                tracer.leaf("op", {}, clock.now())
        retained = tracer.spans()
        assert all(s.trace_id == parent.trace_id for s in retained if s.name == "op")


class TestSpanSink:
    def test_capacity_bounds_retention(self):
        sink = SpanSink(capacity=8)
        tracer = Tracer(sink=sink, clock=ManualClock())
        for i in range(30):
            tracer.finish(tracer.start(f"s{i}"))
        assert sink.emitted == 30
        assert len(sink) <= 8
        names = [s.name for s in sink.spans()]
        assert len(names) == 8
        assert names == [f"s{i}" for i in range(22, 30)]  # recent past, in order

    def test_raw_append_then_reader_trims(self):
        sink = SpanSink(capacity=4)
        for i in range(20):
            sink.append_raw((f"op{i}", {}, 0.0, 1.0, None, 1, 1))
        assert sink.emitted == 20
        spans = sink.spans()
        assert [s.name for s in spans] == ["op16", "op17", "op18", "op19"]
        assert sink.emitted == 20  # trim accounting keeps the total

    def test_clear_keeps_bound_appenders_valid(self):
        sink = SpanSink(capacity=4)
        append = sink.append_raw
        append(("before", {}, 0.0, 1.0, None, 1, 1))
        sink.clear()
        assert sink.emitted == 0
        append(("after", {}, 0.0, 1.0, None, 1, 1))
        assert [s.name for s in sink.spans()] == ["after"]

    def test_for_trace_and_trace_ids(self):
        tracer, _ = manual_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = tracer.sink.trace_ids()
        assert len(ids) == 2
        (only_a,) = tracer.sink.for_trace(ids[0])
        assert only_a.name == "a"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanSink(capacity=0)


class TestNoopTracer:
    def test_shared_inert_objects(self):
        assert isinstance(NOOP_TRACER, NoopTracer)
        assert NOOP_TRACER.enabled is False
        with NOOP_TRACER.span("anything", level=3) as a:
            with NOOP_TRACER.span("nested") as b:
                assert a is b  # one shared null span, no allocation

    def test_null_span_absorbs_mutation(self):
        with NOOP_TRACER.span("x") as span:
            assert span.set(level=1) is span
            assert span.context() is None
            assert span.duration_s == 0.0

    def test_leaf_and_begin_are_inert(self):
        span = NOOP_TRACER.begin("x", {}, None)
        assert span.context() is None
        assert NOOP_TRACER.leaf("x", {}, 0.0) == 0.0

    def test_no_spans_recorded(self):
        assert NOOP_TRACER.spans() == []
        assert NOOP_TRACER.current() is None
        assert NOOP_TRACER.context() is None


class TestManualClockDurations:
    def test_durations_are_deterministic(self):
        tracer, clock = manual_tracer()
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].duration_s == pytest.approx(1.25)
        assert spans["inner"].duration_s == pytest.approx(0.25)
