"""Unit tests for repro.util: validation, rng derivation, timing."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, spawn_seeds
from repro.util.timing import WallClock, median_time
from repro.util.validation import (
    check_grid_size,
    check_square_grid,
    is_grid_size,
    level_of_size,
    size_of_level,
)


class TestSizeLevel:
    def test_size_of_level_values(self):
        assert size_of_level(1) == 3
        assert size_of_level(2) == 5
        assert size_of_level(10) == 1025

    def test_round_trip(self):
        for k in range(1, 15):
            assert level_of_size(size_of_level(k)) == k

    def test_level_of_size_rejects_non_power(self):
        for bad in (4, 6, 7, 8, 10, 16, 18, 100):
            with pytest.raises(ValueError):
                level_of_size(bad)

    def test_level_of_size_rejects_tiny(self):
        with pytest.raises(ValueError):
            level_of_size(2)
        with pytest.raises(ValueError):
            level_of_size(0)

    def test_size_of_level_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            size_of_level(0)
        with pytest.raises(ValueError):
            size_of_level(-3)

    def test_is_grid_size(self):
        assert is_grid_size(3)
        assert is_grid_size(65)
        assert not is_grid_size(64)
        assert not is_grid_size(2)

    def test_check_grid_size_returns_level(self):
        assert check_grid_size(33) == 5


class TestCheckSquareGrid:
    def test_accepts_valid(self):
        a = np.zeros((9, 9))
        assert check_square_grid(a) == 3

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_square_grid(np.zeros((9, 5)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            check_square_grid(np.zeros(9))

    def test_rejects_integer_dtype(self):
        with pytest.raises(TypeError, match="float"):
            check_square_grid(np.zeros((9, 9), dtype=np.int64))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            check_square_grid(np.zeros((8, 8)))


class TestRng:
    def test_deterministic_for_same_key(self):
        a = derive_rng(1, "x", 5).standard_normal(4)
        b = derive_rng(1, "x", 5).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_rng(1, "x", 5).standard_normal(4)
        b = derive_rng(1, "x", 6).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").standard_normal(4)
        b = derive_rng(2, "x").standard_normal(4)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_none_seed_is_stable(self):
        a = derive_rng(None, "k").standard_normal(2)
        b = derive_rng(None, "k").standard_normal(2)
        np.testing.assert_array_equal(a, b)

    def test_spawn_seeds_unique(self):
        seeds = spawn_seeds(3, 16)
        assert len(set(seeds)) == 16

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(3, 4) == spawn_seeds(3, 4)


class TestTiming:
    def test_wallclock_accumulates(self):
        clock = WallClock()
        with clock:
            pass
        first = clock.elapsed
        with clock:
            pass
        assert clock.elapsed >= first >= 0.0

    def test_wallclock_reset(self):
        clock = WallClock()
        with clock:
            pass
        clock.reset()
        assert clock.elapsed == 0.0

    def test_median_time_positive(self):
        t = median_time(lambda: sum(range(100)), repeats=3)
        assert t >= 0.0

    def test_median_time_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            median_time(lambda: None, repeats=0)

    def test_median_time_counts_calls(self):
        calls = []
        median_time(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
