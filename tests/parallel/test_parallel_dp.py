"""Parallel DP tuning must reproduce serial plans exactly.

The tentpole guarantee: because trial tasks are pure, deterministically
seeded data and workers run the same single-candidate evaluation code as
the serial DP, a process-pool tune selects bit-identical plans.  These
tests pin that for the V-cycle tuner, the full-MG tuner, candidate
filters, and the registry/core-API ``jobs=`` wiring.
"""

import pytest

from repro.core import autotune_cached
from repro.machines.presets import INTEL_HARPERTOWN, SUN_NIAGARA
from repro.parallel import ProcessPoolTrialExecutor, SerialExecutor
from repro.store import TrialDB
from repro.tuner.choices import DirectChoice
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.timing import CostModelTiming, WallclockTiming
from repro.tuner.training import TrainingData

MAX_LEVEL = 4


def _training():
    return TrainingData(distribution="unbiased", instances=2, seed=3)


def _tune_v(executor, profile=INTEL_HARPERTOWN, candidate_filter=None):
    return VCycleTuner(
        max_level=MAX_LEVEL,
        training=_training(),
        timing=CostModelTiming(profile),
        candidate_filter=candidate_filter,
        trial_executor=executor,
    ).tune()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolTrialExecutor(2) as executor:
        yield executor


class TestVCycleDeterminism:
    def test_serial_executor_matches_default(self):
        assert plan_to_dict(_tune_v(None)) == plan_to_dict(_tune_v(SerialExecutor()))

    def test_pool_matches_serial(self, pool):
        assert plan_to_dict(_tune_v(None)) == plan_to_dict(_tune_v(pool))

    def test_pool_matches_serial_on_other_machine(self, pool):
        serial = _tune_v(None, profile=SUN_NIAGARA)
        parallel = _tune_v(pool, profile=SUN_NIAGARA)
        assert plan_to_dict(serial) == plan_to_dict(parallel)

    def test_candidate_filter_respected(self, pool):
        def no_direct_above_level_1(level, acc_index, choice):
            return level == 1 or not isinstance(choice, DirectChoice)

        serial = _tune_v(None, candidate_filter=no_direct_above_level_1)
        parallel = _tune_v(pool, candidate_filter=no_direct_above_level_1)
        assert plan_to_dict(serial) == plan_to_dict(parallel)
        assert not any(
            isinstance(c, DirectChoice)
            for (level, _), c in parallel.table.items()
            if level > 1
        )

    def test_audit_records_cover_all_slots(self, pool):
        plan = _tune_v(pool)
        audit = plan.metadata["audit"]
        slots = {(rep.level, rep.acc_index) for rep in audit}
        m = plan.num_accuracies
        assert slots == {
            (level, i) for level in range(2, MAX_LEVEL + 1) for i in range(m)
        }
        chosen = [rep for rep in audit if rep.chosen]
        assert len(chosen) >= (MAX_LEVEL - 1) * m

    def test_wallclock_timing_rejected(self, pool):
        tuner = VCycleTuner(
            max_level=3,
            training=_training(),
            timing=WallclockTiming(repeats=1),
            trial_executor=pool,
        )
        with pytest.raises(NotImplementedError, match="CostModelTiming"):
            tuner.tune()


class TestFullMGDeterminism:
    def test_pool_matches_serial(self, pool):
        vplan = _tune_v(None)

        def tune(executor):
            return FullMGTuner(
                vplan=vplan,
                training=_training(),
                timing=CostModelTiming(INTEL_HARPERTOWN),
                trial_executor=executor,
            ).tune(MAX_LEVEL)

        assert plan_to_dict(tune(None)) == plan_to_dict(tune(pool))


class TestJobsWiring:
    def test_autotune_cached_jobs_matches_serial(self):
        kwargs = dict(
            max_level=3, machine="intel", instances=1, seed=7, allow_nearest=False
        )
        serial = autotune_cached(store=TrialDB(":memory:"), jobs=1, **kwargs)
        parallel = autotune_cached(store=TrialDB(":memory:"), jobs=2, **kwargs)
        assert plan_to_dict(serial) == plan_to_dict(parallel)

    def test_autotune_cached_full_mg_jobs_matches_serial(self):
        kwargs = dict(
            max_level=3,
            machine="amd",
            instances=1,
            seed=7,
            kind="full-multigrid",
            allow_nearest=False,
        )
        serial = autotune_cached(store=TrialDB(":memory:"), jobs=1, **kwargs)
        parallel = autotune_cached(store=TrialDB(":memory:"), jobs=2, **kwargs)
        assert plan_to_dict(serial) == plan_to_dict(parallel)
