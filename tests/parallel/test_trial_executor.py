"""Tests for the trial executor interface and its implementations."""

import pytest

from repro.parallel import (
    ProcessPoolTrialExecutor,
    SerialExecutor,
    TrialExecutor,
    resolve_executor,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_batch(self):
        assert SerialExecutor().map(_square, []) == []

    def test_jobs_is_one(self):
        assert SerialExecutor().jobs == 1

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [2]) == [4]


class TestProcessPoolExecutor:
    def test_maps_in_task_order(self):
        with ProcessPoolTrialExecutor(2) as ex:
            assert ex.map(_square, list(range(10))) == [i * i for i in range(10)]

    def test_pool_is_reused_across_batches(self):
        with ProcessPoolTrialExecutor(2) as ex:
            ex.map(_square, [1])
            pool = ex._pool
            ex.map(_square, [2])
            assert ex._pool is pool

    def test_empty_batch_spawns_no_pool(self):
        with ProcessPoolTrialExecutor(2) as ex:
            assert ex.map(_square, []) == []
            assert ex._pool is None

    def test_close_is_idempotent(self):
        ex = ProcessPoolTrialExecutor(2)
        ex.map(_square, [1])
        ex.close()
        ex.close()
        assert ex._pool is None

    def test_worker_error_propagates(self):
        with ProcessPoolTrialExecutor(2) as ex:
            with pytest.raises(ValueError, match="three"):
                ex.map(_fail_on_three, [1, 2, 3])

    def test_rejects_bad_job_counts(self):
        with pytest.raises(ValueError):
            ProcessPoolTrialExecutor(0)


class TestResolveExecutor:
    def test_none_and_one_are_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_many_is_process_pool(self):
        ex = resolve_executor(4)
        assert isinstance(ex, ProcessPoolTrialExecutor)
        assert ex.jobs == 4
        ex.close()

    def test_executor_passes_through(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            resolve_executor(0)
        with pytest.raises(ValueError):
            resolve_executor(-2)
        with pytest.raises(TypeError):
            resolve_executor(2.5)
        with pytest.raises(TypeError):
            resolve_executor(True)

    def test_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TrialExecutor().map(_square, [1])
