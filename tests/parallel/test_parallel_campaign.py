"""Parallel campaigns: identical registries, preserved resumability."""

import pytest

from repro.store import Campaign, CampaignSpec, TrialDB

#: 2 machines x 2 distributions x 2 levels = 8 independent cells.
SPEC = CampaignSpec(
    name="parallel-sweep",
    machines=("intel", "amd"),
    distributions=("unbiased", "biased"),
    levels=(3, 4),
    instances=1,
    seed=3,
)


def _campaign(tmp_path, name):
    return Campaign(SPEC, TrialDB(tmp_path / f"{name}.sqlite"))


class TestDeterminism:
    def test_parallel_registry_equals_serial_registry(self, tmp_path):
        serial = _campaign(tmp_path, "serial")
        parallel = _campaign(tmp_path, "parallel")
        serial_results = serial.run(jobs=1)
        parallel_results = parallel.run(jobs=4)

        assert len(serial_results) == len(parallel_results) == 8
        assert all(r.source == "tuned" for r in parallel_results)
        # Byte-for-byte equivalence: same plan keys, same plan JSON.
        contents = parallel.registry.contents()
        assert contents == serial.registry.contents()
        assert len(contents) == 8

    def test_results_come_back_in_sweep_order(self, tmp_path):
        campaign = _campaign(tmp_path, "ordered")
        results = campaign.run(jobs=4)
        assert [
            (r.machine, r.distribution, r.operator, r.max_level) for r in results
        ] == SPEC.cells()

    def test_parallel_results_carry_registry_hits(self, tmp_path):
        campaign = _campaign(tmp_path, "hits")
        results = campaign.run(jobs=2)
        assert all(r.hit is not None for r in results)
        assert all(r.hit.plan.max_level == r.max_level for r in results)

    def test_on_cell_fires_once_per_executed_cell(self, tmp_path):
        campaign = _campaign(tmp_path, "callbacks")
        seen = []
        campaign.run(jobs=4, on_cell=seen.append)
        assert len(seen) == 8
        assert all(cell.source == "tuned" for cell in seen)


class TestResume:
    def test_interrupted_parallel_campaign_resumes(self, tmp_path):
        path = tmp_path / "resume.sqlite"
        first = Campaign(SPEC, TrialDB(path))
        first.run(jobs=4, max_cells=3)  # "killed" after three cells
        assert first.status() == {"done": 3, "pending": 5}
        first.db.close()

        resumed = Campaign(SPEC, TrialDB(path))
        results = resumed.run(jobs=4)
        assert len([r for r in results if r.source == "skipped"]) == 3
        assert len([r for r in results if r.source == "tuned"]) == 5
        assert resumed.status() == {"done": 8, "pending": 0}
        # Completed cells were never re-tuned: one trial per cell total.
        assert resumed.db.count_trials() == 8

    def test_completed_parallel_campaign_rerun_executes_nothing(self, tmp_path):
        campaign = _campaign(tmp_path, "rerun")
        campaign.run(jobs=4)
        results = campaign.run(jobs=4)
        assert all(r.source == "skipped" for r in results)
        assert campaign.db.count_trials() == 8

    def test_parallel_resume_matches_straight_serial_run(self, tmp_path):
        interrupted = Campaign(SPEC, TrialDB(tmp_path / "a.sqlite"))
        interrupted.run(jobs=4, max_cells=2)
        interrupted.run(jobs=4)
        straight = Campaign(SPEC, TrialDB(tmp_path / "b.sqlite"))
        straight.run()
        assert interrupted.registry.contents() == straight.registry.contents()


class TestGuards:
    def test_memory_store_rejected(self):
        campaign = Campaign(SPEC, TrialDB(":memory:"))
        with pytest.raises(ValueError, match="file-backed"):
            campaign.run(jobs=4)

    def test_bad_job_count_rejected(self, tmp_path):
        campaign = _campaign(tmp_path, "bad-jobs")
        from repro.parallel import run_cells_parallel

        with pytest.raises(ValueError, match="jobs"):
            run_cells_parallel(campaign, jobs=0)

    def test_jobs_one_stays_serial_in_memory(self):
        # jobs=1 must keep working against :memory: (no pool involved).
        campaign = Campaign(SPEC, TrialDB(":memory:"))
        results = campaign.run(jobs=1, max_cells=1)
        assert len([r for r in results if r.source == "tuned"]) == 1

    def test_max_cells_zero_executes_nothing(self, tmp_path):
        campaign = _campaign(tmp_path, "zero")
        results = campaign.run(jobs=4, max_cells=0)
        assert results == []
        assert campaign.status() == {"done": 0, "pending": 8}

    def test_shared_registry_between_parallel_campaigns(self, tmp_path):
        db_path = tmp_path / "shared.sqlite"
        Campaign(SPEC, TrialDB(db_path)).run(jobs=4)
        other = CampaignSpec(
            name="second-sweep",
            machines=SPEC.machines,
            distributions=SPEC.distributions,
            levels=SPEC.levels,
            instances=SPEC.instances,
            seed=SPEC.seed,
        )
        results = Campaign(other, TrialDB(db_path)).run(jobs=4)
        assert all(r.source == "exact" for r in results)
