"""Method-of-manufactured-solutions: discretization order verification.

Pick a smooth exact solution u*, derive the continuous right-hand side
f = A u* analytically, solve the *discrete* system exactly (direct
solver), and measure the max-norm error against u* sampled on the grid.
Second-order discretizations must show error ratios ~4 per grid
refinement; we check three or more consecutive levels per operator, in
2-D and 3-D, for the constant-coefficient, anisotropic, and
variable-coefficient families.

This is the strongest correctness harness the stack has: it validates
the discrete operators against the PDE they claim to discretize, not
just against themselves.
"""

import numpy as np
import pytest

from repro.operators import shared_operator
from repro.util.validation import size_of_level


def _grid_coords(n, ndim):
    t = np.linspace(0.0, 1.0, n)
    return np.meshgrid(*([t] * ndim), indexing="ij")


def _discrete_solve_error(operator, levels, u_exact, rhs):
    """Max-norm errors of exact discrete solves against u* per level."""
    errors = []
    for level in levels:
        n = size_of_level(level)
        op = shared_operator(operator, n)
        coords = _grid_coords(n, op.ndim)
        ustar = u_exact(*coords)
        b = rhs(*coords)
        x = np.zeros_like(ustar)
        # Dirichlet data from the exact solution on the boundary shell.
        from repro.grids.boundary import boundary_mask

        mask = boundary_mask(n, op.ndim)
        x[mask] = ustar[mask]
        op.direct_solve(x, b)
        errors.append(float(np.abs(x - ustar).max()))
    return errors


def _assert_second_order(errors, lo=2.8, hi=5.5):
    """Each refinement must shrink the error by ~4 (h**2)."""
    for coarse, fine in zip(errors, errors[1:]):
        ratio = coarse / fine
        assert lo < ratio < hi, f"order ratio {ratio:.2f} outside ({lo}, {hi}): {errors}"


PI = np.pi


class TestPoissonMMS:
    def test_2d_poisson_is_second_order(self):
        def u(x, y):
            return np.sin(PI * x) * np.sin(PI * y)

        def f(x, y):
            return 2.0 * PI**2 * u(x, y)

        errors = _discrete_solve_error("poisson", (3, 4, 5), u, f)
        _assert_second_order(errors)

    def test_3d_poisson_is_second_order(self):
        def u(x, y, z):
            return np.sin(PI * x) * np.sin(PI * y) * np.sin(PI * z)

        def f(x, y, z):
            return 3.0 * PI**2 * u(x, y, z)

        errors = _discrete_solve_error("poisson3d", (3, 4, 5), u, f)
        _assert_second_order(errors)


class TestAnisotropicMMS:
    def test_2d_anisotropic_is_second_order(self):
        eps = 0.1

        def u(x, y):
            return np.sin(PI * x) * np.sin(PI * y)

        # A u = -(eps u_xx + u_yy); x runs along columns (axis 1).
        def f(x, y):
            return (eps + 1.0) * PI**2 * u(x, y)

        errors = _discrete_solve_error(f"anisotropic(epsilon={eps})", (3, 4, 5), u, f)
        _assert_second_order(errors)

    def test_3d_anisotropic_per_axis_is_second_order(self):
        epsx, epsy = 0.25, 0.5

        def u(x, y, z):
            return np.sin(PI * x) * np.sin(PI * y) * np.sin(PI * z)

        # A u = -(epsx u_xx + epsy u_yy + u_zz) with x along axis 0.
        def f(x, y, z):
            return (epsx + epsy + 1.0) * PI**2 * u(x, y, z)

        errors = _discrete_solve_error(
            f"anisotropic3d(epsx={epsx},epsy={epsy})", (3, 4, 5), u, f
        )
        _assert_second_order(errors)


class TestVariableCoefficientMMS:
    @pytest.mark.parametrize("amplitude,k", [(0.5, 1), (1.0, 2)])
    def test_2d_varcoeff_waves_is_second_order(self, amplitude, k):
        """-div(c grad u) with c = exp(a sin(2 pi k x) sin(2 pi k y)).

        f = -(grad c . grad u) - c laplace(u), all terms in closed form.
        In the coefficient-field convention x runs along columns (the
        second meshgrid axis here is y/rows), matching
        :mod:`repro.operators.coefficients`.
        """

        def u(y, x):  # meshgrid axis 0 = rows = y, axis 1 = cols = x
            return np.sin(PI * x) * np.sin(PI * y)

        def c(y, x):
            return np.exp(amplitude * np.sin(2 * PI * k * x) * np.sin(2 * PI * k * y))

        def f(y, x):
            cval = c(y, x)
            cx = cval * amplitude * 2 * PI * k * np.cos(2 * PI * k * x) * np.sin(2 * PI * k * y)
            cy = cval * amplitude * 2 * PI * k * np.sin(2 * PI * k * x) * np.cos(2 * PI * k * y)
            ux = PI * np.cos(PI * x) * np.sin(PI * y)
            uy = PI * np.sin(PI * x) * np.cos(PI * y)
            lap_u = -2.0 * PI**2 * u(y, x)
            return -(cx * ux + cy * uy) - cval * lap_u

        # The oscillatory coefficient needs a level of pre-asymptotic
        # headroom: start at level 4 so every ratio is in the h**2 regime.
        spec = f"varcoeff(field=waves,amplitude={amplitude},kx={k},ky={k})"
        errors = _discrete_solve_error(spec, (4, 5, 6), u, f)
        _assert_second_order(errors, lo=2.5, hi=6.0)

    def test_2d_varcoeff_bump_is_second_order(self):
        """c = 1 + a exp(-r^2 / (2 s^2)) centered on the domain."""
        a, s = 2.0, 0.15

        def u(y, x):
            return np.sin(PI * x) * np.sin(PI * y)

        def c(y, x):
            r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
            return 1.0 + a * np.exp(-r2 / (2 * s**2))

        def f(y, x):
            r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
            g = a * np.exp(-r2 / (2 * s**2))
            cx = g * (-(x - 0.5) / s**2)
            cy = g * (-(y - 0.5) / s**2)
            ux = PI * np.cos(PI * x) * np.sin(PI * y)
            uy = PI * np.sin(PI * x) * np.cos(PI * y)
            lap_u = -2.0 * PI**2 * u(y, x)
            return -(cx * ux + cy * uy) - (1.0 + g) * lap_u

        spec = f"varcoeff(field=bump,amplitude={a})"
        errors = _discrete_solve_error(spec, (3, 4, 5), u, f)
        _assert_second_order(errors, lo=2.5, hi=6.0)
