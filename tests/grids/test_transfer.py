"""Tests for restriction and interpolation operators."""

import numpy as np
import pytest

from repro.grids.transfer import (
    interpolate_bilinear,
    interpolate_correction,
    restrict_full_weighting,
    restrict_injection,
)


def dense_interpolation_matrix(nc: int) -> np.ndarray:
    """Dense bilinear interpolation over full grids (testing only)."""
    nf = 2 * (nc - 1) + 1
    p = np.zeros((nf * nf, nc * nc))
    for i in range(nc):
        for j in range(nc):
            coarse = np.zeros((nc, nc))
            coarse[i, j] = 1.0
            p[:, i * nc + j] = interpolate_bilinear(coarse).reshape(-1)
    return p


class TestRestriction:
    def test_constant_interior_preserved(self):
        fine = np.full((9, 9), 2.0)
        coarse = restrict_full_weighting(fine)
        # Interior coarse points average a constant stencil to the constant.
        np.testing.assert_allclose(coarse[1:-1, 1:-1], 2.0)

    def test_boundary_zeroed(self, rng):
        coarse = restrict_full_weighting(rng.standard_normal((9, 9)))
        assert np.all(coarse[0, :] == 0) and np.all(coarse[:, 0] == 0)

    def test_mass_scales_by_quarter(self):
        # Full weighting is P^T / 4: any interior fine delta carries total
        # mass value/4 to the coarse grid.  A coincident point contributes
        # 4/16 to exactly one coarse point.
        fine = np.zeros((9, 9))
        fine[4, 4] = 16.0
        coarse = restrict_full_weighting(fine)
        assert coarse[2, 2] == pytest.approx(4.0)
        assert coarse[1:-1, 1:-1].sum() == pytest.approx(4.0)
        # An edge-midpoint delta splits 2/16 + 2/16 across two coarse points.
        fine = np.zeros((9, 9))
        fine[3, 4] = 16.0
        assert restrict_full_weighting(fine)[1:-1, 1:-1].sum() == pytest.approx(4.0)

    def test_single_off_center_point_weights(self):
        fine = np.zeros((9, 9))
        fine[3, 4] = 16.0  # edge neighbour of coarse points (1,2) and (2,2)
        coarse = restrict_full_weighting(fine)
        assert coarse[1, 2] == pytest.approx(2.0)
        assert coarse[2, 2] == pytest.approx(2.0)

    def test_out_parameter(self, rng):
        fine = rng.standard_normal((9, 9))
        scratch = np.ones((5, 5))
        out = restrict_full_weighting(fine, out=scratch)
        assert out is scratch
        np.testing.assert_array_equal(out, restrict_full_weighting(fine))

    def test_out_wrong_shape_raises(self, rng):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((9, 9)), out=np.zeros((9, 9)))

    def test_cannot_restrict_base_grid(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((3, 3)))

    def test_injection_takes_coincident_values(self, rng):
        fine = rng.standard_normal((9, 9))
        coarse = restrict_injection(fine)
        np.testing.assert_array_equal(coarse, fine[::2, ::2])


class TestInterpolation:
    def test_exact_on_bilinear_functions(self):
        # Bilinear interpolation reproduces functions linear in x and y.
        nc = 5
        ii, jj = np.meshgrid(np.arange(nc), np.arange(nc), indexing="ij")
        coarse = 2.0 * ii + 3.0 * jj + 1.0
        fine = interpolate_bilinear(coarse)
        fi, fj = np.meshgrid(np.arange(9) / 2, np.arange(9) / 2, indexing="ij")
        np.testing.assert_allclose(fine, 2.0 * fi + 3.0 * fj + 1.0)

    def test_coincident_points_copied(self, rng):
        coarse = rng.standard_normal((5, 5))
        fine = interpolate_bilinear(coarse)
        np.testing.assert_array_equal(fine[::2, ::2], coarse)

    def test_midpoints_average(self):
        coarse = np.zeros((3, 3))
        coarse[1, 1] = 4.0
        fine = interpolate_bilinear(coarse)
        assert fine[2, 2] == 4.0
        assert fine[1, 2] == 2.0  # vertical midpoint
        assert fine[2, 1] == 2.0  # horizontal midpoint
        assert fine[1, 1] == 1.0  # cell center: average of 4

    def test_adjoint_of_restriction_up_to_factor_four(self, rng):
        # Full weighting R and bilinear interpolation P satisfy R = P^T / 4
        # on interiors (the standard variational pairing in 2D).
        nc, nf = 5, 9
        fine = np.zeros((nf, nf))
        fine[1:-1, 1:-1] = rng.standard_normal((nf - 2, nf - 2))
        coarse = np.zeros((nc, nc))
        coarse[1:-1, 1:-1] = rng.standard_normal((nc - 2, nc - 2))
        lhs = np.vdot(restrict_full_weighting(fine), coarse)
        rhs = np.vdot(fine, interpolate_bilinear(coarse)) / 4.0
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_interpolate_correction_matches_explicit_add(self, rng):
        nf = 9
        u = rng.standard_normal((nf, nf))
        correction = np.zeros((5, 5))
        correction[1:-1, 1:-1] = rng.standard_normal((3, 3))
        expected = u.copy()
        expected[1:-1, 1:-1] += interpolate_bilinear(correction)[1:-1, 1:-1]
        got = interpolate_correction(u.copy(), correction)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_interpolate_correction_leaves_boundary(self, rng):
        u = rng.standard_normal((9, 9))
        boundary_before = u[0, :].copy()
        interpolate_correction(u, rng.standard_normal((5, 5)))
        np.testing.assert_array_equal(u[0, :], boundary_before)

    def test_interpolate_correction_size_mismatch(self):
        with pytest.raises(ValueError):
            interpolate_correction(np.zeros((9, 9)), np.zeros((4, 4)))

    def test_dense_matrix_row_sums(self):
        # Every fine point's interpolation weights sum to 1.
        p = dense_interpolation_matrix(3)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
