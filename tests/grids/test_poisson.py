"""Tests for the discrete Poisson operator against a dense construction."""

import numpy as np
import pytest

from repro.grids.grid import mesh_width
from repro.grids.poisson import apply_poisson, residual, rhs_scale


def dense_poisson_matrix(n: int) -> np.ndarray:
    """Dense SPD matrix over interior unknowns (row-major), for testing."""
    m = n - 2
    inv_h2 = rhs_scale(n)
    a = np.zeros((m * m, m * m))
    for i in range(m):
        for j in range(m):
            row = i * m + j
            a[row, row] = 4.0 * inv_h2
            if i > 0:
                a[row, row - m] = -inv_h2
            if i < m - 1:
                a[row, row + m] = -inv_h2
            if j > 0:
                a[row, row - 1] = -inv_h2
            if j < m - 1:
                a[row, row + 1] = -inv_h2
    return a


class TestApplyPoisson:
    @pytest.mark.parametrize("n", [3, 5, 9, 17])
    def test_matches_dense_matrix_on_zero_boundary(self, n, rng):
        u = np.zeros((n, n))
        u[1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2))
        dense = dense_poisson_matrix(n)
        expected = dense @ u[1:-1, 1:-1].reshape(-1)
        got = apply_poisson(u)[1:-1, 1:-1].reshape(-1)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_boundary_of_output_is_zero(self, rng):
        u = rng.standard_normal((9, 9))
        out = apply_poisson(u)
        assert np.all(out[0, :] == 0) and np.all(out[-1, :] == 0)
        assert np.all(out[:, 0] == 0) and np.all(out[:, -1] == 0)

    def test_out_parameter_reused(self, rng):
        u = rng.standard_normal((9, 9))
        scratch = rng.standard_normal((9, 9))
        out = apply_poisson(u, out=scratch)
        assert out is scratch
        np.testing.assert_array_equal(out, apply_poisson(u))

    def test_out_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_poisson(np.zeros((9, 9)), out=np.zeros((5, 5)))

    def test_constant_field_maps_through_boundary_terms(self):
        # A globally constant grid is discretely harmonic: A u = 0.
        u = np.full((17, 17), 3.5)
        out = apply_poisson(u)
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_scaling_with_h(self):
        # Doubling resolution quadruples 1/h^2.
        assert rhs_scale(5) * 4 == pytest.approx(rhs_scale(9))


class TestResidual:
    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_residual_is_b_minus_au(self, n, rng):
        u = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        r = residual(u, b)
        expected = b[1:-1, 1:-1] - apply_poisson(u)[1:-1, 1:-1]
        np.testing.assert_allclose(r[1:-1, 1:-1], expected, rtol=1e-10, atol=1e-10)

    def test_residual_zero_for_exact_solution(self, rng):
        n = 9
        u = rng.standard_normal((n, n))
        b = apply_poisson(u)
        # b was computed with u's own boundary, so residual vanishes.
        r = residual(u, b)
        np.testing.assert_allclose(r, 0.0, atol=1e-8)

    def test_residual_boundary_zero(self, rng):
        r = residual(rng.standard_normal((9, 9)), rng.standard_normal((9, 9)))
        assert np.all(r[0, :] == 0) and np.all(r[:, -1] == 0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            residual(np.zeros((9, 9)), np.zeros((17, 17)))

    def test_out_parameter(self, rng):
        u = rng.standard_normal((9, 9))
        b = rng.standard_normal((9, 9))
        scratch = np.ones((9, 9))
        out = residual(u, b, out=scratch)
        assert out is scratch
        np.testing.assert_array_equal(out, residual(u, b))

    def test_boundary_values_feed_stencil(self):
        # A hot boundary contributes to the residual of adjacent cells.
        n = 5
        u = np.zeros((n, n))
        u[0, 2] = 1.0  # boundary point north of interior (1, 2)
        b = np.zeros((n, n))
        r = residual(u, b)
        h = mesh_width(n)
        assert r[1, 2] == pytest.approx(1.0 / (h * h))
