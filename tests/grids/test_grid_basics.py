"""Tests for grid construction, boundary handling, and norms."""

import numpy as np
import pytest

from repro.grids.boundary import apply_dirichlet, boundary_ring, set_boundary
from repro.grids.grid import (
    alloc_grid,
    coarsen_size,
    interior,
    mesh_width,
    refine_size,
    zero_boundary,
)
from repro.grids.norms import error_norm, interior_norm, residual_norm


class TestGrid:
    def test_alloc_zero(self):
        g = alloc_grid(9)
        assert g.shape == (9, 9) and g.dtype == np.float64
        assert np.all(g == 0)

    def test_alloc_fill(self):
        assert np.all(alloc_grid(5, fill=2.5) == 2.5)

    def test_alloc_rejects_bad_size(self):
        with pytest.raises(ValueError):
            alloc_grid(10)

    def test_mesh_width(self):
        assert mesh_width(5) == pytest.approx(0.25)

    def test_coarsen_refine_round_trip(self):
        assert coarsen_size(33) == 17
        assert refine_size(17) == 33
        assert refine_size(coarsen_size(129)) == 129

    def test_coarsen_base_raises(self):
        with pytest.raises(ValueError):
            coarsen_size(3)

    def test_interior_is_view(self):
        g = alloc_grid(5)
        inner = interior(g)
        inner[:] = 7.0
        assert g[1, 1] == 7.0
        assert g[0, 0] == 0.0

    def test_zero_boundary(self, rng):
        g = rng.standard_normal((9, 9))
        inner_before = g[1:-1, 1:-1].copy()
        zero_boundary(g)
        assert np.all(g[0, :] == 0) and np.all(g[:, -1] == 0)
        np.testing.assert_array_equal(g[1:-1, 1:-1], inner_before)


class TestBoundary:
    def test_ring_round_trip(self, rng):
        g = rng.standard_normal((9, 9))
        ring = boundary_ring(g)
        assert ring.shape == (4 * 9 - 4,)
        h = np.zeros((9, 9))
        set_boundary(h, ring)
        np.testing.assert_array_equal(boundary_ring(h), ring)

    def test_set_boundary_leaves_interior(self, rng):
        g = rng.standard_normal((9, 9))
        inner = g[1:-1, 1:-1].copy()
        set_boundary(g, np.ones(4 * 9 - 4))
        np.testing.assert_array_equal(g[1:-1, 1:-1], inner)

    def test_set_boundary_wrong_length(self):
        with pytest.raises(ValueError):
            set_boundary(np.zeros((9, 9)), np.zeros(5))

    def test_apply_dirichlet_scalar(self):
        g = np.zeros((5, 5))
        apply_dirichlet(g, 3.0)
        assert np.all(g[0, :] == 3.0) and np.all(g[:, -1] == 3.0)
        assert g[2, 2] == 0.0

    def test_apply_dirichlet_ring(self, rng):
        ring = rng.standard_normal(4 * 5 - 4)
        g = apply_dirichlet(np.zeros((5, 5)), ring)
        np.testing.assert_array_equal(boundary_ring(g), ring)


class TestNorms:
    def test_interior_norm_matches_numpy(self, rng):
        g = rng.standard_normal((9, 9))
        assert interior_norm(g) == pytest.approx(
            float(np.linalg.norm(g[1:-1, 1:-1]))
        )

    def test_error_norm_symmetric_in_shift(self, rng):
        a = rng.standard_normal((9, 9))
        b = rng.standard_normal((9, 9))
        assert error_norm(a, b) == pytest.approx(error_norm(b, a))

    def test_error_norm_zero_for_equal(self, rng):
        a = rng.standard_normal((9, 9))
        assert error_norm(a, a) == 0.0

    def test_error_norm_ignores_boundary(self, rng):
        a = rng.standard_normal((9, 9))
        b = a.copy()
        b[0, :] += 100.0  # boundary-only difference
        assert error_norm(a, b) == 0.0

    def test_error_norm_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_norm(np.zeros((9, 9)), np.zeros((5, 5)))

    def test_residual_norm_alias(self, rng):
        g = rng.standard_normal((9, 9))
        assert residual_norm(g) == interior_norm(g)
