"""3-D kernel correctness: scalar-loop specifications and exact identities.

The vectorized 3-D kernels (7-point apply/residual, red-black SOR,
separable full-weighting restriction and trilinear interpolation) are
checked against executable scalar specifications and the algebraic
identities the multigrid theory relies on (transfer adjointness, exact
interpolation of linear functions, partition-of-unity restriction).
"""

import numpy as np
import pytest

from repro.grids.boundary import (
    apply_dirichlet,
    boundary_mask,
    boundary_size,
    boundary_values,
    set_boundary_values,
)
from repro.grids.grid import alloc_grid, interior, zero_boundary
from repro.grids.norms import error_norm, interior_norm
from repro.grids.poisson import (
    apply_axis_stencil,
    apply_poisson,
    residual,
    residual_axis_stencil,
    rhs_scale,
)
from repro.grids.transfer import (
    interpolate_bilinear,
    interpolate_correction,
    restrict_full_weighting,
    restrict_injection,
)
from repro.relax.sor import sor_redblack, sor_redblack_axes3d, sor_redblack_reference


def rand_cube(n, seed, ndim=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n,) * ndim)


class TestApplyResidual3D:
    def test_apply_matches_scalar_stencil(self):
        n = 9
        u = rand_cube(n, 0)
        out = apply_poisson(u)
        inv_h2 = rhs_scale(n)
        ref = np.zeros_like(u)
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for k in range(1, n - 1):
                    ref[i, j, k] = inv_h2 * (
                        6 * u[i, j, k]
                        - u[i - 1, j, k] - u[i + 1, j, k]
                        - u[i, j - 1, k] - u[i, j + 1, k]
                        - u[i, j, k - 1] - u[i, j, k + 1]
                    )
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-9)

    def test_residual_is_b_minus_Au(self):
        n = 9
        u, b = rand_cube(n, 1), rand_cube(n, 2)
        r = residual(u, b)
        expected = b - apply_poisson(u)
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(r[inner], expected[inner], rtol=1e-12, atol=1e-9)
        assert np.all(r[0] == 0.0) and np.all(r[:, 0] == 0.0) and np.all(r[:, :, 0] == 0.0)

    def test_axis_weights_scale_each_axis(self):
        n = 9
        u = rand_cube(n, 3)
        coeffs = (0.25, 1.0, 2.0)
        out = apply_axis_stencil(u, coeffs)
        inv_h2 = rhs_scale(n)
        ref = np.zeros_like(u)
        for axis, c in enumerate(coeffs):
            lo = tuple(slice(0, -2) if a == axis else slice(1, -1) for a in range(3))
            hi = tuple(slice(2, None) if a == axis else slice(1, -1) for a in range(3))
            ref[(slice(1, -1),) * 3] += c * (
                2.0 * u[(slice(1, -1),) * 3] - u[lo] - u[hi]
            )
        ref *= inv_h2
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-9)

    def test_residual_axis_consistent_with_apply(self):
        n = 9
        u, b = rand_cube(n, 4), rand_cube(n, 5)
        coeffs = (0.5, 1.0, 1.5)
        r = residual_axis_stencil(u, b, coeffs)
        expected = b - apply_axis_stencil(u, coeffs)
        inner = (slice(1, -1),) * 3
        np.testing.assert_allclose(r[inner], expected[inner], rtol=1e-12, atol=1e-9)


class TestSOR3D:
    @pytest.mark.parametrize("omega", [0.8, 1.0, 1.15])
    def test_vectorized_matches_scalar_reference(self, omega):
        n = 9
        u1 = rand_cube(n, 6)
        u2 = u1.copy()
        b = rand_cube(n, 7)
        sor_redblack(u1, b, omega, sweeps=2)
        sor_redblack_reference(u2, b, omega, sweeps=2)
        np.testing.assert_allclose(u1, u2, rtol=1e-13, atol=1e-13)

    def test_axis_weighted_sweep_reduces_residual(self):
        n = 9
        coeffs = (0.1, 1.0, 1.0)
        u = np.zeros((n,) * 3)
        b = rand_cube(n, 8)
        r0 = interior_norm(residual_axis_stencil(u, b, coeffs))
        sor_redblack_axes3d(u, b, coeffs, 1.15, sweeps=20)
        assert interior_norm(residual_axis_stencil(u, b, coeffs)) < 0.5 * r0

    def test_zero_sweeps_is_identity(self):
        n = 5
        u = rand_cube(n, 9)
        before = u.copy()
        sor_redblack(u, rand_cube(n, 10), 1.15, sweeps=0)
        np.testing.assert_array_equal(u, before)


class TestTransfers3D:
    def test_restriction_preserves_constants_on_interior(self):
        fine = np.ones((9, 9, 9))
        coarse = restrict_full_weighting(fine)
        assert coarse.shape == (5, 5, 5)
        np.testing.assert_allclose(coarse[1:-1, 1:-1, 1:-1], 1.0)
        assert np.all(coarse[0] == 0.0)

    def test_injection_copies_coincident_points(self):
        fine = rand_cube(9, 11)
        coarse = restrict_injection(fine)
        np.testing.assert_array_equal(coarse, fine[::2, ::2, ::2])

    def test_trilinear_interpolation_exact_on_linear_functions(self):
        t = np.linspace(0.0, 1.0, 5)
        x, y, z = np.meshgrid(t, t, t, indexing="ij")
        lin = 1.0 + 2.0 * x + 3.0 * y - 4.0 * z
        out = interpolate_bilinear(lin)
        t9 = np.linspace(0.0, 1.0, 9)
        x9, y9, z9 = np.meshgrid(t9, t9, t9, indexing="ij")
        np.testing.assert_allclose(out, 1.0 + 2.0 * x9 + 3.0 * y9 - 4.0 * z9, atol=1e-12)

    def test_correction_adds_interpolant_to_interior_only(self):
        u = rand_cube(9, 12)
        boundary_before = u[boundary_mask(9, 3)].copy()
        c = rand_cube(5, 13)
        full = interpolate_bilinear(c)
        expected = u[1:-1, 1:-1, 1:-1] + full[1:-1, 1:-1, 1:-1]
        interpolate_correction(u, c)
        np.testing.assert_allclose(u[1:-1, 1:-1, 1:-1], expected, rtol=1e-12)
        np.testing.assert_array_equal(u[boundary_mask(9, 3)], boundary_before)

    def test_restriction_is_scaled_adjoint_of_interpolation(self):
        rng = np.random.default_rng(14)
        uf = np.zeros((9, 9, 9))
        uf[1:-1, 1:-1, 1:-1] = rng.standard_normal((7, 7, 7))
        vc = np.zeros((5, 5, 5))
        vc[1:-1, 1:-1, 1:-1] = rng.standard_normal((3, 3, 3))
        lhs = float(np.sum(restrict_full_weighting(uf) * vc))
        rhs = float(np.sum(uf * interpolate_bilinear(vc))) / 8.0
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestGridHelpers3D:
    def test_alloc_interior_zero_boundary(self):
        a = alloc_grid(5, fill=2.0, ndim=3)
        assert a.shape == (5, 5, 5)
        assert interior(a).shape == (3, 3, 3)
        zero_boundary(a)
        assert np.all(a[boundary_mask(5, 3)] == 0.0)
        assert np.all(interior(a) == 2.0)

    def test_boundary_roundtrip(self):
        a = rand_cube(5, 15)
        vals = boundary_values(a)
        assert vals.shape == (boundary_size(5, 3),)
        assert boundary_size(5, 3) == 5**3 - 3**3
        b = np.zeros((5, 5, 5))
        set_boundary_values(b, vals)
        np.testing.assert_array_equal(boundary_values(b), vals)
        assert np.all(interior(b) == 0.0)

    def test_apply_dirichlet_scalar_and_array(self):
        a = np.zeros((5, 5, 5))
        apply_dirichlet(a, 3.5)
        assert np.all(a[boundary_mask(5, 3)] == 3.5)
        assert np.all(interior(a) == 0.0)
        vals = np.arange(boundary_size(5, 3), dtype=np.float64)
        apply_dirichlet(a, vals)
        np.testing.assert_array_equal(boundary_values(a), vals)

    def test_norms_cover_interior_only(self):
        a = np.zeros((5, 5, 5))
        a[boundary_mask(5, 3)] = 100.0
        assert interior_norm(a) == 0.0
        a[2, 2, 2] = 3.0
        assert interior_norm(a) == pytest.approx(3.0)
        b = np.zeros_like(a)
        assert error_norm(a, b) == pytest.approx(3.0)
