"""Tests for the virtual-time scheduler and grid partitioning."""

import numpy as np
import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.relax.sor import sor_redblack
from repro.runtime.deque import WorkDeque
from repro.runtime.partition import partition_rows, sweep_task_graph
from repro.runtime.scheduler import WorkStealingScheduler
from repro.runtime.simsched import SimulatedScheduler
from repro.runtime.task import TaskGraph
from repro.workloads.distributions import make_problem


def uniform_graph(tasks: int, cost: float = 1.0, width: int = 0) -> TaskGraph:
    """``tasks`` independent tasks (width=0) or a chain (width=1)."""
    g = TaskGraph()
    prev = ()
    for i in range(tasks):
        g.add(f"t{i}", deps=prev, cost=cost)
        if width == 1:
            prev = (f"t{i}",)
    return g


class TestSimulatedScheduler:
    def test_single_worker_is_serial_time(self):
        g = uniform_graph(10, cost=2.0)
        rep = SimulatedScheduler(workers=1).run(g)
        assert rep.makespan == pytest.approx(20.0)
        assert rep.speedup == pytest.approx(1.0)

    def test_perfect_parallelism(self):
        g = uniform_graph(8, cost=3.0)
        rep = SimulatedScheduler(workers=8).run(g)
        assert rep.makespan == pytest.approx(3.0)
        assert rep.speedup == pytest.approx(8.0)

    def test_chain_limited_by_critical_path(self):
        g = uniform_graph(10, cost=1.0, width=1)
        rep = SimulatedScheduler(workers=4).run(g)
        assert rep.makespan == pytest.approx(g.critical_path_cost())

    def test_graham_bound(self):
        # makespan <= serial/P + critical path (greedy list scheduling).
        rng = np.random.default_rng(0)
        g = TaskGraph()
        names = []
        for i in range(40):
            deps = tuple(rng.choice(names, size=min(len(names), int(rng.integers(0, 3))), replace=False)) if names else ()
            g.add(f"t{i}", deps=deps, cost=float(rng.uniform(0.5, 2.0)))
            names.append(f"t{i}")
        for p in (1, 2, 4, 8):
            rep = SimulatedScheduler(workers=p).run(g)
            bound = g.total_cost() / p + g.critical_path_cost()
            assert rep.makespan <= bound + 1e-9
            assert rep.makespan >= g.critical_path_cost() - 1e-9
            assert rep.makespan >= g.total_cost() / p - 1e-9

    def test_completion_order_topological(self):
        g = uniform_graph(10, width=1)
        rep = SimulatedScheduler(workers=4).run(g)
        assert list(rep.completion_order) == [f"t{i}" for i in range(10)]

    def test_overheads_add_up(self):
        g = uniform_graph(4, cost=1.0)
        plain = SimulatedScheduler(workers=1).run(g).makespan
        padded = SimulatedScheduler(workers=1, steal_overhead=0.5).run(g).makespan
        assert padded == pytest.approx(plain + 4 * 0.5)

    def test_empty_graph(self):
        rep = SimulatedScheduler(workers=2).run(TaskGraph())
        assert rep.makespan == 0.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SimulatedScheduler(workers=0)


class TestWorkDeque:
    def test_lifo_for_owner_fifo_for_thief(self):
        d = WorkDeque()
        for i in range(3):
            d.push(i)
        assert d.pop() == 2  # owner: most recent
        assert d.steal() == 0  # thief: oldest
        assert len(d) == 1

    def test_empty_returns_none(self):
        d = WorkDeque()
        assert d.pop() is None
        assert d.steal() is None


class TestPartition:
    def test_rows_cover_interior_exactly(self):
        for n in (5, 9, 17, 33):
            for blocks in (1, 2, 3, 8, 100):
                spans = partition_rows(n, blocks)
                rows = []
                for lo, hi in spans:
                    rows.extend(range(lo, hi))
                assert rows == list(range(1, n - 1))

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            partition_rows(9, 0)

    @pytest.mark.parametrize("blocks", [1, 2, 3, 5])
    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_block_sweep_matches_serial(self, n, blocks):
        problem = make_problem("unbiased", n, seed=700 + n)
        serial = problem.initial_guess()
        sor_redblack(serial, problem.b, 1.15, 1)
        parallel = problem.initial_guess()
        graph = sweep_task_graph(parallel, problem.b, 1.15, blocks)
        WorkStealingScheduler(workers=3).run(graph)
        np.testing.assert_allclose(parallel, serial, rtol=1e-12, atol=1e-12)

    def test_costs_attached_with_profile(self):
        problem = make_problem("unbiased", 17, seed=701)
        x = problem.initial_guess()
        graph = sweep_task_graph(x, problem.b, 1.15, 4, profile=INTEL_HARPERTOWN)
        costs = [t.cost for t in graph.tasks()]
        assert all(c > 0 for c in costs)
        # Red and black phases share the serial cost evenly.
        assert max(costs) == pytest.approx(min(costs))

    def test_barrier_structure(self):
        problem = make_problem("unbiased", 17, seed=702)
        x = problem.initial_guess()
        graph = sweep_task_graph(x, problem.b, 1.15, 4)
        black = [t for t in graph.tasks() if "black" in t.name]
        red_names = {t.name for t in graph.tasks() if "red" in t.name}
        for t in black:
            assert set(t.deps) == red_names
