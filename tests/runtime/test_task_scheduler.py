"""Tests for the task graph and both schedulers."""

import threading

import pytest

from repro.runtime.scheduler import (
    SerialScheduler,
    WorkStealingScheduler,
    validate_completion_order,
)
from repro.runtime.task import TaskGraph


def diamond_graph(effects: list | None = None) -> TaskGraph:
    g = TaskGraph()
    log = effects if effects is not None else []
    for name, deps in (("a", ()), ("b", ("a",)), ("c", ("a",)), ("d", ("b", "c"))):
        g.add(name, fn=(lambda n=name: log.append(n)), deps=deps, cost=1.0)
    return g


class TestTaskGraph:
    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add("x")
        with pytest.raises(ValueError, match="duplicate"):
            g.add("x")

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            TaskGraph().add("x", deps=("ghost",))

    def test_topological_order_respects_deps(self):
        g = diamond_graph()
        order = [t.name for t in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_critical_path_and_total(self):
        g = diamond_graph()
        assert g.total_cost() == pytest.approx(4.0)
        assert g.critical_path_cost() == pytest.approx(3.0)  # a -> b/c -> d

    def test_contains_and_len(self):
        g = diamond_graph()
        assert "a" in g and "z" not in g
        assert len(g) == 4


class TestSerialScheduler:
    def test_executes_all_in_order(self):
        effects = []
        g = diamond_graph(effects)
        order = SerialScheduler().run(g)
        assert sorted(effects) == ["a", "b", "c", "d"]
        assert validate_completion_order(g, order)

    def test_empty_graph(self):
        assert SerialScheduler().run(TaskGraph()) == []


class TestWorkStealingScheduler:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_valid_completion_order(self, workers):
        effects = []
        g = diamond_graph(effects)
        order = WorkStealingScheduler(workers=workers).run(g)
        assert validate_completion_order(g, order)
        assert sorted(effects) == ["a", "b", "c", "d"]

    def test_large_fanout_stress(self):
        g = TaskGraph()
        counter = {"n": 0}
        lock = threading.Lock()

        def bump():
            with lock:
                counter["n"] += 1

        g.add("root", fn=bump)
        for i in range(200):
            g.add(f"mid-{i}", fn=bump, deps=("root",))
        g.add("sink", fn=bump, deps=tuple(f"mid-{i}" for i in range(200)))
        order = WorkStealingScheduler(workers=4).run(g)
        assert counter["n"] == 202
        assert validate_completion_order(g, order)

    def test_exception_propagates(self):
        g = TaskGraph()
        g.add("boom", fn=lambda: (_ for _ in ()).throw(RuntimeError("bang")))
        with pytest.raises(RuntimeError, match="bang"):
            WorkStealingScheduler(workers=2).run(g)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(workers=0)

    def test_empty_graph(self):
        assert WorkStealingScheduler(workers=2).run(TaskGraph()) == []

    def test_chain_order_strict(self):
        g = TaskGraph()
        effects = []
        prev = ()
        for i in range(20):
            g.add(f"t{i}", fn=(lambda i=i: effects.append(i)), deps=prev)
            prev = (f"t{i}",)
        WorkStealingScheduler(workers=3).run(g)
        assert effects == list(range(20))
