"""Tests for the wall-clock tuning mode (how real PetaBricks times
candidates) and the timing-strategy interface."""

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.machines.meter import OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.timing import CostModelTiming, WallclockTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


class TestWallclockTiming:
    def test_times_are_positive(self):
        timing = WallclockTiming(repeats=1)
        problem = make_problem("unbiased", 9, seed=1)
        meter = OpMeter()

        def run(x, b):
            x[1:-1, 1:-1] += 1.0

        t = timing.time_candidate(meter, run, [(problem.initial_guess(), problem.b)])
        assert t >= 0.0

    def test_op_seconds_disables_pruning(self):
        assert WallclockTiming().op_seconds("relax", 33) == 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            WallclockTiming(repeats=0)

    def test_requires_instances(self):
        with pytest.raises(ValueError):
            WallclockTiming(repeats=1).time_candidate(OpMeter(), lambda x, b: None, [])

    def test_tuned_plan_under_wallclock_meets_accuracy(self):
        # End-to-end: the paper-faithful timing mode still yields plans that
        # honour the accuracy ladder (the numerics are timing-independent).
        training = TrainingData(distribution="unbiased", instances=1, seed=23)
        plan = VCycleTuner(
            max_level=3,
            training=training,
            timing=WallclockTiming(repeats=1),
            keep_audit=False,
        ).tune()
        cache = ReferenceSolutionCache()
        problem = make_problem("unbiased", 9, seed=24)
        x_opt = cache.get(problem)
        executor = PlanExecutor()
        for i, target in enumerate(plan.accuracies):
            x = problem.initial_guess()
            judge = AccuracyJudge(x, x_opt)
            executor.run_v(plan, x, problem.b, i)
            assert judge.accuracy_of(x) >= 0.5 * target


class TestCostModelTiming:
    def test_prices_follow_profile(self):
        timing = CostModelTiming(INTEL_HARPERTOWN)
        meter = OpMeter()
        meter.charge("relax", 33, 2)
        t = timing.time_candidate(meter, lambda x, b: None, [])
        assert t == pytest.approx(INTEL_HARPERTOWN.price(meter))

    def test_thread_override(self):
        timing1 = CostModelTiming(INTEL_HARPERTOWN, threads=1)
        timing8 = CostModelTiming(INTEL_HARPERTOWN, threads=8)
        assert timing8.op_seconds("relax", 513) < timing1.op_seconds("relax", 513)

    def test_op_seconds_matches_profile(self):
        timing = CostModelTiming(INTEL_HARPERTOWN)
        assert timing.op_seconds("direct", 17) == INTEL_HARPERTOWN.op_time("direct", 17)
