"""Tests for the discrete DP autotuner — the paper's core algorithm."""

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.machines.presets import INTEL_HARPERTOWN, SUN_NIAGARA
from repro.tuner.choices import DirectChoice, SORChoice
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


class TestTunedPlanStructure:
    def test_level_one_always_direct(self, tuned_plan):
        for i in range(tuned_plan.num_accuracies):
            assert tuned_plan.choice(1, i) == DirectChoice()

    def test_all_slots_filled(self, tuned_plan):
        for level in range(1, tuned_plan.max_level + 1):
            for i in range(tuned_plan.num_accuracies):
                assert tuned_plan.choice(level, i) is not None

    def test_audit_recorded(self, tuned_plan):
        audit = tuned_plan.metadata["audit"]
        assert audit, "audit must record candidate evaluations"
        chosen = [r for r in audit if r.chosen]
        assert chosen
        # Every chosen candidate was feasible.
        assert all(r.feasible for r in chosen)

    def test_metadata_provenance(self, tuned_plan):
        md = tuned_plan.metadata
        assert md["distribution"] == "unbiased"
        assert md["profile"] == INTEL_HARPERTOWN.name
        assert md["kind"] == "multigrid-v"


class TestTunedPlanQuality:
    def test_meets_accuracy_targets_on_unseen_instances(self, tuned_plan):
        # The central promise: MULTIGRID-V_i achieves accuracy p_i.
        cache = ReferenceSolutionCache()
        executor = PlanExecutor()
        for seed in (201, 202):
            problem = make_problem("unbiased", 33, seed=seed)
            x_opt = cache.get(problem)
            for i, target in enumerate(tuned_plan.accuracies):
                x = problem.initial_guess()
                judge = AccuracyJudge(x, x_opt)
                executor.run_v(tuned_plan, x, problem.b, i)
                achieved = judge.accuracy_of(x)
                # Training is worst-case aggregated; unseen instances get a
                # small safety margin.
                assert achieved >= 0.5 * target, (
                    f"slot (5, {i}) achieved {achieved:.2e} < target {target:g}"
                )

    def test_higher_accuracy_never_cheaper(self, tuned_plan):
        # Within a level, the DP's chosen time must be monotone in the
        # accuracy target (a harder target can't have a faster plan).
        for level in range(2, tuned_plan.max_level + 1):
            times = [
                tuned_plan.time_on(INTEL_HARPERTOWN, level, i)
                for i in range(tuned_plan.num_accuracies)
            ]
            for a, b in zip(times, times[1:]):
                assert b >= a * 0.999

    def test_chosen_is_fastest_feasible_in_audit(self, tuned_plan):
        audit = tuned_plan.metadata["audit"]
        by_slot = {}
        for rec in audit:
            by_slot.setdefault((rec.level, rec.acc_index), []).append(rec)
        for (level, i), records in by_slot.items():
            feasible = [r for r in records if r.feasible]
            chosen = [r for r in records if r.chosen]
            assert len(chosen) >= 1
            best = min(feasible, key=lambda r: r.seconds)
            assert chosen[0].seconds <= best.seconds * 1.0001


class TestDeterminismAndFilters:
    def test_same_seed_same_plan(self):
        def tune():
            training = TrainingData(distribution="unbiased", instances=2, seed=5)
            return VCycleTuner(
                max_level=4,
                training=training,
                timing=CostModelTiming(INTEL_HARPERTOWN),
                keep_audit=False,
            ).tune()

        assert tune().table == tune().table

    def test_different_machines_may_differ(self):
        plans = {}
        for profile in (INTEL_HARPERTOWN, SUN_NIAGARA):
            training = TrainingData(distribution="unbiased", instances=2, seed=5)
            plans[profile.name] = VCycleTuner(
                max_level=5,
                training=training,
                timing=CostModelTiming(profile),
                keep_audit=False,
            ).tune()
        # Identical numerics, different cost landscapes: the tables should
        # differ somewhere at this scale (direct/recursion crossover moves).
        assert (
            plans[INTEL_HARPERTOWN.name].table != plans[SUN_NIAGARA.name].table
        )

    def test_candidate_filter_respected(self):
        training = TrainingData(distribution="unbiased", instances=2, seed=5)

        def no_sor(level, acc_index, choice):
            return not isinstance(choice, SORChoice)

        plan = VCycleTuner(
            max_level=4,
            training=training,
            timing=CostModelTiming(INTEL_HARPERTOWN),
            candidate_filter=no_sor,
            keep_audit=False,
        ).tune()
        for choice in plan.table.values():
            assert not isinstance(choice, SORChoice)

    def test_overrestrictive_filter_raises(self):
        training = TrainingData(distribution="unbiased", instances=1, seed=5)
        with pytest.raises(RuntimeError, match="no feasible candidate"):
            VCycleTuner(
                max_level=2,
                training=training,
                timing=CostModelTiming(INTEL_HARPERTOWN),
                candidate_filter=lambda *a: False,
            ).tune()

    def test_max_level_one_plan(self):
        training = TrainingData(distribution="unbiased", instances=1, seed=5)
        plan = VCycleTuner(
            max_level=1,
            training=training,
            timing=CostModelTiming(INTEL_HARPERTOWN),
        ).tune()
        assert plan.max_level == 1
        assert all(isinstance(c, DirectChoice) for c in plan.table.values())


class TestBudgetPruning:
    def test_budget_cap_math(self):
        cap = VCycleTuner._budget_cap(unit_cost=1.0, best_time=10.0, hard_cap=100)
        assert cap == 11
        assert VCycleTuner._budget_cap(0.0, 10.0, 100) == 100
        assert VCycleTuner._budget_cap(1.0, float("inf"), 100) == 100
