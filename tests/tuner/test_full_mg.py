"""Tests for the full-multigrid tuner extension (section 2.4)."""

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.choices import DirectChoice, EstimateChoice
from repro.tuner.executor import PlanExecutor
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.timing import WallclockTiming
from repro.workloads.distributions import make_problem


class TestStructure:
    def test_level_one_direct(self, tuned_fmg_plan):
        for i in range(tuned_fmg_plan.num_accuracies):
            assert tuned_fmg_plan.choice(1, i) == DirectChoice()

    def test_slots_are_direct_or_estimate(self, tuned_fmg_plan):
        for choice in tuned_fmg_plan.table.values():
            assert isinstance(choice, (DirectChoice, EstimateChoice))

    def test_shares_vplan(self, tuned_fmg_plan, tuned_plan):
        assert tuned_fmg_plan.vplan is tuned_plan

    def test_metadata(self, tuned_fmg_plan):
        assert tuned_fmg_plan.metadata["kind"] == "full-multigrid"


class TestQuality:
    def test_meets_accuracy_targets(self, tuned_fmg_plan):
        cache = ReferenceSolutionCache()
        executor = PlanExecutor()
        problem = make_problem("unbiased", 33, seed=301)
        x_opt = cache.get(problem)
        for i, target in enumerate(tuned_fmg_plan.accuracies):
            x = problem.initial_guess()
            judge = AccuracyJudge(x, x_opt)
            executor.run_full_mg(tuned_fmg_plan, x, problem.b, i)
            assert judge.accuracy_of(x) >= 0.5 * target

    def test_no_slower_than_vplan_under_profile(self, tuned_fmg_plan, tuned_plan):
        # FULL-MULTIGRID always pays an estimation phase before iterating
        # (the paper's structure has no plain-iterate option), so at *low*
        # accuracy it can trail the V plan by the estimate overhead; it must
        # never be drastically worse, and at the top accuracy the estimate
        # should pay for itself.
        m = tuned_fmg_plan.num_accuracies
        for i in range(m):
            tf = tuned_fmg_plan.time_on(INTEL_HARPERTOWN, 5, i)
            tv = tuned_plan.time_on(INTEL_HARPERTOWN, 5, i)
            assert tf <= 2.5 * tv
        top_f = tuned_fmg_plan.time_on(INTEL_HARPERTOWN, 5, m - 1)
        top_v = tuned_plan.time_on(INTEL_HARPERTOWN, 5, m - 1)
        assert top_f <= 1.25 * top_v

    def test_monotone_times_in_accuracy(self, tuned_fmg_plan):
        times = [
            tuned_fmg_plan.time_on(INTEL_HARPERTOWN, 5, i)
            for i in range(tuned_fmg_plan.num_accuracies)
        ]
        for a, b in zip(times, times[1:]):
            assert b >= a * 0.999


class TestGuards:
    def test_wallclock_timing_rejected(self, tuned_plan, shared_training):
        with pytest.raises(NotImplementedError):
            FullMGTuner(
                vplan=tuned_plan,
                training=shared_training,
                timing=WallclockTiming(),
            )

    def test_cannot_exceed_vplan_levels(self, tuned_plan, shared_training):
        tuner = FullMGTuner(vplan=tuned_plan, training=shared_training)
        with pytest.raises(ValueError, match="cannot exceed"):
            tuner.tune(max_level=tuned_plan.max_level + 1)

    def test_partial_level_tuning(self, tuned_plan, shared_training):
        tuner = FullMGTuner(vplan=tuned_plan, training=shared_training)
        plan = tuner.tune(max_level=3)
        assert plan.max_level == 3
        assert (3, 0) in plan.table
        assert (4, 0) not in plan.table
