"""The kernel backend as a tuning dimension.

The DP prices every level twice — NumPy and accelerated — and keeps
whichever is cheaper, so tuned plans mix backends: accelerated fine
levels (where the per-call dispatch overhead amortizes) over NumPy
coarse levels.  These tests pin that placement logic, the plan/config
round-trip, and the store/serve plumbing that keys plans per backend.

Everything here runs without any accelerated backend actually present:
the backend is a *pricing* dimension (cost-model gains from the machine
profile), so tuning for ``cnative`` works on hosts that cannot execute
it — exactly like tuning for a remote machine's profile.
"""

import json

import pytest

from repro.core.api import autotune, autotune_cached, autotune_full_mg
from repro.kernels import resolve_backend
from repro.machines.presets import INTEL_HARPERTOWN
from repro.serve.cache import PlanCache, ServeKey
from repro.store import CampaignSpec, PlanRegistry, TrialDB, TuneKey
from repro.tuner.config import plan_from_dict, plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData


def _tune(backend: str, max_level: int = 6, **overrides):
    kwargs = dict(max_level=max_level, machine="intel", distribution="unbiased",
                  instances=2, seed=0, backend=backend)
    kwargs.update(overrides)
    return autotune(**kwargs)


class TestBackendPlacement:
    def test_tuner_accelerates_fine_levels_only(self):
        """At L6 on the intel profile the crossover (n ~ 33) puts the
        accelerated backend on the fine levels and leaves the coarse
        levels — where dispatch overhead dominates — on NumPy."""
        plan = _tune("cnative")
        assert plan.backends, "no level was accelerated at L6"
        assert set(plan.backends.values()) == {"cnative"}
        accelerated = set(plan.backends)
        assert accelerated <= {5, 6}
        for level in range(1, min(accelerated)):
            assert plan.backend_at(level) == "numpy"

    def test_below_crossover_plan_stays_numpy(self):
        """A shallow tune (every grid below the crossover) must not
        pay the accelerated dispatch overhead anywhere."""
        plan = _tune("cnative", max_level=3)
        assert plan.backends == {}

    def test_backend_never_beats_free_numpy_pricing(self):
        """Adding a backend option can only lower the simulated cost:
        the DP keeps NumPy wherever acceleration does not pay."""
        profile = INTEL_HARPERTOWN
        numpy_plan = _tune("numpy")
        accel_plan = _tune("cnative")
        top = numpy_plan.num_accuracies - 1
        assert (
            accel_plan.time_on(profile, 6, top)
            <= numpy_plan.time_on(profile, 6, top)
        )

    def test_metadata_records_the_backend(self):
        assert _tune("cnative").metadata["backend"] == "cnative"
        assert "backend" not in _tune("numpy").metadata

    def test_full_mg_plan_carries_vplan_backends(self):
        kwargs = dict(max_level=5, machine="intel", distribution="unbiased",
                      instances=2, seed=0)
        fmg = autotune_full_mg(backend="cnative", **kwargs)
        assert fmg.backends == fmg.vplan.backends
        assert fmg.backend_at(5) == fmg.vplan.backend_at(5)


class TestSerialization:
    def test_round_trip_preserves_backends(self):
        plan = _tune("cnative")
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.backends == plan.backends
        assert clone.table == plan.table

    def test_numpy_plan_json_is_byte_unchanged(self):
        """The backend axis must not perturb existing stored plans: a
        numpy tune serializes to exactly the pre-backend JSON (no
        ``backends`` key, no metadata stamp)."""
        explicit = _tune("numpy")
        implicit = autotune(max_level=6, machine="intel",
                            distribution="unbiased", instances=2, seed=0)
        explicit_json = json.dumps(plan_to_dict(explicit), sort_keys=True)
        implicit_json = json.dumps(plan_to_dict(implicit), sort_keys=True)
        assert explicit_json == implicit_json
        assert "backends" not in plan_to_dict(explicit)

    def test_backends_serialized_with_string_levels(self):
        data = plan_to_dict(_tune("cnative"))
        assert data["backends"]
        assert all(isinstance(k, str) for k in data["backends"])


class TestTuneKeyBackend:
    def test_auto_resolves_at_construction(self):
        key = TuneKey(max_level=4, instances=1, seed=0, backend="auto")
        assert key.backend == resolve_backend("auto")
        assert key.backend != "auto"

    def test_storage_key_ends_with_backend(self):
        key = TuneKey(max_level=4, instances=1, seed=0, backend="cnative")
        assert key.storage_key("fp").endswith("|cnative")

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(ValueError):
            TuneKey(max_level=4, instances=1, seed=0, backend="cuda")

    def test_registry_separates_backends(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        base = dict(max_level=4, machine="intel", instances=1, seed=0,
                    store=registry)
        autotune_cached(backend="numpy", **base)
        autotune_cached(backend="cnative", **base)
        assert len(registry) == 2
        for backend in ("numpy", "cnative"):
            key = TuneKey(max_level=4, instances=1, seed=0, backend=backend)
            hit = registry.get(INTEL_HARPERTOWN, key)
            assert hit is not None and hit.source == "exact"

    def test_trials_record_the_backend(self):
        db = TrialDB(":memory:")
        registry = PlanRegistry(db)
        autotune_cached(max_level=4, machine="intel", instances=1, seed=0,
                        store=registry, backend="cnative")
        records = db.trials(backend="cnative")
        assert len(records) == 1 and records[0].backend == "cnative"
        assert db.trials(backend="numpy") == []


class TestServeBackend:
    def test_cache_resolves_backend_once(self):
        cache = PlanCache(PlanRegistry(TrialDB(":memory:")), backend="auto")
        assert cache.backend == resolve_backend("auto")
        key = cache.key_for(INTEL_HARPERTOWN, None, 4, "unbiased")
        assert key.backend == cache.backend
        assert cache.tune_key(key).backend == cache.backend

    def test_serve_key_label_marks_non_numpy(self):
        fp = INTEL_HARPERTOWN.fingerprint()
        plain = ServeKey(fingerprint=fp, operator="poisson", level=4,
                         distribution="unbiased")
        fast = ServeKey(fingerprint=fp, operator="poisson", level=4,
                        distribution="unbiased", backend="cnative")
        assert "@" not in plain.label()
        assert fast.label().endswith("@cnative")
        assert plain != fast


class TestCampaignBackend:
    def test_spec_round_trips_auto_verbatim(self):
        """'auto' is stored unresolved: each fleet worker resolves it
        against its *own* host, not the submitting machine's."""
        spec = CampaignSpec(name="c", machines=("intel",),
                            distributions=("unbiased",), levels=(3,),
                            instances=1, seed=0, backend="auto")
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.backend == "auto"

    def test_default_spec_has_numpy_backend(self):
        spec = CampaignSpec(name="c", machines=("intel",),
                            distributions=("unbiased",), levels=(3,),
                            instances=1, seed=0)
        assert spec.to_dict()["backend"] == "numpy"

    def test_key_for_carries_backend(self):
        spec = CampaignSpec(name="c", machines=("intel",),
                            distributions=("unbiased",), levels=(3,),
                            instances=1, seed=0, backend="cnative")
        key = spec.key_for("unbiased", 3, "poisson")
        assert key.backend == "cnative"


class TestTunerField:
    def test_tuner_resolves_auto(self):
        tuner = VCycleTuner(
            max_level=3,
            training=TrainingData(distribution="unbiased", instances=1, seed=0),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            backend="auto",
            keep_audit=False,
        )
        assert tuner.backend == resolve_backend("auto")

    def test_tuner_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            VCycleTuner(
                max_level=3,
                training=TrainingData(distribution="unbiased", instances=1,
                                      seed=0),
                timing=CostModelTiming(INTEL_HARPERTOWN),
                backend="opencl",
                keep_audit=False,
            )
