"""Tests for dynamic (input-adaptive) plan dispatch — the section 6
future-work extension."""

import numpy as np
import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.machines.meter import OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.dynamic import DynamicSolver, classify_by_bias
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


@pytest.fixture(scope="module")
def dynamic_solver(tuned_plan):
    biased_training = TrainingData(distribution="biased", instances=2, seed=7)
    biased_plan = VCycleTuner(
        max_level=5,
        training=biased_training,
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()
    return DynamicSolver(plans={"unbiased": tuned_plan, "biased": biased_plan})


class TestClassifier:
    @pytest.mark.parametrize("dist", ["unbiased", "biased"])
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_classifies_paper_distributions(self, dist, seed):
        problem = make_problem(dist, 33, seed=seed)
        assert classify_by_bias(problem) == dist

    def test_constant_rhs_defaults_unbiased(self):
        from repro.workloads.problem import PoissonProblem

        problem = PoissonProblem(
            b=np.zeros((9, 9)), boundary=np.zeros(4 * 9 - 4)
        )
        assert classify_by_bias(problem) == "unbiased"


class TestDynamicSolver:
    def test_routes_to_matching_plan(self, dynamic_solver):
        for dist in ("unbiased", "biased"):
            problem = make_problem(dist, 33, seed=11)
            label, plan = dynamic_solver.plan_for(problem)
            assert label == dist
            assert plan.metadata["distribution"] == dist

    @pytest.mark.parametrize("dist", ["unbiased", "biased"])
    def test_solves_to_target(self, dynamic_solver, dist):
        problem = make_problem(dist, 33, seed=12)
        cache = ReferenceSolutionCache()
        judge = AccuracyJudge(problem.initial_guess(), cache.get(problem))
        x, label = dynamic_solver.solve(problem, 1e5)
        assert label == dist
        assert judge.accuracy_of(x) >= 0.5e5

    def test_meter_populated(self, dynamic_solver):
        problem = make_problem("unbiased", 33, seed=13)
        meter = OpMeter()
        dynamic_solver.solve(problem, 1e3, meter)
        assert len(meter.counts) > 0

    def test_unknown_class_raises_without_fallback(self, tuned_plan):
        solver = DynamicSolver(
            plans={"unbiased": tuned_plan}, classifier=lambda p: "weird"
        )
        with pytest.raises(KeyError, match="weird"):
            solver.plan_for(make_problem("unbiased", 17, seed=1))

    def test_fallback_used(self, tuned_plan):
        solver = DynamicSolver(
            plans={"unbiased": tuned_plan},
            classifier=lambda p: "weird",
            fallback="unbiased",
        )
        label, plan = solver.plan_for(make_problem("unbiased", 17, seed=1))
        assert label == "unbiased"

    def test_bad_fallback_rejected(self, tuned_plan):
        with pytest.raises(ValueError, match="fallback"):
            DynamicSolver(plans={"unbiased": tuned_plan}, fallback="nope")

    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError):
            DynamicSolver(plans={})

    def test_mismatched_ladders_rejected(self, tuned_plan):
        from repro.tuner.choices import DirectChoice
        from repro.tuner.plan import TunedVPlan

        other = TunedVPlan(
            accuracies=(1e2,), max_level=1, table={(1, 0): DirectChoice()}
        )
        with pytest.raises(ValueError, match="ladder"):
            DynamicSolver(plans={"a": tuned_plan, "b": other})

    def test_oversize_problem_rejected(self, dynamic_solver):
        problem = make_problem("unbiased", 129, seed=14)
        with pytest.raises(ValueError, match="level"):
            dynamic_solver.solve(problem, 1e1)
