"""Tests for choice types and tuned-plan structures."""

import pytest

from repro.machines.meter import OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.choices import (
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
    choice_from_dict,
    choice_to_dict,
)
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan, recurse_wrapper_meter


def tiny_vplan(accuracies=(1e1, 1e3)) -> TunedVPlan:
    """Level-3 plan: direct at the bottom, SOR / recursion above."""
    table = {
        (1, 0): DirectChoice(),
        (1, 1): DirectChoice(),
        (2, 0): SORChoice(iterations=5),
        (2, 1): DirectChoice(),
        (3, 0): RecurseChoice(sub_accuracy=1, iterations=2),
        (3, 1): RecurseChoice(sub_accuracy=0, iterations=3),
    }
    return TunedVPlan(accuracies=accuracies, max_level=3, table=table)


class TestChoices:
    def test_round_trip_all_kinds(self):
        choices = [
            DirectChoice(),
            SORChoice(iterations=7),
            RecurseChoice(sub_accuracy=2, iterations=4),
            EstimateChoice(estimate_accuracy=1, solver=SORChoice(iterations=0)),
            EstimateChoice(
                estimate_accuracy=0, solver=RecurseChoice(sub_accuracy=3, iterations=2)
            ),
        ]
        for c in choices:
            assert choice_from_dict(choice_to_dict(c)) == c

    def test_validation(self):
        with pytest.raises(ValueError):
            SORChoice(iterations=-1)
        with pytest.raises(ValueError):
            RecurseChoice(sub_accuracy=-1, iterations=1)
        with pytest.raises(TypeError):
            EstimateChoice(estimate_accuracy=0, solver=DirectChoice())

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            choice_from_dict({"kind": "quantum"})
        with pytest.raises(ValueError):
            choice_from_dict(
                {"kind": "estimate", "estimate_accuracy": 0, "solver": {"kind": "direct"}}
            )

    def test_describe_strings(self):
        assert DirectChoice().describe() == "direct"
        assert "x3" in SORChoice(iterations=3).describe()
        assert "j=1" in RecurseChoice(sub_accuracy=1, iterations=2).describe()


class TestVPlanValidation:
    def test_missing_slot_rejected(self):
        table = {(1, 0): DirectChoice()}
        with pytest.raises(ValueError, match="missing choice"):
            TunedVPlan(accuracies=(1e1, 1e3), max_level=1, table=table)

    def test_level1_cannot_recurse(self):
        table = {(1, 0): RecurseChoice(sub_accuracy=0, iterations=1)}
        with pytest.raises(ValueError, match="cannot recurse"):
            TunedVPlan(accuracies=(1e1,), max_level=1, table=table)

    def test_estimate_rejected_in_vplan(self):
        table = {
            (1, 0): DirectChoice(),
            (2, 0): EstimateChoice(0, SORChoice(iterations=1)),
        }
        with pytest.raises(ValueError, match="EstimateChoice"):
            TunedVPlan(accuracies=(1e1,), max_level=2, table=table)

    def test_unsorted_accuracies_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            TunedVPlan(
                accuracies=(1e3, 1e1),
                max_level=1,
                table={(1, 0): DirectChoice(), (1, 1): DirectChoice()},
            )

    def test_sub_accuracy_out_of_range(self):
        table = {
            (1, 0): DirectChoice(),
            (2, 0): RecurseChoice(sub_accuracy=5, iterations=1),
        }
        with pytest.raises(ValueError, match="out of range"):
            TunedVPlan(accuracies=(1e1,), max_level=2, table=table)

    def test_zero_iteration_slot_rejected(self):
        table = {(1, 0): DirectChoice(), (2, 0): SORChoice(iterations=0)}
        with pytest.raises(ValueError, match=">= 1 iteration"):
            TunedVPlan(accuracies=(1e1,), max_level=2, table=table)


class TestVPlanPricing:
    def test_accuracy_index(self):
        plan = tiny_vplan()
        assert plan.accuracy_index(5.0) == 0
        assert plan.accuracy_index(1e1) == 0
        assert plan.accuracy_index(1e2) == 1
        with pytest.raises(ValueError):
            plan.accuracy_index(1e6)

    def test_unit_meter_direct(self):
        plan = tiny_vplan()
        m = plan.unit_meter(1, 0)
        assert m.counts == {("direct", 3): 1}

    def test_unit_meter_sor(self):
        plan = tiny_vplan()
        assert plan.unit_meter(2, 0).counts == {("relax", 5): 5}

    def test_unit_meter_recurse_composition(self):
        plan = tiny_vplan()
        # (3,0): 2 iterations of [wrapper@9 + plan(2,1)=direct@5].
        m = plan.unit_meter(3, 0)
        expected = OpMeter()
        wrapper = recurse_wrapper_meter(9)
        wrapper.charge("direct", 5)
        expected.merge(wrapper, times=2)
        assert m == expected

    def test_time_on_positive_and_additive(self):
        plan = tiny_vplan()
        t = plan.time_on(INTEL_HARPERTOWN, 3, 1)
        assert t > 0
        assert t == pytest.approx(
            INTEL_HARPERTOWN.price(plan.unit_meter(3, 1))
        )

    def test_meter_memoized(self):
        plan = tiny_vplan()
        assert plan.unit_meter(3, 0) is plan.unit_meter(3, 0)
        plan.invalidate_pricing_cache()
        assert plan.unit_meter(3, 0) is not None


class TestFullMGPlan:
    def test_requires_matching_ladder(self):
        vplan = tiny_vplan()
        table = {(1, 0): DirectChoice(), (1, 1): DirectChoice()}
        with pytest.raises(ValueError, match="ladder"):
            TunedFullMGPlan(
                accuracies=(1e2, 1e4), max_level=1, table=table, vplan=vplan
            )

    def test_unit_meter_estimate(self):
        vplan = tiny_vplan()
        table = {
            (1, 0): DirectChoice(),
            (1, 1): DirectChoice(),
            (2, 0): EstimateChoice(0, SORChoice(iterations=3)),
            (2, 1): DirectChoice(),
        }
        plan = TunedFullMGPlan(
            accuracies=(1e1, 1e3), max_level=2, table=table, vplan=vplan
        )
        m = plan.unit_meter(2, 0)
        expected = OpMeter()
        expected.charge("residual", 5)
        expected.charge("restrict", 5)
        expected.charge("direct", 3)  # recursive full-MG call at level 1
        expected.charge("interpolate", 5)
        expected.charge("relax", 5, 3)
        assert m == expected

    def test_recurse_solver_uses_vplan_meter(self):
        vplan = tiny_vplan()
        table = {
            (1, 0): DirectChoice(),
            (1, 1): DirectChoice(),
            (2, 0): DirectChoice(),
            (2, 1): DirectChoice(),
            (3, 0): EstimateChoice(
                0, RecurseChoice(sub_accuracy=1, iterations=2)
            ),
            (3, 1): DirectChoice(),
        }
        plan = TunedFullMGPlan(
            accuracies=(1e1, 1e3), max_level=3, table=table, vplan=vplan
        )
        m = plan.unit_meter(3, 0)
        # Solve phase: 2 x (wrapper@9 + vplan(2,1) = direct@5); the estimate
        # phase adds one more direct@5 via FULL-MULTIGRID_0 at level 2.
        assert m.counts[("relax", 9)] == 4
        assert m.counts[("direct", 5)] == 3
        assert m.counts[("residual", 9)] == 3  # 1 estimate + 2 recursions
