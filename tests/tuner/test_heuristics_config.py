"""Tests for heuristic strategies and config-file round trips."""

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.choices import DirectChoice, RecurseChoice, SORChoice
from repro.tuner.config import load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.tuner.heuristics import HeuristicStrategy, strategy_label, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData


@pytest.fixture(scope="module")
def heuristic_plan():
    training = TrainingData(distribution="unbiased", instances=2, seed=7)
    return tune_heuristic(
        HeuristicStrategy(sub_index=0, final_index=4),
        max_level=4,
        accuracies=DEFAULT_ACCURACIES,
        training=training,
        timing=CostModelTiming(INTEL_HARPERTOWN),
    )


class TestStrategyLabels:
    def test_mixed(self):
        assert strategy_label(1e3, 1e9) == "Strategy 10^3/10^9"

    def test_uniform(self):
        assert strategy_label(1e9, 1e9) == "Strategy 10^9"


class TestHeuristicTuning:
    def test_only_direct_and_fixed_recursion(self, heuristic_plan):
        for (level, _i), choice in heuristic_plan.table.items():
            assert not isinstance(choice, SORChoice)
            if isinstance(choice, RecurseChoice):
                assert choice.sub_accuracy == 0

    def test_metadata_label(self, heuristic_plan):
        assert heuristic_plan.metadata["heuristic"] == "Strategy 10^1/10^9"

    def test_never_faster_than_autotuner(self, heuristic_plan, shared_training):
        from repro.tuner.dp import VCycleTuner

        auto = VCycleTuner(
            max_level=4,
            training=shared_training,
            timing=CostModelTiming(INTEL_HARPERTOWN),
            keep_audit=False,
        ).tune()
        # The heuristic search space is a subset of the autotuner's.
        for i in range(len(DEFAULT_ACCURACIES)):
            th = heuristic_plan.time_on(INTEL_HARPERTOWN, 4, i)
            ta = auto.time_on(INTEL_HARPERTOWN, 4, i)
            assert ta <= th * 1.0001

    def test_forced_direct_cutoff(self):
        training = TrainingData(distribution="unbiased", instances=1, seed=7)
        plan = tune_heuristic(
            HeuristicStrategy(sub_index=4, final_index=4),
            max_level=4,
            accuracies=DEFAULT_ACCURACIES,
            training=training,
            timing=CostModelTiming(INTEL_HARPERTOWN),
            force_direct_max_level=3,
        )
        for level in (1, 2, 3):
            for i in range(5):
                assert plan.choice(level, i) == DirectChoice()

    def test_bad_indices_rejected(self, shared_training):
        with pytest.raises(ValueError):
            tune_heuristic(
                HeuristicStrategy(sub_index=9, final_index=4),
                max_level=3,
                accuracies=DEFAULT_ACCURACIES,
                training=shared_training,
                timing=CostModelTiming(INTEL_HARPERTOWN),
            )


class TestConfigFiles:
    def test_vplan_round_trip(self, tuned_plan, tmp_path):
        path = tmp_path / "v.json"
        save_plan(tuned_plan, path)
        loaded = load_plan(path)
        assert loaded.table == tuned_plan.table
        assert loaded.accuracies == tuned_plan.accuracies
        assert loaded.max_level == tuned_plan.max_level
        # Audit is in-memory only.
        assert "audit" not in loaded.metadata

    def test_fmg_round_trip(self, tuned_fmg_plan, tmp_path):
        path = tmp_path / "f.json"
        save_plan(tuned_fmg_plan, path)
        loaded = load_plan(path)
        assert loaded.table == tuned_fmg_plan.table
        assert loaded.vplan.table == tuned_fmg_plan.vplan.table

    def test_loaded_plan_executes(self, tuned_plan, tmp_path):
        from repro.tuner.executor import PlanExecutor
        from repro.workloads.distributions import make_problem

        path = tmp_path / "v.json"
        save_plan(tuned_plan, path)
        loaded = load_plan(path)
        problem = make_problem("unbiased", 33, seed=401)
        x = problem.initial_guess()
        PlanExecutor().run_v(loaded, x, problem.b, 2)
        assert x is not None

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            plan_from_dict({"format": "v0", "kind": "multigrid-v"})

    def test_bad_kind_rejected(self, tuned_plan):
        data = plan_to_dict(tuned_plan)
        data["kind"] = "wcycle"
        with pytest.raises(ValueError, match="kind"):
            plan_from_dict(data)

    def test_not_a_plan_rejected(self):
        with pytest.raises(TypeError):
            plan_to_dict({"not": "a plan"})
