"""Tests for the full Pareto DP (section 2.2)."""

import math

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.linalg.direct import DirectSolver
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.pareto import (
    ParetoAlgorithm,
    ParetoPoint,
    ParetoTuner,
    pareto_front,
)
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


def P(seconds: float, accuracy: float) -> ParetoPoint:
    return ParetoPoint(ParetoAlgorithm(kind="direct"), seconds, accuracy)


class TestParetoFront:
    def test_removes_dominated(self):
        pts = [P(1.0, 10.0), P(2.0, 5.0), P(0.5, 20.0)]
        front = pareto_front(pts)
        # (0.5, 20) dominates everything else.
        assert len(front) == 1
        assert front[0].seconds == 0.5

    def test_keeps_tradeoff_curve(self):
        pts = [P(1.0, 10.0), P(2.0, 100.0), P(3.0, 1000.0)]
        front = pareto_front(pts)
        assert len(front) == 3
        assert [p.seconds for p in front] == [1.0, 2.0, 3.0]

    def test_cap_keeps_endpoints(self):
        pts = [P(float(i), 10.0**i) for i in range(1, 11)]
        front = pareto_front(pts, max_size=4)
        assert len(front) <= 4
        assert front[0].seconds == 1.0
        assert front[-1].seconds == 10.0

    def test_empty_ok(self):
        assert pareto_front([]) == []

    def test_front_is_nondominated(self):
        import itertools

        pts = [P(1.0, 10), P(1.5, 8), P(2.0, 50), P(2.5, 40), P(3.0, 60)]
        front = pareto_front(pts)
        for a, b in itertools.permutations(front, 2):
            assert not (a.seconds <= b.seconds and a.accuracy >= b.accuracy)


class TestParetoAlgorithm:
    def test_meter_composition(self):
        child = ParetoAlgorithm(kind="direct")
        algo = ParetoAlgorithm(kind="recurse", iterations=2, child=child)
        m = algo.meter(9)
        assert m.counts[("relax", 9)] == 4
        assert m.counts[("direct", 5)] == 2

    def test_execute_direct_exact(self):
        problem = make_problem("unbiased", 9, seed=501)
        x = problem.initial_guess()
        ParetoAlgorithm(kind="direct").execute(x, problem.b, DirectSolver())
        cache = ReferenceSolutionCache()
        judge = AccuracyJudge(problem.initial_guess(), cache.get(problem))
        assert judge.accuracy_of(x) > 1e10

    def test_describe(self):
        child = ParetoAlgorithm(kind="sor", iterations=3)
        algo = ParetoAlgorithm(kind="recurse", iterations=2, child=child)
        assert "sor^3" in algo.describe()


class TestParetoTuner:
    @pytest.fixture(scope="class")
    def sets(self):
        tuner = ParetoTuner(
            max_level=3,
            training=TrainingData(distribution="unbiased", instances=2, seed=9),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            max_set_size=8,
            max_sor_iters=24,
            max_recurse_iters=3,
        )
        return tuner.tune()

    def test_base_level_single_direct(self, sets):
        assert len(sets[1]) == 1
        assert sets[1][0].algorithm.kind == "direct"
        assert sets[1][0].accuracy == math.inf

    def test_sets_capped(self, sets):
        for level, front in sets.items():
            assert len(front) <= 8, f"level {level} front too large"

    def test_fronts_sorted_and_nondominated(self, sets):
        for front in sets.values():
            times = [p.seconds for p in front]
            accs = [p.accuracy for p in front]
            assert times == sorted(times)
            assert accs == sorted(accs)

    def test_members_reproduce_claimed_accuracy(self, sets):
        # Execute a front member on the training distribution and check the
        # measured accuracy is in the ballpark of the recorded worst case.
        problem = make_problem("unbiased", 9, seed=9_007)
        cache = ReferenceSolutionCache()
        x_opt = cache.get(problem)
        for point in sets[3][:4]:
            if not math.isfinite(point.accuracy):
                continue
            x = problem.initial_guess()
            judge = AccuracyJudge(x, x_opt)
            point.algorithm.execute(x, problem.b, DirectSolver())
            assert judge.accuracy_of(x) >= 0.2 * point.accuracy
