"""Tests for plan execution: semantics, metering, tracing."""

import numpy as np
import pytest

from repro.linalg.direct import DirectSolver
from repro.machines.meter import OpMeter
from repro.relax.sor import sor_redblack
from repro.relax.weights import omega_opt
from repro.tuner.choices import DirectChoice, SORChoice
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedVPlan
from repro.tuner.trace import Trace
from repro.workloads.distributions import make_problem
from tests.tuner.test_choices_plan import tiny_vplan


@pytest.fixture()
def problem9():
    return make_problem("unbiased", 9, seed=71)


class TestExecutionSemantics:
    def test_direct_slot_equals_direct_solver(self, problem9):
        plan = TunedVPlan(
            accuracies=(1e1,), max_level=3, table={
                (1, 0): DirectChoice(),
                (2, 0): DirectChoice(),
                (3, 0): DirectChoice(),
            },
        )
        x = problem9.initial_guess()
        PlanExecutor().run_v(plan, x, problem9.b, 0)
        expected = problem9.initial_guess()
        DirectSolver().solve(expected, problem9.b)
        np.testing.assert_allclose(x, expected, rtol=1e-12)

    def test_sor_slot_equals_sor_sweeps(self, problem9):
        plan = TunedVPlan(
            accuracies=(1e1,), max_level=3, table={
                (1, 0): DirectChoice(),
                (2, 0): DirectChoice(),
                (3, 0): SORChoice(iterations=4),
            },
        )
        x = problem9.initial_guess()
        PlanExecutor().run_v(plan, x, problem9.b, 0)
        expected = problem9.initial_guess()
        sor_redblack(expected, problem9.b, omega_opt(9), 4)
        np.testing.assert_allclose(x, expected, rtol=1e-12)

    def test_recurse_slot_matches_manual_composition(self, problem9):
        plan = tiny_vplan()
        x = problem9.initial_guess()
        PlanExecutor().run_v(plan, x, problem9.b, 1)
        # Manual: 3 iterations of [SOR(1.15), restrict residual, solve
        # coarse with plan (2,0)=SOR(w_opt)x5, interpolate, SOR(1.15)].
        from repro.grids.poisson import residual
        from repro.grids.transfer import interpolate_correction, restrict_full_weighting

        y = problem9.initial_guess()
        for _ in range(3):
            sor_redblack(y, problem9.b, 1.15, 1)
            rc = restrict_full_weighting(residual(y, problem9.b))
            ec = np.zeros_like(rc)
            sor_redblack(ec, rc, omega_opt(5), 5)
            interpolate_correction(y, ec)
            sor_redblack(y, problem9.b, 1.15, 1)
        np.testing.assert_allclose(x, y, rtol=1e-10)

    def test_level_above_plan_rejected(self, problem9):
        plan = tiny_vplan()
        big = make_problem("unbiased", 33, seed=72)
        with pytest.raises(ValueError, match="tuned up to level"):
            PlanExecutor().run_v(plan, big.initial_guess(), big.b, 0)


class TestMeterInvariant:
    def test_executor_meter_equals_analytic_unit_meter(self, problem9, tuned_plan):
        # Fundamental pricing invariant: the ops actually executed match
        # the analytic composition used for candidate timing.
        for acc_index in range(tuned_plan.num_accuracies):
            problem = make_problem("unbiased", 33, seed=73 + acc_index)
            meter = OpMeter()
            x = problem.initial_guess()
            PlanExecutor().run_v(tuned_plan, x, problem.b, acc_index, meter)
            assert meter == tuned_plan.unit_meter(5, acc_index)

    def test_fmg_meter_invariant(self, tuned_fmg_plan):
        for acc_index in range(tuned_fmg_plan.num_accuracies):
            problem = make_problem("unbiased", 33, seed=80 + acc_index)
            meter = OpMeter()
            x = problem.initial_guess()
            PlanExecutor().run_full_mg(tuned_fmg_plan, x, problem.b, acc_index, meter)
            assert meter == tuned_fmg_plan.unit_meter(5, acc_index)


class TestTracing:
    def test_trace_balanced_and_leveled(self, problem9):
        plan = tiny_vplan()
        trace = Trace()
        x = problem9.initial_guess()
        PlanExecutor().run_v(plan, x, problem9.b, 1, trace=trace)
        enters = trace.counts("enter")
        exits = trace.counts("exit")
        assert enters == exits > 0
        assert trace.counts("descend") == trace.counts("ascend") == 3
        assert trace.events[0].kind == "enter"
        assert trace.events[0].level == 3

    def test_trace_sor_detail_carries_sweeps(self, problem9):
        plan = TunedVPlan(
            accuracies=(1e1,), max_level=3, table={
                (1, 0): DirectChoice(),
                (2, 0): DirectChoice(),
                (3, 0): SORChoice(iterations=6),
            },
        )
        trace = Trace()
        PlanExecutor().run_v(plan, problem9.initial_guess(), problem9.b, 0, trace=trace)
        sor_events = [e for e in trace if e.kind == "sor"]
        assert len(sor_events) == 1
        assert sor_events[0].detail == 6

    def test_min_level(self, problem9):
        plan = tiny_vplan()
        trace = Trace()
        PlanExecutor().run_v(plan, problem9.initial_guess(), problem9.b, 1, trace=trace)
        assert trace.min_level() == 2  # (3,1) recurses into (2,0)=SOR
