"""3-D tuning end-to-end: convergence, DP plans, determinism, pricing.

Covers the acceptance bar of the dimension-general refactor:

* the standard V cycle on ``ConstCoeffPoisson3D`` contracts the residual
  by a measured factor <= 0.25 per cycle at level 5;
* the DP tuner produces executable, accuracy-meeting 3-D plans whose
  meters use the 3-D op vocabulary;
* parallel (jobs=4) DP tuning selects byte-identical 3-D plans;
* the tuned plan never prices worse than the paper's fixed heuristic on
  the same cost model (the tuned-vs-heuristic gate `bench_3d` enforces
  in CI, asserted here at smoke scale).
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.api import autotune, autotune_full_mg, solve
from repro.grids.norms import residual_norm
from repro.machines.presets import get_preset
from repro.multigrid.cycles import vcycle
from repro.operators import shared_operator
from repro.tuner.config import plan_to_dict
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem


def _plan_hash(plan) -> str:
    payload = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class TestVCycleConvergence3D:
    def test_level5_convergence_factor_below_quarter(self):
        """Acceptance: measured factor <= 0.25 per V(1,1) cycle at level 5."""
        n = 33
        op = shared_operator("poisson3d", n)
        rng = np.random.default_rng(7)
        u = np.zeros((n,) * 3)
        b = rng.uniform(-1.0, 1.0, size=(n,) * 3)
        prev = residual_norm(op.residual(u, b))
        factors = []
        for _ in range(6):
            vcycle(u, b, operator=op)
            cur = residual_norm(op.residual(u, b))
            if cur == 0.0:
                break
            factors.append(cur / prev)
            prev = cur
        assert factors and max(factors) <= 0.25, factors

    def test_wcycle_and_fmg_also_contract(self):
        from repro.multigrid.cycles import full_multigrid_cycle, wcycle

        n = 17
        rng = np.random.default_rng(8)
        b = rng.uniform(-1.0, 1.0, size=(n,) * 3)
        op = shared_operator("poisson3d", n)
        for cycle in (wcycle, full_multigrid_cycle):
            u = np.zeros((n,) * 3)
            r0 = residual_norm(op.residual(u, b))
            cycle(u, b)
            assert residual_norm(op.residual(u, b)) < 0.2 * r0


class TestTunedPlans3D:
    @pytest.fixture(scope="class")
    def vplan(self):
        return autotune(max_level=4, instances=2, seed=0, operator="poisson3d")

    def test_plan_carries_ndim_and_operator(self, vplan):
        assert vplan.ndim == 3
        assert vplan.metadata["operator"] == "poisson3d"
        assert plan_to_dict(vplan)["ndim"] == 3

    def test_unit_meter_uses_3d_vocabulary(self, vplan):
        meter = vplan.unit_meter(4, vplan.num_accuracies - 1)
        ops = {op for (op, _n) in meter.counts}
        assert ops and all(op.endswith("3d") for op in ops)

    def test_solve_meets_every_ladder_accuracy(self, vplan):
        from repro.accuracy.judge import AccuracyJudge
        from repro.accuracy.reference import reference_solution

        problem = make_problem("unbiased", 17, seed=11, operator="poisson3d")
        judge = AccuracyJudge(problem.initial_guess(), reference_solution(problem))
        for target in vplan.accuracies:
            x, meter = solve(vplan, problem, target)
            assert judge.accuracy_of(x) >= target
        assert {op for (op, _n) in meter.counts} <= {
            "relax3d", "residual3d", "restrict3d", "interpolate3d", "direct3d",
        }

    def test_full_mg_tuner_builds_on_3d_vplan(self, vplan):
        fmg = autotune_full_mg(
            max_level=4, instances=2, seed=0, operator="poisson3d", vplan=vplan
        )
        assert fmg.ndim == 3
        problem = make_problem("unbiased", 17, seed=3, operator="poisson3d")
        x, _ = solve(fmg, problem, 1e5)
        assert x.shape == (17, 17, 17)

    def test_solve_rejects_dimension_mismatched_problem(self, vplan):
        problem = make_problem("unbiased", 17, seed=1)  # 2-D poisson
        with pytest.raises(ValueError, match="operator"):
            solve(vplan, problem, 1e5)

    def test_anisotropic3d_gets_its_own_distinct_plan(self):
        iso = autotune(max_level=3, instances=1, seed=0, operator="poisson3d")
        aniso = autotune(
            max_level=3, instances=1, seed=0, operator="anisotropic3d(epsx=0.01)"
        )
        assert aniso.metadata["operator"] == "anisotropic3d(epsx=0.01)"
        assert _plan_hash(iso) != _plan_hash(aniso)


class TestDeterminism3D:
    def test_parallel_dp_selects_byte_identical_plan(self):
        """jobs=1 vs jobs=4 golden-hash equality for a 3-D tune."""
        serial = autotune(max_level=3, instances=1, seed=0, operator="poisson3d")
        parallel = autotune(
            max_level=3, instances=1, seed=0, operator="poisson3d", jobs=4
        )
        assert _plan_hash(serial) == _plan_hash(parallel)

    def test_repeated_serial_tunes_are_identical(self):
        a = autotune(max_level=3, instances=1, seed=0, operator="anisotropic3d")
        b = autotune(max_level=3, instances=1, seed=0, operator="anisotropic3d")
        assert _plan_hash(a) == _plan_hash(b)

    def test_pareto_ablation_tuner_refuses_3d_operators(self):
        # The full-DP ablation runs raw 2-D kernels; it must fail loudly
        # rather than misprice n**3 work with 2-D op shapes.
        from repro.tuner.pareto import ParetoTuner

        with pytest.raises(ValueError, match="2-D"):
            ParetoTuner(max_level=2, training=TrainingData(operator="poisson3d"))


class TestTunedBeatsHeuristic3D:
    def test_tuned_plan_never_prices_worse_than_fixed_heuristic(self):
        from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
        from repro.tuner.plan import DEFAULT_ACCURACIES

        profile = get_preset("intel")
        level = 4
        training = TrainingData(
            distribution="unbiased", instances=2, seed=0, operator="poisson3d"
        )
        tuned = autotune(
            max_level=level, machine=profile, instances=2, seed=0,
            operator="poisson3d",
        )
        final = len(DEFAULT_ACCURACIES) - 1
        heuristic = tune_heuristic(
            HeuristicStrategy(sub_index=final, final_index=final),
            max_level=level,
            accuracies=DEFAULT_ACCURACIES,
            training=training,
            timing=CostModelTiming(profile),
        )
        assert heuristic.ndim == 3
        for i in range(len(DEFAULT_ACCURACIES)):
            tuned_cost = tuned.time_on(profile, level, i)
            heuristic_cost = heuristic.time_on(profile, level, i)
            assert tuned_cost <= heuristic_cost * (1.0 + 1e-9)
