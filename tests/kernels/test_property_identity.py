"""Hypothesis property: smoother byte-identity across backends.

The byte-identity contract (see :mod:`repro.kernels.base`) is not a
statement about a few golden inputs — it must hold for *any* grid data.
Hypothesis drives random seeds, levels, sweep counts, and operator
families through every available accelerated backend and requires the
smoothed grids, residuals, and transfers to equal the NumPy reference
bit for bit (``np.array_equal``, not ``allclose``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import BACKEND_PRIORITY, available_backends, get_backend
from repro.operators.spec import shared_operator
from repro.util.validation import size_of_level

ACCELERATED = tuple(
    n for n in available_backends() if n != "numpy"
)

OPERATORS = [
    "poisson",
    "anisotropic(epsilon=0.01)",
    "varcoeff(field=bump,amplitude=4.0)",
]

if not ACCELERATED:  # pragma: no cover - host without any accelerated backend
    pytest.skip(
        "no accelerated backend available on this host",
        allow_module_level=True,
    )


@pytest.fixture(scope="module", autouse=True)
def _warm_backends():
    for name in ACCELERATED:
        get_backend(name).warmup()


def _random_grids(n: int, ndim: int, seed: int):
    rng = np.random.default_rng(seed)
    shape = (n,) * ndim
    return rng.uniform(-10.0, 10.0, size=shape), rng.uniform(-10.0, 10.0, size=shape)


class TestSmootherIdentity:
    @pytest.mark.parametrize("backend_name", ACCELERATED)
    @pytest.mark.parametrize("operator", OPERATORS)
    @given(
        seed=st.integers(0, 10_000),
        level=st.integers(2, 5),
        sweeps=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_sor_sweeps_match_numpy(self, backend_name, operator, seed, level, sweeps):
        op = shared_operator(operator, size_of_level(level))
        backend = get_backend(backend_name)
        fast = backend.bind(op)
        if fast is None:
            pytest.skip(f"{backend_name} does not bind {operator}")
        ref = get_backend("numpy").bind(op)
        u0, b = _random_grids(op.n, op.ndim, seed)
        omega = op.omega_opt()
        u_ref, u_fast = u0.copy(), u0.copy()
        ref.sor_sweeps(u_ref, b, omega, sweeps)
        fast.sor_sweeps(u_fast, b, omega, sweeps)
        assert np.array_equal(u_ref, u_fast)

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    @given(seed=st.integers(0, 10_000), level=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_residual_and_transfers_match_numpy(self, backend_name, seed, level):
        op = shared_operator("poisson", size_of_level(level))
        backend = get_backend(backend_name)
        fast = backend.bind(op)
        if fast is None:
            pytest.skip(f"{backend_name} does not bind poisson")
        ref = get_backend("numpy").bind(op)
        u, b = _random_grids(op.n, op.ndim, seed)
        r_ref, r_fast = ref.residual(u, b), fast.residual(u, b)
        assert np.array_equal(r_ref, r_fast)
        assert np.array_equal(ref.restrict(r_ref), fast.restrict(r_fast))
        u_ref, u_fast = u.copy(), u.copy()
        coarse = ref.restrict(r_ref)
        ref.interpolate_correction(u_ref, coarse)
        fast.interpolate_correction(u_fast, coarse)
        assert np.array_equal(u_ref, u_fast)

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    @given(seed=st.integers(0, 10_000), sweeps=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_jacobi_matches_numpy_3d(self, backend_name, seed, sweeps):
        op = shared_operator("poisson3d", 9)
        backend = get_backend(backend_name)
        fast = backend.bind(op)
        if fast is None:
            pytest.skip(f"{backend_name} does not bind poisson3d")
        ref = get_backend("numpy").bind(op)
        u0, b = _random_grids(op.n, op.ndim, seed)
        omega = op.omega_opt()
        u_ref, u_fast = u0.copy(), u0.copy()
        ref.jacobi_sweeps(u_ref, b, omega, sweeps)
        fast.jacobi_sweeps(u_fast, b, omega, sweeps)
        assert np.array_equal(u_ref, u_fast)


def test_every_registered_backend_is_exercised_or_skipped():
    """Self-check: the module-level skip plus per-parameter skips cover
    exactly the registered accelerated backends."""
    assert set(ACCELERATED) <= set(BACKEND_PRIORITY)
