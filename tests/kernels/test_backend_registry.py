"""Backend registry: naming, resolution, availability, provenance."""

import pytest

from repro.kernels import (
    BACKEND_PRIORITY,
    KernelBackend,
    available_backends,
    backend_names,
    backend_provenance,
    get_backend,
    resolve_backend,
)
from repro.operators.spec import shared_operator


class TestGetBackend:
    def test_known_names_resolve(self):
        for name in BACKEND_PRIORITY:
            backend = get_backend(name)
            assert backend.name == name
            assert isinstance(backend, KernelBackend)

    def test_unknown_name_fails_loudly(self):
        # Backend names are store keyfields: a typo must never silently
        # tune against the wrong backend.
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_auto_is_not_a_backend(self):
        with pytest.raises(ValueError):
            get_backend("auto")

    def test_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestResolveBackend:
    def test_auto_resolves_to_an_available_backend(self):
        name = resolve_backend("auto")
        assert name in BACKEND_PRIORITY
        assert get_backend(name).available()

    def test_auto_prefers_the_fastest_available(self):
        assert resolve_backend("auto") == available_backends()[0]

    def test_explicit_name_is_kept_verbatim(self):
        # Plans are routinely tuned for machines the tuner is not
        # running on, so an explicit request survives resolution even
        # when this host cannot execute it.
        for name in BACKEND_PRIORITY:
            assert resolve_backend(name) == name

    def test_unknown_explicit_name_fails(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")


class TestAvailability:
    def test_numpy_is_always_available(self):
        assert get_backend("numpy").available()
        assert "numpy" in available_backends()

    def test_available_backends_in_priority_order(self):
        names = available_backends()
        assert names[-1] == "numpy"
        priorities = [BACKEND_PRIORITY.index(n) for n in names]
        assert priorities == sorted(priorities)

    def test_backend_names_lists_every_backend(self):
        assert backend_names() == BACKEND_PRIORITY

    def test_unavailable_backend_binds_none(self):
        op = shared_operator("poisson", 9)
        for name in BACKEND_PRIORITY:
            backend = get_backend(name)
            if not backend.available():
                assert backend.bind(op) is None


class TestProvenance:
    def test_named_provenance_shape(self):
        record = backend_provenance("numpy")
        assert record["backend"] == "numpy"
        assert record["available"] is True
        assert "numpy" in record["detail"]

    def test_summary_lists_all_backends(self):
        record = backend_provenance()
        assert record["auto"] == resolve_backend("auto")
        assert [r["backend"] for r in record["backends"]] == list(BACKEND_PRIORITY)

    def test_auto_provenance_is_the_resolved_backend(self):
        assert backend_provenance("auto")["backend"] == resolve_backend("auto")


class TestBinding:
    def test_numpy_binds_every_family(self):
        ref = get_backend("numpy")
        for spec, n in [("poisson", 9), ("anisotropic(epsilon=0.01)", 9),
                        ("varcoeff(field=bump,amplitude=4.0)", 9),
                        ("poisson3d", 9)]:
            op = shared_operator(spec, n)
            assert ref.supports(op)
            kernels = ref.bind(op)
            assert kernels is not None and kernels.backend == "numpy"

    def test_warmup_is_idempotent(self):
        for name in available_backends():
            backend = get_backend(name)
            backend.warmup()
            backend.warmup()
            assert backend.available()
