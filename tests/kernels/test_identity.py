"""Byte-identity gate: accelerated backends vs the NumPy reference.

Two layers of protection:

* **Golden hashes** pin the NumPy reference outputs for fixed inputs,
  so the ground truth itself cannot drift silently.  Like the golden
  hashes in ``tests/operators/test_operator_identity.py`` they assume
  the linux/x86-64 toolchain CI uses; the kernels are pure
  slicing/elementwise NumPy (no BLAS), so they are stable in practice.
* **Cross-backend equality** asserts every *available* accelerated
  backend reproduces those same bytes, kernel by kernel, and that a
  whole tuned plan executed with accelerated levels returns the same
  solution bytes as its all-NumPy twin — serial and with jobs=4.

Backends that cannot run here (e.g. numba without the package) are
skipped per-parameter, so the suite passes on any host while checking
everything the host can check.
"""

import hashlib

import numpy as np
import pytest

from repro.core.api import autotune
from repro.kernels import BACKEND_PRIORITY, get_backend
from repro.operators.spec import shared_operator
from repro.tuner.config import plan_to_dict
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedVPlan
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

# sha256 of the NumPy reference outputs for the fixed inputs built by
# _kernel_outputs below (seed 2009, n=33 in 2-D / 17 in 3-D).
GOLDEN = {
    "poisson": {
        "sor": "25843abc14e35a688df7ff9f6ae5b3f99288f18d2cfd376ceed461125c68b365",
        "jacobi": "4bd4b7d02ecc1bbd1258d030d612945fa2545f3b55564db0f51fd8172401bd51",
        "residual": "ee31a8917a2b71283ffde23af354f903d39a2d2c48a34d5857a3c1913e87014a",
        "restrict": "21434fa32de3b20fbff253469f98f3b6c1ac45a9db4cdc219360707e4ebe3f29",
        "interpolate": "557eef6a79bd64fa42b32d7b49601481d352af5d7a53b842d68b6527ada17305",
    },
    "anisotropic(epsilon=0.01)": {
        "sor": "873c05159808505942690a57bf00033cb5aa187269c4bbd65ec26e205a279050",
        "jacobi": "edba5423c7e30a4ce4239570eadc3095a0207396a3730eb0205f154e7c2dbbdf",
        "residual": "fc0473f783088de6708b43f021a83f644ad99385e3cbaecebb2ab121c8aa4349",
        "restrict": "ec2833fd0cba5096199af2c3587877f26faaac307008363fa9abe8b6154b18f7",
        "interpolate": "b39564a038f91d9c294233dc88a62bf25b106b67159bde9b67fd03a3d350d0da",
    },
    "varcoeff(field=bump,amplitude=4.0)": {
        "sor": "a973d04782c745ef36c77558cdaf8391aca4f89ad8c612833eefaec17251a8fe",
        "jacobi": "2ddf607baef1c27ab04440dd9b2f2be79c3671a25f1a4185b8db1be3d343ce94",
        "residual": "59e9fad60cb264845c86d32a574d7c2b22a6f08349cf370d61c7ca1f0bf13487",
        "restrict": "f9b36cf6d8dfd093afe953d314acb9a5ac35c969f49a66cbc763425101ad5755",
        "interpolate": "006d51ff41e9765283853f7e804144bba4b5510f7254441bbc5e57cd729d6539",
    },
    "poisson3d": {
        "sor": "0f4604f170712e3d8eb94dab4b1536ca72868b6c3ee5b8303870b9a66eac1075",
        "jacobi": "8123370df85309deb65735a23963fa40e39efde6432db973ee6625e4091b15ed",
        "residual": "a35b91721af1ecef166a6816253c7000966db487065e9c939fafecd604bd4084",
        "restrict": "2f5bab6327d87d473c36ffa9a12078c7787a6b411314ce7a2905a5a644807735",
        "interpolate": "30360bfa636b17bdd836d366a126d448dee828c3435a9b9b5b32da9a27ff5c69",
    },
}

ACCELERATED = tuple(n for n in BACKEND_PRIORITY if n != "numpy")


def _sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _available(name: str):
    backend = get_backend(name)
    if not backend.available():
        pytest.skip(f"backend {name!r} is unavailable on this host")
    backend.warmup()
    return backend


def _kernel_outputs(kernels, op) -> dict[str, np.ndarray]:
    """Every kernel's output for the fixed deterministic inputs."""
    n = op.n
    rng = np.random.default_rng(2009)
    shape = (n,) * op.ndim
    u0 = rng.uniform(-1.0, 1.0, size=shape)
    b = rng.uniform(-1.0, 1.0, size=shape)
    omega = op.omega_opt()
    u_sor = u0.copy()
    kernels.sor_sweeps(u_sor, b, omega, 2)
    u_jac = u0.copy()
    kernels.jacobi_sweeps(u_jac, b, omega, 2)
    r = kernels.residual(u0, b)
    c = kernels.restrict(r)
    u_int = u0.copy()
    kernels.interpolate_correction(u_int, c)
    return {
        "sor": u_sor,
        "jacobi": u_jac,
        "residual": r,
        "restrict": c,
        "interpolate": u_int,
    }


def _operator_for(spec: str):
    n = 17 if spec == "poisson3d" else 33
    return shared_operator(spec, n)


class TestGoldenHashes:
    @pytest.mark.parametrize("spec", sorted(GOLDEN))
    def test_numpy_reference_matches_golden(self, spec):
        """The ground truth itself must not drift."""
        op = _operator_for(spec)
        outputs = _kernel_outputs(get_backend("numpy").bind(op), op)
        hashes = {name: _sha(array) for name, array in outputs.items()}
        assert hashes == GOLDEN[spec]

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    @pytest.mark.parametrize("spec", sorted(GOLDEN))
    def test_accelerated_matches_golden(self, backend_name, spec):
        """Accelerated kernels hash to the same goldens, bit for bit."""
        backend = _available(backend_name)
        op = _operator_for(spec)
        if not backend.supports(op):
            pytest.skip(f"{backend_name} does not support {spec}")
        kernels = backend.bind(op)
        assert kernels is not None
        outputs = _kernel_outputs(kernels, op)
        hashes = {name: _sha(array) for name, array in outputs.items()}
        assert hashes == GOLDEN[spec]


class TestKernelIdentityAcrossSizes:
    """Hash-free equality at sizes the goldens do not cover (including
    the tiny grids where accelerated backends fall back internally)."""

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    @pytest.mark.parametrize("n", [5, 9, 65])
    def test_kernels_match_numpy(self, backend_name, n):
        backend = _available(backend_name)
        op = shared_operator("poisson", n)
        fast = backend.bind(op)
        if fast is None:
            pytest.skip(f"{backend_name} does not bind poisson at n={n}")
        ref_out = _kernel_outputs(get_backend("numpy").bind(op), op)
        fast_out = _kernel_outputs(fast, op)
        for name in ref_out:
            assert np.array_equal(ref_out[name], fast_out[name]), name


class TestPlanExecutionIdentity:
    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_accelerated_plan_matches_numpy_plan(self, backend_name):
        """A tuned plan with accelerated levels solves to the same bytes
        as its all-NumPy twin."""
        _available(backend_name)
        plan = autotune(max_level=6, machine="intel", distribution="unbiased",
                        instances=2, seed=0, backend=backend_name)
        assert plan.backends, "tuner should accelerate some level at L6"
        twin = TunedVPlan(
            accuracies=plan.accuracies,
            max_level=plan.max_level,
            table=plan.table,
            metadata={k: v for k, v in plan.metadata.items() if k != "backend"},
            ndim=plan.ndim,
        )
        problem = make_problem("unbiased", size_of_level(6), seed=3)
        solutions = []
        for p in (plan, twin):
            x = problem.initial_guess()
            PlanExecutor().run_v(p, x, problem.b, plan.num_accuracies - 1)
            solutions.append(x)
        assert np.array_equal(solutions[0], solutions[1])

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_parallel_tune_matches_serial(self, backend_name):
        """jobs=1 vs jobs=4 with the backend axis: identical plan JSON."""
        _available(backend_name)
        kwargs = dict(max_level=5, machine="intel", distribution="unbiased",
                      instances=2, seed=0, backend=backend_name)
        serial = autotune(**kwargs)
        parallel = autotune(jobs=4, **kwargs)
        assert plan_to_dict(serial) == plan_to_dict(parallel)
        assert serial.backends == parallel.backends

    def test_unavailable_backend_falls_back_to_numpy_numerics(self):
        """A plan recorded against a backend this host cannot bind must
        still execute — on numpy, with identical numerics."""
        plan = autotune(max_level=4, machine="intel", distribution="unbiased",
                        instances=2, seed=0)
        forced = TunedVPlan(
            accuracies=plan.accuracies,
            max_level=plan.max_level,
            table=plan.table,
            metadata=dict(plan.metadata),
            ndim=plan.ndim,
            backends={level: "numba" for level in range(2, 5)},
        )
        problem = make_problem("unbiased", size_of_level(4), seed=3)
        solutions = []
        for p in (plan, forced):
            x = problem.initial_guess()
            PlanExecutor().run_v(p, x, problem.b, plan.num_accuracies - 1)
            solutions.append(x)
        assert np.array_equal(solutions[0], solutions[1])
