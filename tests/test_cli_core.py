"""Tests for the CLI and the high-level core API."""

import pytest

from repro.cli import build_parser, main
from repro.core import (
    autotune,
    autotune_full_mg,
    poisson_problem,
    solve,
    solve_reference,
)


class TestCoreAPI:
    def test_autotune_and_solve(self):
        plan = autotune(max_level=4, machine="intel", instances=1, seed=3)
        problem = poisson_problem("unbiased", n=17, seed=99)
        x, meter = solve(plan, problem, 1e5)
        assert x.shape == (17, 17)
        assert meter.total("direct") + meter.total("relax") > 0

    def test_autotune_full_mg_reuses_vplan(self):
        vplan = autotune(max_level=3, instances=1, seed=3)
        fplan = autotune_full_mg(max_level=3, instances=1, seed=3, vplan=vplan)
        assert fplan.vplan is vplan

    def test_solve_rejects_oversize_problem(self):
        plan = autotune(max_level=3, instances=1, seed=3)
        problem = poisson_problem("unbiased", n=65, seed=1)
        with pytest.raises(ValueError, match="level"):
            solve(plan, problem, 1e1)

    @pytest.mark.parametrize("method", ["v", "full-mg", "sor"])
    def test_solve_reference(self, method):
        problem = poisson_problem("unbiased", n=17, seed=5)
        x, meter, iters = solve_reference(problem, 1e3, method)
        assert iters >= 1
        assert len(meter.counts) > 0


class TestCLI:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--max-level", "4"])
        assert args.experiment == "table1"
        assert args.max_level == 4

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_runs_table1(self, capsys):
        rc = main(["table1", "--max-level", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Multigrid" in out
        assert "fitted exponent" in out

    def test_main_runs_ablation_smoother(self, capsys):
        rc = main(["ablation-smoother"])
        assert rc == 0
        assert "smoother" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import _version

        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0
        out = capsys.readouterr().out
        assert _version() in out
        # Metadata-sourced or source-tree fallback, both are real versions.
        assert _version().count(".") >= 1 or _version() == __version__

    def test_version_flag_on_subcommand_parsers(self, capsys):
        for argv in (["store", "--version"], ["serve", "--version"]):
            with pytest.raises(SystemExit) as err:
                main(argv)
            assert err.value.code == 0
            assert "repro-mg" in capsys.readouterr().out


class TestServeCLI:
    def test_parse_warm_spec(self):
        from repro.cli import parse_warm_spec

        assert parse_warm_spec("unbiased:5") == ("unbiased", 5, None)
        assert parse_warm_spec("biased:4:anisotropic(epsilon=0.01)") == (
            "biased",
            4,
            "anisotropic(epsilon=0.01)",
        )
        with pytest.raises(ValueError, match="DIST:LEVEL"):
            parse_warm_spec("unbiased")

    def test_malformed_warm_spec_is_a_usage_error(self, capsys):
        for bad in ("unbiased", "unbiased:x"):
            with pytest.raises(SystemExit) as err:
                main(["serve", "warm", "--warm", bad])
            assert err.value.code == 2  # argparse usage error, no traceback
            capsys.readouterr()

    def test_serve_warm_mode(self, tmp_path, capsys):
        db = str(tmp_path / "serve.sqlite")
        rc = main(
            [
                "serve",
                "warm",
                "--db",
                db,
                "--warm",
                "unbiased:3",
                "--instances",
                "1",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "warmed unbiased:L3:poisson" in out
        assert '"warmed_keys": 1' in out

    def test_serve_bench_mode(self, tmp_path, capsys):
        db = str(tmp_path / "serve.sqlite")
        json_path = str(tmp_path / "telemetry.json")
        rc = main(
            [
                "serve",
                "bench",
                "--db",
                db,
                "--warm",
                "unbiased:3",
                "--requests",
                "8",
                "--clients",
                "2",
                "--instances",
                "1",
                "--seed",
                "3",
                "--json",
                json_path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        assert "latency p50/p95/p99" in out
        import json

        snapshot = json.loads(open(json_path).read())
        assert snapshot["counters"]["requests_completed"] == 8
