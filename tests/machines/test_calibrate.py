"""Tests for host-profile calibration (real microbenchmarks, kept tiny)."""

import pytest

from repro.machines.calibrate import calibrate_host_profile, measure_op_times
from repro.machines.meter import OpMeter


@pytest.fixture(scope="module")
def host_profile():
    # Small levels and few repeats: seconds, not minutes.
    return calibrate_host_profile(levels=(3, 4, 5), repeats=2)


class TestMeasure:
    def test_measures_all_ops(self):
        samples = measure_op_times(levels=(3, 4), repeats=1)
        for op in ("relax", "residual", "restrict", "interpolate", "direct"):
            assert samples[op], f"no samples for {op}"
            assert all(t >= 0.0 for _, t in samples[op])


class TestCalibratedProfile:
    def test_prices_positive_and_monotone(self, host_profile):
        t_small = host_profile.stencil_time("relax", 9)
        t_big = host_profile.stencil_time("relax", 129)
        assert 0.0 < t_small < t_big

    def test_direct_pricing_usable(self, host_profile):
        # The calibrated profile must not blow up the direct estimate
        # (regression for the normalized-bandwidth pitfall).
        t = host_profile.direct_time(33)
        assert 0.0 < t < 10.0

    def test_price_meter(self, host_profile):
        meter = OpMeter()
        meter.charge("relax", 33, 5)
        meter.charge("direct", 9)
        assert host_profile.price(meter) > 0.0

    def test_ballpark_against_wallclock(self, host_profile):
        # The fitted model should predict a relax sweep within an order of
        # magnitude of a fresh measurement (loose: shared CI machines).
        import numpy as np

        from repro.relax.sor import sor_redblack
        from repro.util.timing import median_time

        n = 65
        u = np.random.default_rng(0).standard_normal((n, n))
        b = np.random.default_rng(1).standard_normal((n, n))
        measured = median_time(lambda: sor_redblack(u, b, 1.15, 1), repeats=3)
        predicted = host_profile.stencil_time("relax", n)
        assert predicted / measured < 10.0
        assert measured / predicted < 10.0
