"""Tests for op metering."""

import pytest

from repro.machines.meter import NULL_METER, OpMeter


class TestOpMeter:
    def test_charge_and_total(self):
        m = OpMeter()
        m.charge("relax", 33, 3)
        m.charge("relax", 17)
        m.charge("direct", 3)
        assert m.total("relax") == 4
        assert m.total("direct") == 1
        assert m.counts[("relax", 33)] == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            OpMeter().charge("fft", 33)

    def test_zero_times_is_noop(self):
        m = OpMeter()
        m.charge("relax", 33, 0)
        assert len(m) == 0

    def test_merge(self):
        a = OpMeter()
        a.charge("relax", 33, 2)
        b = OpMeter()
        b.charge("relax", 33, 1)
        b.charge("restrict", 33)
        a.merge(b)
        assert a.counts[("relax", 33)] == 3
        assert a.counts[("restrict", 33)] == 1

    def test_merge_times(self):
        a = OpMeter()
        b = OpMeter()
        b.charge("relax", 17, 2)
        a.merge(b, times=5)
        assert a.counts[("relax", 17)] == 10

    def test_scaled_leaves_original(self):
        a = OpMeter()
        a.charge("direct", 9)
        s = a.scaled(4)
        assert s.counts[("direct", 9)] == 4
        assert a.counts[("direct", 9)] == 1

    def test_equality(self):
        a = OpMeter()
        b = OpMeter()
        a.charge("relax", 9)
        b.charge("relax", 9)
        assert a == b
        b.charge("norm", 9)
        assert a != b


class TestNullMeter:
    def test_discards_charges(self):
        NULL_METER.charge("relax", 33, 100)
        assert len(NULL_METER) == 0

    def test_still_validates_op_names(self):
        with pytest.raises(ValueError):
            NULL_METER.charge("bogus", 33)

    def test_merge_noop(self):
        src = OpMeter()
        src.charge("relax", 9)
        NULL_METER.merge(src)
        assert len(NULL_METER) == 0
