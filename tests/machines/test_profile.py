"""Tests for machine cost models and presets."""

import pytest

from repro.machines.meter import OpMeter
from repro.machines.presets import (
    AMD_BARCELONA,
    INTEL_HARPERTOWN,
    PRESETS,
    SUN_NIAGARA,
    get_preset,
)


class TestStencilPricing:
    def test_cost_grows_with_size(self, any_profile):
        times = [any_profile.stencil_time("relax", n) for n in (9, 17, 33, 65, 129)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_overhead_floors_small_sizes(self, any_profile):
        assert any_profile.stencil_time("norm", 3) >= any_profile.op_overhead

    def test_threads_do_not_slow_large_ops(self, any_profile):
        serial = any_profile.stencil_time("relax", 513, threads=1)
        parallel = any_profile.stencil_time("relax", 513, threads=any_profile.cores)
        assert parallel <= serial

    def test_tiny_grids_get_no_parallel_benefit(self, any_profile):
        serial = any_profile.stencil_time("relax", 5, threads=1)
        parallel = any_profile.stencil_time("relax", 5, threads=8)
        assert parallel == pytest.approx(serial, rel=0.05)

    def test_unknown_op_rejected(self, any_profile):
        with pytest.raises(KeyError):
            any_profile.stencil_time("fft", 9)


class TestDirectPricing:
    def test_quartic_growth(self, any_profile):
        # Doubling N should multiply the direct cost by roughly 16 once
        # overhead is negligible.
        t1 = any_profile.direct_time(129)
        t2 = any_profile.direct_time(257)
        assert 8.0 < t2 / t1 < 32.0

    def test_cached_cheaper(self, any_profile):
        assert any_profile.direct_time(65, cached=True) < any_profile.direct_time(65)

    def test_op_time_dispatch(self, any_profile):
        assert any_profile.op_time("direct", 33) == any_profile.direct_time(33)
        assert any_profile.op_time("direct_solve", 33) == any_profile.direct_time(
            33, cached=True
        )
        assert any_profile.op_time("relax", 33) == any_profile.stencil_time("relax", 33)


class TestPrice:
    def test_price_is_linear_in_counts(self, any_profile):
        m1 = OpMeter()
        m1.charge("relax", 33, 2)
        m2 = m1.scaled(3)
        assert any_profile.price(m2) == pytest.approx(3 * any_profile.price(m1))

    def test_price_sums_ops(self, any_profile):
        m = OpMeter()
        m.charge("relax", 33)
        m.charge("direct", 9)
        expected = any_profile.op_time("relax", 33) + any_profile.op_time("direct", 9)
        assert any_profile.price(m) == pytest.approx(expected)

    def test_with_threads_copy(self, any_profile):
        narrowed = any_profile.with_threads(2)
        assert narrowed.cores == 2
        assert narrowed.name != any_profile.name

    def test_with_threads_rejects_zero(self, any_profile):
        with pytest.raises(ValueError):
            any_profile.with_threads(0)


class TestPresets:
    def test_lookup(self):
        assert get_preset("intel") is INTEL_HARPERTOWN
        assert get_preset("amd-barcelona") is AMD_BARCELONA

    def test_host_preset_resolves(self):
        # The CLI help advertises --machine host; it must resolve.
        assert get_preset("host").name == "host-fallback"
        assert get_preset("host-fallback") is get_preset("host")

    def test_unknown_preset_raises_valueerror_listing_presets(self):
        with pytest.raises(ValueError) as exc:
            get_preset("cray")
        message = str(exc.value)
        assert "cray" in message
        for name in ("intel", "amd", "sun", "host"):
            assert name in message

    def test_registry_complete(self):
        assert {"intel", "amd", "sun", "host"} <= set(PRESETS)

    def test_architectural_contrast_dense_vs_stream(self):
        # The Niagara's weak FPU must make direct solves *relatively* more
        # expensive vs relaxation than on the Xeon — the mechanism behind
        # the different tuned cycles of Figure 14.
        n = 33
        intel_ratio = INTEL_HARPERTOWN.direct_time(n) / INTEL_HARPERTOWN.stencil_time(
            "relax", n
        )
        sun_ratio = SUN_NIAGARA.direct_time(n) / SUN_NIAGARA.stencil_time("relax", n)
        assert sun_ratio > 2.0 * intel_ratio

    def test_niagara_threads(self):
        assert SUN_NIAGARA.cores == 32
