"""The 3-D operator families and their identity plumbing."""

import numpy as np
import pytest

from repro.operators import (
    AnisotropicPoisson3D,
    ConstCoeffPoisson3D,
    const_poisson3d,
    default_operator_spec,
    make_operator,
    operator_families,
    parse_operator,
    shared_operator,
)


class TestFamilies:
    def test_families_registered_with_ndim(self):
        fams = operator_families()
        assert fams["poisson3d"].ndim == 3
        assert fams["anisotropic3d"].ndim == 3
        assert fams["poisson"].ndim == 2

    def test_spec_ndim_property(self):
        assert parse_operator("poisson3d").ndim == 3
        assert parse_operator("anisotropic3d(epsx=0.5)").ndim == 3
        assert parse_operator(None).ndim == 2

    def test_default_spec_per_ndim(self):
        assert default_operator_spec(2).canonical() == "poisson"
        assert default_operator_spec(3).canonical() == "poisson3d"
        with pytest.raises(ValueError):
            default_operator_spec(4)

    def test_canonical_drops_default_params(self):
        assert parse_operator("anisotropic3d(epsx=0.1,epsy=1.0)").canonical() == (
            "anisotropic3d"
        )
        assert parse_operator("anisotropic3d(epsy=0.5)").canonical() == (
            "anisotropic3d(epsy=0.5)"
        )

    def test_epsilon_validation(self):
        with pytest.raises(ValueError, match="epsx"):
            make_operator("anisotropic3d(epsx=0)", 9)
        with pytest.raises(ValueError, match="epsy"):
            make_operator("anisotropic3d(epsy=1.5)", 9)


class TestKernels:
    def test_shared_instance_and_coarsen_chain(self):
        op = shared_operator("poisson3d", 17)
        assert isinstance(op, ConstCoeffPoisson3D)
        assert op.ndim == 3 and op.coeffs == (1.0, 1.0, 1.0)
        assert op.coarsen() is shared_operator("poisson3d", 9)
        assert shared_operator("poisson3d", 17) is op

    def test_diagonal_value(self):
        op = const_poisson3d(9)
        h = 1.0 / 8.0
        np.testing.assert_allclose(op.diagonal(), 6.0 / h**2)
        aniso = make_operator("anisotropic3d(epsx=0.5,epsy=0.25)", 9)
        np.testing.assert_allclose(aniso.diagonal(), 2.0 * (0.5 + 0.25 + 1.0) / h**2)

    def test_direct_solve_solves_interior_exactly(self):
        op = make_operator("anisotropic3d(epsx=0.2)", 9)
        assert isinstance(op, AnisotropicPoisson3D)
        rng = np.random.default_rng(0)
        x = np.zeros((9,) * 3)
        x[0, :, :] = rng.standard_normal((9, 9))
        b = rng.standard_normal((9,) * 3)
        op.direct_solve(x, b)
        r = op.residual(x, b)
        assert float(np.abs(r[1:-1, 1:-1, 1:-1]).max()) < 1e-9

    def test_operator_rejects_wrong_shape(self):
        op = const_poisson3d(9)
        with pytest.raises(ValueError, match="ndim"):
            op.apply(np.zeros((9, 9)))
        with pytest.raises(ValueError, match="bound to n=9"):
            op.apply(np.zeros((17, 17, 17)))

    def test_legacy_direct_solver_is_ignored(self):
        # Passing the 2-D band solver must not break the 3-D solve.
        from repro.linalg.direct import DirectSolver

        op = const_poisson3d(5)
        x = np.zeros((5,) * 3)
        b = np.ones((5,) * 3)
        op.direct_solve(x, b, solver=DirectSolver())
        r = op.residual(x, b)
        assert float(np.abs(r[1:-1, 1:-1, 1:-1]).max()) < 1e-10


class TestIdentityPlumbing:
    def test_tune_key_derives_and_validates_ndim(self):
        from repro.store.registry import TuneKey

        assert TuneKey().ndim == 2
        assert TuneKey(operator="poisson3d").ndim == 3
        assert TuneKey(operator="poisson3d", ndim=3).ndim == 3
        with pytest.raises(ValueError, match="ndim=3"):
            TuneKey(operator="poisson", ndim=3)
        with pytest.raises(ValueError, match="ndim=2"):
            TuneKey(operator="anisotropic3d", ndim=2)

    def test_storage_keys_separate_dimensions(self):
        from repro.store.registry import TuneKey

        k2 = TuneKey(operator="poisson").storage_key("fp")
        k3 = TuneKey(operator="poisson3d").storage_key("fp")
        assert k2.endswith("|poisson|2|numpy")
        assert k3.endswith("|poisson3d|3|numpy")

    def test_serve_key_derives_and_validates_ndim(self):
        from repro.serve.cache import ServeKey

        key = ServeKey("fp", "poisson3d", 4, "unbiased")
        assert key.ndim == 3
        assert ServeKey("fp", "poisson", 4, "unbiased").ndim == 2
        with pytest.raises(ValueError, match="ndim=2"):
            ServeKey("fp", "poisson3d", 4, "unbiased", ndim=2)

    def test_problem_rejects_operator_dimension_mismatch(self):
        from repro.workloads.problem import PoissonProblem

        b = np.zeros((9, 9))
        boundary = np.zeros(4 * 9 - 4)
        with pytest.raises(ValueError, match="3-D"):
            PoissonProblem(b=b, boundary=boundary, operator="poisson3d")

    def test_training_data_exposes_ndim(self):
        from repro.tuner.training import TrainingData

        assert TrainingData().ndim == 2
        assert TrainingData(operator="poisson3d").ndim == 3

    def test_core_resolver_validates(self):
        from repro.core.api import poisson_problem

        with pytest.raises(ValueError, match="ndim=2"):
            poisson_problem(n=9, operator="poisson3d", ndim=2)
        p = poisson_problem(n=9, operator="anisotropic3d", ndim=3)
        assert p.ndim == 3
