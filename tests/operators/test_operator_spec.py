"""Operator specs: parsing, canonicalization, registry behaviour."""

import pickle

import pytest

from repro.operators import (
    POISSON,
    OperatorSpec,
    make_operator,
    operator_families,
    operator_spec,
    parse_operator,
    shared_operator,
)


class TestParsing:
    def test_none_is_default_poisson(self):
        spec = parse_operator(None)
        assert spec == POISSON
        assert spec.is_default_poisson
        assert spec.canonical() == "poisson"

    def test_bare_family_name(self):
        assert parse_operator("anisotropic").canonical() == "anisotropic"
        assert parse_operator("varcoeff").canonical() == "varcoeff"

    def test_params_round_trip_through_canonical(self):
        spec = parse_operator("anisotropic(epsilon=0.01)")
        assert spec.canonical() == "anisotropic(epsilon=0.01)"
        assert parse_operator(spec.canonical()) == spec

    def test_default_params_are_dropped(self):
        # epsilon=0.1 is the family default: spelling it out or not must
        # produce the same spec (and therefore the same storage key).
        assert parse_operator("anisotropic(epsilon=0.1)") == parse_operator("anisotropic")

    def test_params_sorted_for_stable_keys(self):
        a = parse_operator("varcoeff(field=bump,amplitude=4.0)")
        b = parse_operator("varcoeff(amplitude=4.0,field=bump)")
        assert a == b
        assert a.canonical() == "varcoeff(amplitude=4.0,field=bump)"

    def test_spec_input_is_renormalized(self):
        raw = OperatorSpec("anisotropic", (("epsilon", 0.1),))
        assert parse_operator(raw) == OperatorSpec("anisotropic", ())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown operator family"):
            parse_operator("helmholtz")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown param"):
            parse_operator("anisotropic(eps=0.5)")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="not k=v"):
            parse_operator("anisotropic(0.5)")

    def test_non_numeric_value_for_float_param_rejected(self):
        with pytest.raises(ValueError, match="float-like"):
            parse_operator("anisotropic(epsilon=tiny)")

    def test_int_param_coercion(self):
        assert parse_operator("varcoeff(kx=3)").param_dict()["kx"] == 3
        with pytest.raises(ValueError, match="int-like"):
            parse_operator("varcoeff(kx=2.5)")


class TestRegistry:
    def test_builtin_families_registered(self):
        families = operator_families()
        for name in ("poisson", "varcoeff", "anisotropic"):
            assert name in families

    def test_operator_spec_factory_validates(self):
        spec = operator_spec("anisotropic", epsilon=0.5)
        assert spec.canonical() == "anisotropic(epsilon=0.5)"

    def test_specs_are_picklable_and_hashable(self):
        spec = parse_operator("varcoeff(amplitude=2.0)")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, parse_operator("varcoeff(amplitude=2.0)")}) == 1


class TestInstantiation:
    def test_make_operator_binds_size(self):
        op = make_operator("anisotropic", 17)
        assert op.n == 17
        assert op.fingerprint() == "anisotropic"

    def test_shared_operator_memoizes(self):
        a = shared_operator("varcoeff(amplitude=2.0)", 17)
        b = shared_operator("varcoeff(amplitude=2.0)", 17)
        assert a is b

    def test_shared_default_poisson_is_module_instance(self):
        from repro.operators import const_poisson

        assert shared_operator(None, 17) is const_poisson(17)

    def test_coarsen_rediscretizes_same_spec(self):
        op = make_operator("varcoeff", 33)
        coarse = op.coarsen()
        assert coarse.n == 17
        assert coarse.spec == op.spec
        assert op.coarsen() is coarse  # cached

    def test_coarsen_routes_through_shared_cache(self):
        # Coarse hierarchies are shared with direct consumers of the
        # same (spec, size), so weight arrays and direct factorizations
        # exist once per process, not once per hierarchy walker.
        op = shared_operator("varcoeff(amplitude=2.0)", 33)
        assert op.coarsen() is shared_operator("varcoeff(amplitude=2.0)", 17)
