"""Default-path equivalence gate.

With the default (constant-coefficient Poisson) operator, the refactored
stack must produce *byte-identical* artifacts to the pre-operator-layer
code: identical tuned plan JSON (serial and jobs=4) and identical solver
output bytes.  The golden hashes below were captured by running the
pre-refactor code (PR 2 head) with exactly these inputs, on the same
linux/x86-64 toolchain CI uses.  They pin floating-point results, so a
different BLAS/LAPACK build may legitimately differ in the last ulp —
if that ever bites, the portable in-process invariants
(:class:`TestKernelDelegation`, serial-vs-jobs equality) are the ones
that must keep holding; the hashes would need recapturing from the
pre-refactor tree on the new platform.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.api import autotune, autotune_full_mg, solve
from repro.operators import const_poisson
from repro.tuner.config import plan_to_dict
from repro.workloads.distributions import make_problem

# Captured on the pre-refactor tree (see module docstring).
GOLDEN = {
    "vplan_l5_intel_unbiased": "4a66d3dd7f4da4aace31915ea1a7257527b1c200d4bb383629a255d2fe35560f",
    "fmg_l5_intel_unbiased": "8c4b8697359ead8985ee1ef464e7a28e4c98e3d58902469fdd7f00cc7bc20e95",
    "vplan_l4_amd_biased": "052eaa5357da55b2944c737217c207517d8c9acd8b19f4465bd1c5b2ed2716d8",
    "vplan_l6_intel_unbiased": "07bb6c87276f65bf0457ba2ee6ea4a395f33e5c24739aebb213e90a0a3add72a",
    "solve_l6_1e5": "b1e6e80716cff9c08085806dce3f31e7a5213b230f29972d65cd2c9c9deb3347",
    "solve_l6_1e9": "d5ec2278466b6838944c5528e32a45a8af1da537e862a47908a130b17a7d2739",
}


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _plan_hash(plan) -> str:
    payload = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    return _sha(payload.encode())


@pytest.fixture(scope="module")
def vplan_l5():
    return autotune(max_level=5, machine="intel", distribution="unbiased",
                    instances=2, seed=0)


@pytest.fixture(scope="module")
def vplan_l6():
    return autotune(max_level=6, machine="intel", distribution="unbiased",
                    instances=2, seed=0)


class TestTunedPlanBytes:
    def test_v_plan_serial_matches_pre_refactor(self, vplan_l5):
        assert _plan_hash(vplan_l5) == GOLDEN["vplan_l5_intel_unbiased"]

    def test_v_plan_parallel_matches_pre_refactor(self):
        plan = autotune(max_level=5, machine="intel", distribution="unbiased",
                        instances=2, seed=0, jobs=4)
        assert _plan_hash(plan) == GOLDEN["vplan_l5_intel_unbiased"]

    def test_full_mg_plan_matches_pre_refactor(self, vplan_l5):
        fmg = autotune_full_mg(max_level=5, machine="intel", distribution="unbiased",
                               instances=2, seed=0, vplan=vplan_l5)
        assert _plan_hash(fmg) == GOLDEN["fmg_l5_intel_unbiased"]

    def test_biased_amd_plan_matches_pre_refactor(self):
        plan = autotune(max_level=4, machine="amd", distribution="biased",
                        instances=2, seed=0)
        assert _plan_hash(plan) == GOLDEN["vplan_l4_amd_biased"]

    def test_level6_plan_matches_pre_refactor(self, vplan_l6):
        assert _plan_hash(vplan_l6) == GOLDEN["vplan_l6_intel_unbiased"]

    def test_default_plan_metadata_carries_no_operator_key(self, vplan_l5):
        # Pre-refactor plan JSON had no operator field; the default path
        # must keep it that way so stored registries stay byte-stable.
        assert "operator" not in vplan_l5.metadata


class TestSolverOutputBytes:
    def test_solve_outputs_match_pre_refactor(self, vplan_l6):
        problem = make_problem("unbiased", 65, seed=1)
        x5, _ = solve(vplan_l6, problem, 1e5)
        x9, _ = solve(vplan_l6, problem, 1e9)
        assert _sha(x5.tobytes()) == GOLDEN["solve_l6_1e5"]
        assert _sha(x9.tobytes()) == GOLDEN["solve_l6_1e9"]


class TestKernelDelegation:
    def test_poisson_operator_is_bytewise_legacy(self):
        from repro.grids.poisson import apply_poisson, residual
        from repro.relax.sor import sor_redblack

        n = 33
        op = const_poisson(n)
        rng = np.random.default_rng(0)
        u = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        assert (op.apply(u) == apply_poisson(u)).all()
        assert (op.residual(u, b) == residual(u, b)).all()
        u1, u2 = u.copy(), u.copy()
        op.sor_sweeps(u1, b, 1.15, 2)
        sor_redblack(u2, b, 1.15, 2)
        assert (u1 == u2).all()
