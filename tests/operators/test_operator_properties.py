"""Hypothesis property tests: smoothing and convergence per operator.

The load-bearing invariant for SOR smoothing on an SPD operator with
0 < omega < 2 is *monotone decrease of the energy norm of the error*
(Ostrowski-Reich); the residual 2-norm itself may wiggle for
over-relaxed sweeps, so the residual property is asserted cumulatively.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.norms import residual_norm
from repro.operators import make_operator, shared_operator

OPERATORS = [
    "poisson",
    "varcoeff",
    "varcoeff(field=bump,amplitude=4.0)",
    "anisotropic",
    "anisotropic(epsilon=0.01)",
]


def _problem(op, seed):
    rng = np.random.default_rng(seed)
    n = op.n
    x = np.zeros((n, n))
    x[0, :] = rng.uniform(-1e3, 1e3, size=n)
    x[-1, :] = rng.uniform(-1e3, 1e3, size=n)
    x[:, 0] = rng.uniform(-1e3, 1e3, size=n)
    x[:, -1] = rng.uniform(-1e3, 1e3, size=n)
    b = rng.uniform(-1e3, 1e3, size=(n, n))
    return x, b


def _energy(op, e):
    """||e||_A^2 over the interior (boundary of e is zero)."""
    return float(np.sum(e * op.apply(e)))


class TestSmootherProperties:
    @pytest.mark.parametrize("name", OPERATORS)
    @given(seed=st.integers(0, 10_000), omega=st.sampled_from([0.8, 1.0, 1.15, 1.5]))
    @settings(max_examples=20, deadline=None)
    def test_sor_monotonically_reduces_energy_error(self, name, seed, omega):
        op = shared_operator(name, 17)
        x, b = _problem(op, seed)
        exact = op.direct_solve(x.copy(), b)
        energy = _energy(op, x - exact)
        for _ in range(8):
            op.sor_sweeps(x, b, omega, 1)
            nxt = _energy(op, x - exact)
            assert nxt <= energy * (1.0 + 1e-9)
            energy = nxt

    @pytest.mark.parametrize("name", OPERATORS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_sor_reduces_residual_overall(self, name, seed):
        op = shared_operator(name, 17)
        x, b = _problem(op, seed)
        r0 = residual_norm(op.residual(x, b))
        if r0 == 0.0:
            return
        op.sor_sweeps(x, b, 1.15, 15)
        assert residual_norm(op.residual(x, b)) < r0

    @pytest.mark.parametrize("name", OPERATORS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_jacobi_monotonically_reduces_energy_error(self, name, seed):
        op = shared_operator(name, 9)
        x, b = _problem(op, seed)
        exact = op.direct_solve(x.copy(), b)
        energy = _energy(op, x - exact)
        for _ in range(8):
            op.jacobi_sweeps(x, b, 2.0 / 3.0, 1)
            nxt = _energy(op, x - exact)
            assert nxt <= energy * (1.0 + 1e-9)
            energy = nxt


class TestTwoGridConvergence:
    """Two-grid cycle (smooth, exact coarse solve, smooth) contracts the
    error for every operator family; the anisotropic bound is looser —
    point smoothing degrades there, which is exactly why its tuned cycle
    shape differs."""

    CASES = [
        ("poisson", 0.25),
        ("varcoeff", 0.35),
        ("varcoeff(field=bump,amplitude=4.0)", 0.35),
        ("anisotropic", 0.75),
    ]

    @pytest.mark.parametrize("name,bound", CASES)
    def test_two_grid_factor(self, name, bound):
        from repro.multigrid.cycles import vcycle

        n = 33
        op = make_operator(name, n)
        x, b = _problem(op, seed=123)
        exact = op.direct_solve(x.copy(), b)
        err = np.sqrt(_energy(op, x - exact))
        factors = []
        for _ in range(4):
            # base_size = coarse size => a genuine two-grid cycle.
            vcycle(x, b, pre_sweeps=1, post_sweeps=1, base_size=17, operator=op)
            nxt = np.sqrt(_energy(op, x - exact))
            if err == 0.0 or nxt == 0.0:
                break
            factors.append(nxt / err)
            err = nxt
        assert factors and max(factors) < bound
