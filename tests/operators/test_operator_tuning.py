"""End-to-end operator-aware tuning: scenario diversity through the stack."""

import numpy as np
import pytest

from repro.core.api import autotune, autotune_cached, solve, solve_service
from repro.store import PlanRegistry, TrialDB, TuneKey
from repro.store.sink import plan_cycle_shape
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem

OPERATORS = ("poisson", "varcoeff", "anisotropic")


class TestTunerWithOperators:
    @pytest.mark.parametrize("operator", OPERATORS)
    def test_tuned_plan_solves_its_operator(self, operator):
        plan = autotune(max_level=4, machine="intel", distribution="unbiased",
                        instances=2, seed=0, operator=operator)
        problem = make_problem("unbiased", 17, seed=2, operator=operator)
        x, meter = solve(plan, problem, 1e5)
        # The plan's promise: accuracy >= 1e5 relative to the reference.
        from repro.accuracy.judge import AccuracyJudge
        from repro.accuracy.reference import reference_solution

        judge = AccuracyJudge(problem.initial_guess(), reference_solution(problem))
        assert judge.accuracy_of(x) >= 1e5

    def test_non_default_operator_recorded_in_metadata(self):
        training = TrainingData(distribution="unbiased", instances=1, seed=0,
                                operator="anisotropic(epsilon=0.01)")
        from repro.machines.presets import INTEL_HARPERTOWN

        plan = VCycleTuner(
            max_level=3, training=training,
            timing=CostModelTiming(INTEL_HARPERTOWN), keep_audit=False,
        ).tune()
        assert plan.metadata["operator"] == "anisotropic(epsilon=0.01)"

    def test_full_mg_rejects_vplan_operator_mismatch(self):
        from repro.core.api import autotune_full_mg

        vplan = autotune(max_level=3, machine="intel", instances=1, seed=0)
        with pytest.raises(ValueError, match="vplan was tuned for operator"):
            autotune_full_mg(max_level=3, machine="intel", instances=1, seed=0,
                             vplan=vplan, operator="anisotropic(epsilon=0.01)")

    def test_solve_rejects_operator_mismatch(self):
        plan = autotune(max_level=4, machine="intel", distribution="unbiased",
                        instances=2, seed=0)  # tuned for the poisson default
        problem = make_problem("unbiased", 17, seed=2,
                               operator="anisotropic(epsilon=0.01)")
        with pytest.raises(ValueError, match="tuned for operator"):
            solve(plan, problem, 1e5)

    def test_anisotropic_tunes_a_different_cycle_shape(self):
        kwargs = dict(max_level=6, machine="amd", distribution="unbiased",
                      instances=2, seed=0)
        iso = autotune(operator="poisson", **kwargs)
        aniso = autotune(operator="anisotropic(epsilon=0.01)", **kwargs)
        assert plan_cycle_shape(iso) != plan_cycle_shape(aniso)

    def test_parallel_tune_matches_serial_for_operators(self):
        kwargs = dict(max_level=4, machine="intel", distribution="unbiased",
                      instances=2, seed=0, operator="varcoeff")
        serial = autotune(**kwargs)
        parallel = autotune(jobs=4, **kwargs)
        assert serial.table == parallel.table


class TestRegistryDiversity:
    def test_each_operator_gets_its_own_registry_entry(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        for operator in OPERATORS:
            autotune_cached(max_level=3, machine="intel", instances=1, seed=0,
                            store=registry, operator=operator)
        assert len(registry) == len(OPERATORS)
        keys = set(registry.contents())
        assert len(keys) == len(OPERATORS)
        for operator in OPERATORS:
            # v5 storage keys carry ndim then backend after the operator.
            assert any(key.endswith(f"|{operator}|2|numpy") for key in keys)

    def test_registry_hit_requires_matching_operator(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        calls = []

        def fake_tune(op):
            def tuner():
                calls.append(op)
                return autotune(max_level=3, machine="intel", instances=1,
                                seed=0, operator=op)
            return tuner

        from repro.machines.presets import INTEL_HARPERTOWN

        for op in ("poisson", "varcoeff"):
            registry.get_or_tune(
                INTEL_HARPERTOWN,
                TuneKey(max_level=3, instances=1, operator=op),
                tuner=fake_tune(op),
            )
        assert calls == ["poisson", "varcoeff"]
        # Warm lookups: no further tuning for either operator.
        for op in ("poisson", "varcoeff"):
            hit = registry.get_or_tune(
                INTEL_HARPERTOWN,
                TuneKey(max_level=3, instances=1, operator=op),
                tuner=fake_tune(op),
            )
            assert hit.source == "exact"
        assert calls == ["poisson", "varcoeff"]

    def test_solve_service_keys_on_problem_operator(self):
        registry = PlanRegistry(TrialDB(":memory:"))
        p_var = make_problem("unbiased", 9, seed=0, operator="varcoeff")
        p_poi = make_problem("unbiased", 9, seed=0)
        x1, _, hit1 = solve_service(p_var, 1e3, machine="intel", instances=1,
                                    store=registry)
        x2, _, hit2 = solve_service(p_poi, 1e3, machine="intel", instances=1,
                                    store=registry)
        assert hit1.source == "tuned" and hit2.source == "tuned"
        assert len(registry) == 2
        assert not np.array_equal(x1, x2)


class TestOperatorCampaign:
    def test_campaign_sweeps_operator_axis(self, tmp_path):
        from repro.store import Campaign, CampaignSpec

        spec = CampaignSpec(
            name="op-sweep",
            machines=("intel",),
            distributions=("unbiased",),
            levels=(3,),
            operators=("poisson", "varcoeff", "anisotropic(epsilon=0.01)"),
            instances=1,
            seed=3,
        )
        campaign = Campaign(spec, TrialDB(tmp_path / "ops.sqlite"))
        results = campaign.run()
        assert len(results) == 3
        assert all(r.source == "tuned" for r in results)
        assert [r.operator for r in results] == list(spec.operators)
        assert len(campaign.registry) == 3
        # Resume: nothing re-tuned.
        again = Campaign(spec, TrialDB(tmp_path / "ops.sqlite")).run()
        assert all(r.source == "skipped" for r in again)

    def test_parallel_campaign_with_operators_matches_serial(self, tmp_path):
        from repro.store import Campaign, CampaignSpec

        spec = CampaignSpec(
            name="op-par",
            machines=("intel",),
            distributions=("unbiased",),
            levels=(3,),
            operators=("poisson", "varcoeff", "anisotropic(epsilon=0.01)"),
            instances=1,
            seed=3,
        )
        serial = Campaign(spec, TrialDB(tmp_path / "serial.sqlite"))
        parallel = Campaign(spec, TrialDB(tmp_path / "parallel.sqlite"))
        serial.run(jobs=1)
        parallel.run(jobs=3)
        assert serial.registry.contents() == parallel.registry.contents()
        assert len(serial.registry.contents()) == 3
