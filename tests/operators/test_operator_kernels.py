"""Kernel correctness for the operator layer: apply/residual/smooth/direct."""

import numpy as np
import pytest

from repro.grids.grid import prepare_out
from repro.grids.norms import residual_norm
from repro.grids.poisson import apply_poisson, residual as poisson_residual
from repro.operators import make_operator
from repro.operators.coefficients import COEFF_FIELDS, coefficient_field
from repro.relax.sor import sor_redblack, sor_redblack_stencil

ALL_OPERATORS = [
    "poisson",
    "varcoeff",
    "varcoeff(field=bump,amplitude=4.0)",
    "varcoeff(field=random,seed=3)",
    "anisotropic",
    "anisotropic(epsilon=0.01)",
]


def _random_problem(n, seed=0):
    rng = np.random.default_rng(seed)
    x = np.zeros((n, n))
    x[0, :] = rng.normal(size=n)
    x[-1, :] = rng.normal(size=n)
    x[:, 0] = rng.normal(size=n)
    x[:, -1] = rng.normal(size=n)
    b = rng.normal(size=(n, n))
    return x, b


class TestApplyResidual:
    @pytest.mark.parametrize("name", ALL_OPERATORS)
    @pytest.mark.parametrize("n", [3, 9, 33])
    def test_residual_is_b_minus_Au(self, name, n):
        op = make_operator(name, n)
        rng = np.random.default_rng(1)
        u = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        r = op.residual(u, b)
        expected = b - op.apply(u)
        expected[0, :] = expected[-1, :] = expected[:, 0] = expected[:, -1] = 0.0
        np.testing.assert_allclose(r, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name", ALL_OPERATORS)
    def test_out_parameter_reused(self, name):
        op = make_operator(name, 17)
        rng = np.random.default_rng(2)
        u = rng.normal(size=(17, 17))
        scratch = rng.normal(size=(17, 17))
        out = op.apply(u, out=scratch)
        assert out is scratch
        np.testing.assert_array_equal(out, op.apply(u))

    def test_constant_field_varcoeff_matches_poisson(self):
        n = 33
        op = make_operator("varcoeff(field=constant)", n)
        rng = np.random.default_rng(3)
        u = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        np.testing.assert_allclose(op.apply(u), apply_poisson(u), rtol=1e-12, atol=1e-8)
        np.testing.assert_allclose(
            op.residual(u, b), poisson_residual(u, b), rtol=1e-12, atol=1e-8
        )

    def test_diagonal_matches_stencil(self):
        op = make_operator("anisotropic(epsilon=0.5)", 9)
        h2 = 1.0 / 8.0 ** 2
        np.testing.assert_allclose(op.diagonal()[1:-1, 1:-1], 2.0 * 1.5 / h2)


class TestDirectSolve:
    @pytest.mark.parametrize("name", ALL_OPERATORS)
    @pytest.mark.parametrize("n", [3, 5, 17, 33])
    def test_direct_solution_has_tiny_residual(self, name, n):
        op = make_operator(name, n)
        x, b = _random_problem(n, seed=n)
        r0 = residual_norm(op.residual(x, b))
        sol = op.direct_solve(x.copy(), b)
        assert residual_norm(op.residual(sol, b)) < 1e-9 * max(1.0, r0)
        # Boundary ring untouched by the interior solve.
        np.testing.assert_array_equal(sol[0, :], x[0, :])

    def test_varcoeff_direct_matches_poisson_on_constant_field(self):
        n = 17
        op = make_operator("varcoeff(field=constant)", n)
        x, b = _random_problem(n, seed=5)
        from repro.linalg.direct import DirectSolver

        expected = DirectSolver(backend="lapack").solve(x.copy(), b)
        got = op.direct_solve(x.copy(), b)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


class TestSmoothers:
    def test_stencil_sor_with_poisson_weights_matches_legacy(self):
        n = 17
        h2 = (1.0 / (n - 1)) ** 2
        w = np.full((n, n), 1.0 / h2)
        diag = np.full((n, n), 4.0 / h2)
        rng = np.random.default_rng(7)
        b = rng.normal(size=(n, n))
        u1 = rng.normal(size=(n, n))
        u2 = u1.copy()
        sor_redblack(u1, b, 1.15, 3)
        sor_redblack_stencil(u2, b, w, w, w, w, diag, 1.15, 3)
        np.testing.assert_allclose(u1, u2, rtol=1e-12, atol=1e-9)

    def test_stencil_sor_matches_scalar_reference(self):
        # Executable specification: plain scalar-loop red-black GS over
        # the same variable-coefficient stencil.
        n = 9
        op = make_operator("varcoeff(field=bump,amplitude=4.0)", n)
        rng = np.random.default_rng(8)
        b = rng.normal(size=(n, n))
        u = rng.normal(size=(n, n))
        expected = u.copy()
        omega = 1.15
        for parity in (0, 1):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    if (i + j) % 2 != parity:
                        continue
                    gs = (
                        op.north[i, j] * expected[i - 1, j]
                        + op.south[i, j] * expected[i + 1, j]
                        + op.west[i, j] * expected[i, j - 1]
                        + op.east[i, j] * expected[i, j + 1]
                        + b[i, j]
                    ) / op.diag[i, j]
                    expected[i, j] = (1 - omega) * expected[i, j] + omega * gs
        op.sor_sweeps(u, b, omega, 1)
        np.testing.assert_allclose(u, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name", ALL_OPERATORS)
    def test_jacobi_reduces_residual(self, name):
        n = 17
        op = make_operator(name, n)
        x, b = _random_problem(n, seed=9)
        r0 = residual_norm(op.residual(x, b))
        op.jacobi_sweeps(x, b, 2.0 / 3.0, 30)
        assert residual_norm(op.residual(x, b)) < 0.5 * r0


class TestStencilValidation:
    def test_asymmetric_stencil_rejected(self):
        from repro.operators.base import FivePointOperator
        from repro.operators.spec import POISSON

        n = 5
        w = np.ones((n, n))
        lopsided = 2.0 * np.ones((n, n))
        with pytest.raises(ValueError, match="not symmetric"):
            FivePointOperator(POISSON, n, w, lopsided, w, w, 4.0 * np.ones((n, n)))

    def test_size_mismatch_rejected(self):
        op = make_operator("anisotropic", 17)
        with pytest.raises(ValueError, match="bound to n=17"):
            op.apply(np.zeros((9, 9)))


class TestCoefficientFields:
    @pytest.mark.parametrize("name", sorted(COEFF_FIELDS))
    def test_fields_positive_and_deterministic(self, name):
        a = coefficient_field(name, 17, seed=4)
        b = coefficient_field(name, 17, seed=4)
        assert np.all(a > 0)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(COEFF_FIELDS))
    def test_fields_consistent_across_levels(self, name):
        # The analytic field sampled at 17 coincides with the 33-point
        # sampling at coincident vertices — the rediscretization property.
        fine = coefficient_field(name, 33, seed=4)
        coarse = coefficient_field(name, 17, seed=4)
        np.testing.assert_allclose(fine[::2, ::2], coarse, rtol=1e-12)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown coefficient field"):
            coefficient_field("perlin", 17)


class TestPrepareOut:
    def test_allocates_zeros_when_none(self):
        out = prepare_out(None, (5, 5))
        assert out.shape == (5, 5)
        assert not out.any()

    def test_zeroes_boundary_of_given_array(self):
        scratch = np.ones((5, 5))
        out = prepare_out(scratch, (5, 5))
        assert out is scratch
        assert not out[0, :].any() and not out[:, -1].any()
        assert out[1:-1, 1:-1].all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="out shape"):
            prepare_out(np.zeros((4, 4)), (5, 5))
