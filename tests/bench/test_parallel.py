"""Tests for trace -> task-graph conversion and parallel simulation."""

import pytest

from repro.bench.parallel import simulate_trace, trace_task_graph
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.trace import Trace


def v_trace() -> Trace:
    """relax, descend, direct, ascend, relax at levels 5/4."""
    t = Trace()
    t.emit("enter", 5, 0)
    t.emit("relax", 5)
    t.emit("descend", 5)
    t.emit("direct", 4)
    t.emit("ascend", 5)
    t.emit("relax", 5)
    t.emit("exit", 5)
    return t


class TestTraceTaskGraph:
    def test_enter_exit_skipped(self):
        g = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=1)
        names = [t.name for t in g.tasks()]
        assert not any("enter" in n or "exit" in n for n in names)

    def test_block_fanout(self):
        g1 = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=1)
        g4 = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=4)
        assert len(g4) > len(g1)

    def test_direct_is_single_serial_task(self):
        g = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=8)
        directs = [t for t in g.tasks() if t.name.startswith("direct")]
        assert len(directs) == 1

    def test_stage_ordering_preserved(self):
        g = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=2)
        order = [t.name for t in g.topological_order()]
        first_relax = min(i for i, n in enumerate(order) if n.startswith("relax"))
        direct_pos = next(i for i, n in enumerate(order) if n.startswith("direct"))
        assert first_relax < direct_pos

    def test_total_cost_close_to_serial_sum(self):
        # Splitting into blocks must conserve total work.
        g1 = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=1)
        g4 = trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=4)
        assert g4.total_cost() == pytest.approx(g1.total_cost(), rel=1e-9)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            trace_task_graph(v_trace(), INTEL_HARPERTOWN, blocks=0)

    def test_sor_event_scales_with_sweeps(self):
        t = Trace()
        t.emit("sor", 5, 10)
        g10 = trace_task_graph(t, INTEL_HARPERTOWN, blocks=1)
        t2 = Trace()
        t2.emit("sor", 5, 1)
        g1 = trace_task_graph(t2, INTEL_HARPERTOWN, blocks=1)
        assert g10.total_cost() == pytest.approx(10 * g1.total_cost(), rel=1e-9)


class TestSimulateTrace:
    def test_more_workers_never_slower(self):
        trace = v_trace()
        times = [
            simulate_trace(trace, INTEL_HARPERTOWN, workers=w).makespan
            for w in (1, 2, 4, 8)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.001

    def test_serial_direct_limits_speedup(self):
        # A direct-solve-only trace cannot speed up at all.
        t = Trace()
        t.emit("direct", 6)
        s1 = simulate_trace(t, INTEL_HARPERTOWN, workers=1).makespan
        s8 = simulate_trace(t, INTEL_HARPERTOWN, workers=8).makespan
        assert s8 == pytest.approx(s1, rel=0.01)

    def test_blocks_default_to_workers(self):
        rep = simulate_trace(v_trace(), INTEL_HARPERTOWN, workers=4)
        assert rep.workers == 4
