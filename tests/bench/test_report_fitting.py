"""Tests for report formatting and power-law fitting."""

import numpy as np
import pytest

from repro.bench.fitting import fit_power_law
from repro.bench.report import (
    Series,
    format_ratio_table,
    format_series_table,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = [len(line) for line in lines]
        assert len(set(widths)) == 1  # all rows aligned


class TestSeriesTable:
    def test_values_rendered(self):
        s = Series("t", [1.0, 2.0])
        text = format_series_table("N", [5, 9], [s])
        assert "1.000e+00" in text and "2.000e+00" in text

    def test_none_rendered_as_dash(self):
        s = Series("t", [1.0, None])
        text = format_series_table("N", [5, 9], [s])
        assert "-" in text.splitlines()[-1]

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("N", [5, 9], [Series("t", [1.0])])

    def test_ratio_table(self):
        base = Series("base", [2.0, 4.0])
        other = Series("x", [4.0, 4.0])
        text = format_ratio_table("N", [5, 9], base, [base, other])
        # base/base = 1, x/base = 2 then 1.
        assert "1.000e+00" in text and "2.000e+00" in text

    def test_ratio_handles_zero_baseline(self):
        base = Series("base", [0.0])
        other = Series("x", [4.0])
        text = format_ratio_table("N", [5], base, [other])
        assert "-" in text.splitlines()[-1]


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        ns = [10.0, 100.0, 1000.0]
        ts = [3.0 * n**1.5 for n in ns]
        fit = fit_power_law(ns, ts)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10.0, 100.0], [10.0, 1000.0])
        assert fit.predict(1000.0) == pytest.approx(1e5, rel=1e-6)

    def test_noise_tolerated(self):
        rng = np.random.default_rng(1)
        ns = np.logspace(1, 4, 12)
        ts = 2.0 * ns**2 * np.exp(rng.normal(0, 0.05, 12))
        fit = fit_power_law(ns, ts)
        assert fit.exponent == pytest.approx(2.0, abs=0.15)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])
