"""Tests for the experiment drivers (small scales; shapes, not numbers)."""

import pytest

from repro.bench.ablations import (
    ablation_accuracy_ladder,
    ablation_factor_caching,
    ablation_pareto_vs_discrete,
    ablation_smoother,
    ablation_training_distribution,
)
from repro.bench.experiments import (
    cross_architecture,
    fig10_13_reference_comparison,
    fig14_architectures,
    fig4_call_stacks,
    fig5_cycle_shapes,
    fig6_algorithm_comparison,
    fig7_heuristics,
    fig9_parallel_scaling,
    table1_complexity,
)


class TestTable1:
    def test_exponents_match_paper(self):
        res = table1_complexity(max_level=6)
        assert res.fits["Direct"].exponent == pytest.approx(2.0, abs=0.25)
        assert res.fits["SOR"].exponent == pytest.approx(1.5, abs=0.25)
        assert res.fits["Multigrid"].exponent == pytest.approx(1.0, abs=0.2)

    def test_format_contains_table(self):
        res = table1_complexity(max_level=5)
        text = res.format()
        assert "Direct" in text and "paper" in text


class TestFig4:
    def test_renders_both_distributions(self):
        res = fig4_call_stacks(max_level=4)
        assert len(res.renders) == 2
        for text in res.renders.values():
            assert "MULTIGRID-V4" in text


class TestFig5Fig14:
    def test_fig5_renders_all_cycles(self):
        res = fig5_cycle_shapes(max_level=4, targets=(1e1, 1e5))
        # 2 dists x 2 kinds x 2 targets.
        assert len(res.renders) == 8
        assert any("==>" in t or "-" in t for t in res.renders.values())

    def test_fig14_covers_machines(self):
        res = fig14_architectures(max_level=4, machines=("intel", "sun"))
        assert len(res.renders) == 2
        assert any("intel" in k for k in res.renders)


class TestFig6:
    @pytest.fixture(scope="class")
    def res(self):
        # Level 6 so the direct/recursion crossover (N=65 on the Intel
        # model) is inside the measured range.
        return fig6_algorithm_comparison(max_level=6, instances=1)

    def test_autotuned_competitive_with_best_basic(self, res):
        # The tuned plan is open-loop (worst-case trained iteration counts)
        # while the baselines stop closed-loop per instance, so allow a
        # modest margin over the best basic algorithm at each size.
        names = {s.name: s for s in res.series}
        for i in range(len(res.sizes)):
            best_basic = min(
                names[n].values[i] for n in ("Direct", "SOR", "Multigrid")
            )
            assert names["Autotuned"].values[i] <= best_basic * 1.2

    def test_autotuned_beats_direct_and_sor_at_top(self, res):
        names = {s.name: s for s in res.series}
        assert names["Autotuned"].values[-1] < names["Direct"].values[-1]
        assert names["Autotuned"].values[-1] < names["SOR"].values[-1]

    def test_all_methods_reach_target(self, res):
        for name in ("SOR", "Multigrid", "Autotuned"):
            for acc in res.achieved[name]:
                assert acc >= 0.5e9

    def test_direct_eventually_slowest(self, res):
        names = {s.name: s for s in res.series}
        assert names["Direct"].values[-1] > names["Multigrid"].values[-1]


class TestFig7:
    def test_autotuned_at_least_ties_everything(self):
        res = fig7_heuristics(max_level=5, min_level=3)
        auto = res.series[-1]
        assert auto.name == "Autotuned"
        for s in res.series[:-1]:
            for i in range(len(res.sizes)):
                assert auto.values[i] <= s.values[i] * 1.0001

    def test_ratio_table_renders(self):
        res = fig7_heuristics(max_level=4, min_level=3)
        assert "Strategy" in res.format_ratios()


class TestFig9:
    def test_speedup_monotone_and_bounded(self):
        res = fig9_parallel_scaling(max_level=5, max_threads=4)
        assert res.speedups[0] == pytest.approx(1.0)
        for a, b in zip(res.speedups, res.speedups[1:]):
            assert b >= a * 0.98  # non-decreasing up to scheduling noise
        for t, s in zip(res.threads, res.speedups):
            assert s <= t + 1e-9


class TestFig10_13:
    def test_autotuned_beats_reference_v(self):
        res = fig10_13_reference_comparison(
            max_level=5, machine="intel", target=1e5, instances=1
        )
        names = {s.name: s for s in res.series}
        ref = names["Reference V"]
        auto = names["Autotuned Full MG"]
        # At the largest size the tuned algorithm must win.
        assert auto.values[-1] <= ref.values[-1]

    def test_speedup_fields_present(self):
        res = fig10_13_reference_comparison(max_level=4, instances=1)
        assert set(res.speedup_at_top) == {"Autotuned V", "Autotuned Full MG"}
        assert "relative time" in res.format()


class TestCrossArch:
    def test_foreign_plans_not_faster(self):
        res = cross_architecture(max_level=5, machines=("intel", "sun"))
        assert len(res.entries) == 2
        for _trained, _run, pct in res.entries:
            assert pct >= -1.0  # foreign tuning can't meaningfully win


class TestAblations:
    def test_ladder(self):
        res = ablation_accuracy_ladder(max_level=4)
        assert "ladder" in res.format()

    def test_distribution(self):
        res = ablation_training_distribution(max_level=4, instances=1)
        assert "trained on" in res.format()

    def test_smoother_prefers_sor(self):
        res = ablation_smoother(level=4, target=1e2)
        text = res.format()
        assert "SOR" in text and "Jacobi" in text

    def test_caching(self):
        res = ablation_factor_caching(max_level=4)
        assert "DPBSV" in res.format()

    def test_pareto(self):
        res = ablation_pareto_vs_discrete(max_level=3)
        assert "discrete" in res.format()
