"""Hypothesis properties parameterized over grid dimensionality.

Two invariants the multigrid convergence theory stands on, now checked
uniformly in 2-D and 3-D:

* **transfer adjointness** — full-weighting restriction is the adjoint
  of (bi/tri)linear interpolation up to the 2**ndim volume factor:
  <R u, v> = <u, P v> / 2**ndim for any u on the fine grid and v on the
  coarse grid (boundaries zero, as for residual transfers);
* **smoother energy monotonicity** — SOR with 0 < omega < 2 on an SPD
  operator never increases the energy norm of the error
  (Ostrowski-Reich), for every operator family in every dimension.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.transfer import interpolate_bilinear, restrict_full_weighting
from repro.operators import shared_operator

NDIM_CASES = [(2, 17, 9), (3, 9, 5)]  # (ndim, fine n, coarse n)

SMOOTHER_CASES = [
    ("poisson", 2, 17),
    ("anisotropic(epsilon=0.05)", 2, 17),
    ("poisson3d", 3, 9),
    ("anisotropic3d(epsx=0.05)", 3, 9),
    ("anisotropic3d(epsx=0.3,epsy=0.6)", 3, 9),
]


def _interior_noise(n, ndim, rng):
    a = np.zeros((n,) * ndim)
    a[(slice(1, -1),) * ndim] = rng.standard_normal((n - 2,) * ndim)
    return a


def _boundary_problem(op, seed):
    """Random Dirichlet data + RHS for the operator's grid."""
    from repro.grids.boundary import boundary_mask, boundary_size

    rng = np.random.default_rng(seed)
    n, ndim = op.n, op.ndim
    x = np.zeros((n,) * ndim)
    x[boundary_mask(n, ndim)] = rng.uniform(-1e3, 1e3, size=boundary_size(n, ndim))
    b = rng.uniform(-1e3, 1e3, size=(n,) * ndim)
    return x, b


def _energy(op, e):
    """||e||_A^2 over the interior (boundary of e is zero)."""
    return float(np.sum(e * op.apply(e)))


class TestTransferAdjointness:
    @pytest.mark.parametrize("ndim,nf,nc", NDIM_CASES)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_restriction_is_scaled_adjoint_of_interpolation(self, ndim, nf, nc, seed):
        rng = np.random.default_rng(seed)
        u = _interior_noise(nf, ndim, rng)
        v = _interior_noise(nc, ndim, rng)
        lhs = float(np.sum(restrict_full_weighting(u) * v))
        rhs = float(np.sum(u * interpolate_bilinear(v))) / float(2**ndim)
        scale = max(1.0, abs(lhs), abs(rhs))
        assert abs(lhs - rhs) <= 1e-10 * scale

    @pytest.mark.parametrize("ndim,nf,nc", NDIM_CASES)
    def test_restriction_of_interpolant_recovers_smooth_interior(self, ndim, nf, nc):
        # R P is an averaging operator: on a constant interior field it
        # returns the constant away from the boundary layer.
        v = np.zeros((nc,) * ndim)
        v[(slice(1, -1),) * ndim] = 1.0
        rp = restrict_full_weighting(interpolate_bilinear(v))
        deep = (slice(2, -2),) * ndim
        if rp[deep].size:
            np.testing.assert_allclose(rp[deep], 1.0)


class TestSmootherMonotonicity:
    @pytest.mark.parametrize("name,ndim,n", SMOOTHER_CASES)
    @given(seed=st.integers(0, 10_000), omega=st.sampled_from([0.8, 1.0, 1.15, 1.5]))
    @settings(max_examples=12, deadline=None)
    def test_sor_monotonically_reduces_energy_error(self, name, ndim, n, seed, omega):
        op = shared_operator(name, n)
        assert op.ndim == ndim
        x, b = _boundary_problem(op, seed)
        exact = op.direct_solve(x.copy(), b)
        energy = _energy(op, x - exact)
        for _ in range(6):
            op.sor_sweeps(x, b, omega, 1)
            nxt = _energy(op, x - exact)
            assert nxt <= energy * (1.0 + 1e-9)
            energy = nxt

    @pytest.mark.parametrize("name,ndim,n", SMOOTHER_CASES)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_jacobi_monotonically_reduces_energy_error(self, name, ndim, n, seed):
        op = shared_operator(name, n)
        x, b = _boundary_problem(op, seed)
        exact = op.direct_solve(x.copy(), b)
        energy = _energy(op, x - exact)
        for _ in range(6):
            op.jacobi_sweeps(x, b, 2.0 / 3.0, 1)
            nxt = _energy(op, x - exact)
            assert nxt <= energy * (1.0 + 1e-9)
            energy = nxt
