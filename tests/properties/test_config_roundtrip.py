"""Property tests: plan configuration files round-trip exactly.

``plan_from_dict(plan_to_dict(p))`` must be the identity on both plan
kinds (the PetaBricks configuration-file contract), with the in-memory
``audit`` metadata scrubbed on the way out.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuner.choices import DirectChoice, EstimateChoice, RecurseChoice, SORChoice
from repro.tuner.config import plan_from_dict, plan_to_dict
from repro.tuner.dp import CandidateReport
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan

MAX_LEVEL = st.integers(min_value=1, max_value=4)


@st.composite
def ladders(draw) -> tuple[float, ...]:
    m = draw(st.integers(min_value=1, max_value=5))
    exponents = draw(
        st.lists(
            st.integers(min_value=1, max_value=12), min_size=m, max_size=m, unique=True
        )
    )
    return tuple(10.0**e for e in sorted(exponents))


def _v_choice(draw, level: int, m: int):
    options = ["direct", "sor"]
    if level >= 2:
        options.append("recurse")
    kind = draw(st.sampled_from(options))
    if kind == "direct":
        return DirectChoice()
    if kind == "sor":
        return SORChoice(iterations=draw(st.integers(min_value=1, max_value=9)))
    return RecurseChoice(
        sub_accuracy=draw(st.integers(min_value=0, max_value=m - 1)),
        iterations=draw(st.integers(min_value=1, max_value=5)),
    )


@st.composite
def v_plans(draw) -> TunedVPlan:
    accuracies = draw(ladders())
    max_level = draw(MAX_LEVEL)
    m = len(accuracies)
    table = {
        (level, i): (DirectChoice() if level == 1 else _v_choice(draw, level, m))
        for level in range(1, max_level + 1)
        for i in range(m)
    }
    metadata = {"distribution": "unbiased", "seed": draw(st.integers(0, 9))}
    if draw(st.booleans()):
        metadata["audit"] = [
            CandidateReport(
                level=1, acc_index=0, description="direct", seconds=1e-6, feasible=True
            )
        ]
    return TunedVPlan(
        accuracies=accuracies, max_level=max_level, table=table, metadata=metadata
    )


@st.composite
def full_mg_plans(draw) -> TunedFullMGPlan:
    vplan = draw(v_plans())
    m = len(vplan.accuracies)
    table: dict = {}
    for level in range(1, vplan.max_level + 1):
        for i in range(m):
            if level == 1 or draw(st.booleans()):
                table[(level, i)] = DirectChoice()
                continue
            solver_kind = draw(st.sampled_from(["sor", "recurse"]))
            if solver_kind == "sor":
                solver = SORChoice(iterations=draw(st.integers(0, 9)))
            else:
                solver = RecurseChoice(
                    sub_accuracy=draw(st.integers(0, m - 1)),
                    iterations=draw(st.integers(1, 5)),
                )
            table[(level, i)] = EstimateChoice(
                estimate_accuracy=draw(st.integers(0, m - 1)), solver=solver
            )
    metadata = {"kind": "full-multigrid"}
    if draw(st.booleans()):
        metadata["audit"] = [
            CandidateReport(
                level=2, acc_index=0, description="estimate", seconds=2e-6, feasible=True
            )
        ]
    return TunedFullMGPlan(
        accuracies=vplan.accuracies,
        max_level=vplan.max_level,
        table=table,
        vplan=vplan,
        metadata=metadata,
    )


def scrubbed(metadata: dict) -> dict:
    return {k: v for k, v in metadata.items() if k != "audit"}


@settings(max_examples=40, deadline=None)
@given(v_plans())
def test_v_plan_round_trip_identity(plan):
    restored = plan_from_dict(plan_to_dict(plan))
    assert isinstance(restored, TunedVPlan)
    assert restored.accuracies == plan.accuracies
    assert restored.max_level == plan.max_level
    assert restored.table == plan.table
    assert restored.metadata == scrubbed(plan.metadata)
    assert "audit" not in restored.metadata
    # Idempotent at the dict level: serialized form is a fixed point.
    assert plan_to_dict(restored) == plan_to_dict(plan)


@settings(max_examples=40, deadline=None)
@given(full_mg_plans())
def test_full_mg_plan_round_trip_identity(plan):
    restored = plan_from_dict(plan_to_dict(plan))
    assert isinstance(restored, TunedFullMGPlan)
    assert restored.accuracies == plan.accuracies
    assert restored.max_level == plan.max_level
    assert restored.table == plan.table
    assert restored.metadata == scrubbed(plan.metadata)
    assert restored.vplan.table == plan.vplan.table
    assert restored.vplan.metadata == scrubbed(plan.vplan.metadata)
    assert plan_to_dict(restored) == plan_to_dict(plan)
