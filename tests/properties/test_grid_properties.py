"""Property-based tests (hypothesis) for the numerical substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.grids.poisson import apply_poisson, residual
from repro.grids.transfer import (
    interpolate_bilinear,
    interpolate_correction,
    restrict_full_weighting,
)
from repro.relax.sor import sor_redblack, sor_redblack_reference

SIZES = st.sampled_from([3, 5, 9, 17])


def grids(n: int, zero_boundary: bool = False):
    strat = hnp.arrays(
        dtype=np.float64,
        shape=(n, n),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )
    if zero_boundary:
        return strat.map(_zero_ring)
    return strat


def _zero_ring(a: np.ndarray) -> np.ndarray:
    a = a.copy()
    a[0, :] = a[-1, :] = a[:, 0] = a[:, -1] = 0.0
    return a


class TestOperatorProperties:
    @given(data=st.data(), n=st.sampled_from([5, 9, 17]))
    @settings(max_examples=25, deadline=None)
    def test_poisson_operator_linear(self, data, n):
        u = data.draw(grids(n))
        v = data.draw(grids(n))
        alpha = data.draw(st.floats(-3, 3, allow_nan=False))
        left = apply_poisson(u + alpha * v)
        right = apply_poisson(u) + alpha * apply_poisson(v)
        np.testing.assert_allclose(left, right, rtol=1e-8, atol=1e-2)

    @given(data=st.data(), n=st.sampled_from([5, 9, 17]))
    @settings(max_examples=25, deadline=None)
    def test_poisson_symmetric_on_zero_boundary(self, data, n):
        u = data.draw(grids(n, zero_boundary=True))
        v = data.draw(grids(n, zero_boundary=True))
        au = apply_poisson(u)
        av = apply_poisson(v)
        left = float(np.vdot(au, v))
        right = float(np.vdot(u, av))
        # Scale by the summand magnitudes: the inner products may cancel to
        # near zero, so relative-to-result tolerances are ill-conditioned.
        scale = float(np.linalg.norm(au) * np.linalg.norm(v)) + 1.0
        assert abs(left - right) / scale < 1e-12

    @given(data=st.data(), n=st.sampled_from([5, 9, 17]))
    @settings(max_examples=25, deadline=None)
    def test_poisson_positive_semidefinite(self, data, n):
        u = data.draw(grids(n, zero_boundary=True))
        assert float(np.vdot(u, apply_poisson(u))) >= -1e-6

    @given(data=st.data(), n=st.sampled_from([5, 9]))
    @settings(max_examples=25, deadline=None)
    def test_residual_definition(self, data, n):
        u = data.draw(grids(n))
        b = data.draw(grids(n))
        r = residual(u, b)
        expected = b[1:-1, 1:-1] - apply_poisson(u)[1:-1, 1:-1]
        np.testing.assert_allclose(r[1:-1, 1:-1], expected, rtol=1e-8, atol=1e-3)


class TestTransferProperties:
    @given(data=st.data(), n=st.sampled_from([5, 9, 17]))
    @settings(max_examples=25, deadline=None)
    def test_restriction_linear(self, data, n):
        f = data.draw(grids(n))
        g = data.draw(grids(n))
        left = restrict_full_weighting(f + g)
        right = restrict_full_weighting(f) + restrict_full_weighting(g)
        np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-3)

    @given(data=st.data(), n=st.sampled_from([5, 9, 17]))
    @settings(max_examples=25, deadline=None)
    def test_restriction_max_principle(self, data, n):
        f = data.draw(grids(n))
        coarse = restrict_full_weighting(f)
        assert np.abs(coarse).max() <= np.abs(f).max() + 1e-9

    @given(data=st.data(), nc=st.sampled_from([3, 5, 9]))
    @settings(max_examples=25, deadline=None)
    def test_interpolation_max_principle(self, data, nc):
        c = data.draw(grids(nc))
        fine = interpolate_bilinear(c)
        assert np.abs(fine).max() <= np.abs(c).max() + 1e-9

    @given(data=st.data(), nc=st.sampled_from([3, 5, 9]))
    @settings(max_examples=25, deadline=None)
    def test_adjointness(self, data, nc):
        nf = 2 * (nc - 1) + 1
        f = data.draw(grids(nf, zero_boundary=True))
        c = data.draw(grids(nc, zero_boundary=True))
        left = float(np.vdot(restrict_full_weighting(f), c))
        right = float(np.vdot(f, interpolate_bilinear(c))) / 4.0
        scale = float(np.linalg.norm(f) * np.linalg.norm(c)) + 1.0
        assert abs(left - right) / scale < 1e-12

    @given(data=st.data(), nc=st.sampled_from([3, 5]))
    @settings(max_examples=25, deadline=None)
    def test_correction_is_additive_interpolation(self, data, nc):
        nf = 2 * (nc - 1) + 1
        u = data.draw(grids(nf))
        c = data.draw(grids(nc, zero_boundary=True))
        expected = u.copy()
        expected[1:-1, 1:-1] += interpolate_bilinear(c)[1:-1, 1:-1]
        np.testing.assert_allclose(
            interpolate_correction(u.copy(), c), expected, rtol=1e-9, atol=1e-6
        )


class TestSORProperties:
    @given(
        data=st.data(),
        n=st.sampled_from([3, 5, 9]),
        omega=st.floats(0.5, 1.95),
        sweeps=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_vectorized_equals_reference(self, data, n, omega, sweeps):
        u = data.draw(grids(n))
        b = data.draw(grids(n))
        fast = sor_redblack(u.copy(), b, omega, sweeps)
        slow = sor_redblack_reference(u.copy(), b, omega, sweeps)
        np.testing.assert_allclose(fast, slow, rtol=1e-10, atol=1e-6)

    @given(data=st.data(), n=st.sampled_from([5, 9]))
    @settings(max_examples=15, deadline=None)
    def test_sor_affine_in_inputs(self, data, n):
        # One SOR sweep is an affine map of (u, b): sweep(u, b) - sweep(0, 0)
        # is linear.  Check additivity of the homogeneous part.
        u = data.draw(grids(n, zero_boundary=True))
        v = data.draw(grids(n, zero_boundary=True))
        b = np.zeros((n, n))
        zero = sor_redblack(np.zeros((n, n)), b, 1.15, 1)
        s_u = sor_redblack(u.copy(), b, 1.15, 1) - zero
        s_v = sor_redblack(v.copy(), b, 1.15, 1) - zero
        s_uv = sor_redblack(u + v, b, 1.15, 1) - zero
        np.testing.assert_allclose(s_uv, s_u + s_v, rtol=1e-8, atol=1e-4)
