"""Property-based tests for op meters, pricing, schedulers, and the
Pareto front."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.meter import OPS, OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.runtime.simsched import SimulatedScheduler
from repro.runtime.task import TaskGraph
from repro.tuner.pareto import ParetoAlgorithm, ParetoPoint, pareto_front

charges = st.lists(
    st.tuples(
        st.sampled_from(OPS),
        st.sampled_from([3, 5, 9, 17, 33]),
        st.integers(1, 5),
    ),
    max_size=12,
)


def build_meter(items) -> OpMeter:
    m = OpMeter()
    for op, n, times in items:
        m.charge(op, n, times)
    return m


class TestMeterProperties:
    @given(a=charges, b=charges)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative(self, a, b):
        m1 = build_meter(a)
        m1.merge(build_meter(b))
        m2 = build_meter(b)
        m2.merge(build_meter(a))
        assert m1 == m2

    @given(a=charges, k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_scaled_equals_repeated_merge(self, a, k):
        base = build_meter(a)
        scaled = base.scaled(k)
        merged = OpMeter()
        for _ in range(k):
            merged.merge(base)
        assert scaled == merged

    @given(a=charges, b=charges)
    @settings(max_examples=40, deadline=None)
    def test_price_additive(self, a, b):
        ma, mb = build_meter(a), build_meter(b)
        both = OpMeter()
        both.merge(ma)
        both.merge(mb)
        p = INTEL_HARPERTOWN.price
        assert p(both) == pytest.approx(p(ma) + p(mb), rel=1e-12)

    @given(a=charges, k=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_price_homogeneous(self, a, k):
        m = build_meter(a)
        p = INTEL_HARPERTOWN.price
        assert p(m.scaled(k)) == pytest.approx(k * p(m), rel=1e-12)


def random_dag(draw_edges, costs) -> TaskGraph:
    g = TaskGraph()
    names = []
    for i, cost in enumerate(costs):
        possible = names[:]
        deps = tuple(n for n, pick in zip(possible, draw_edges[i]) if pick)
        g.add(f"t{i}", deps=deps, cost=cost)
        names.append(f"t{i}")
    return g


class TestSimulatedSchedulerProperties:
    @given(data=st.data(), workers=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, data, workers):
        n = data.draw(st.integers(1, 15))
        costs = data.draw(
            st.lists(st.floats(0.1, 5.0), min_size=n, max_size=n)
        )
        edges = [
            data.draw(st.lists(st.booleans(), min_size=i, max_size=i))
            for i in range(n)
        ]
        g = random_dag(edges, costs)
        rep = SimulatedScheduler(workers=workers).run(g)
        serial = g.total_cost()
        critical = g.critical_path_cost()
        assert rep.makespan >= critical - 1e-9
        assert rep.makespan >= serial / workers - 1e-9
        assert rep.makespan <= serial / workers + critical + 1e-9  # Graham

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_completion_order_topological(self, data):
        n = data.draw(st.integers(1, 12))
        edges = [
            data.draw(st.lists(st.booleans(), min_size=i, max_size=i))
            for i in range(n)
        ]
        g = random_dag(edges, [1.0] * n)
        rep = SimulatedScheduler(workers=3).run(g)
        pos = {name: i for i, name in enumerate(rep.completion_order)}
        for t in g.tasks():
            for d in t.deps:
                assert pos[d] < pos[t.name]


points = st.lists(
    st.tuples(st.floats(0.1, 100.0), st.floats(1.0, 1e12)), min_size=0, max_size=30
)


class TestParetoFrontProperties:
    @given(raw=points)
    @settings(max_examples=50, deadline=None)
    def test_front_is_subset_and_nondominated(self, raw):
        pts = [
            ParetoPoint(ParetoAlgorithm(kind="direct"), s, a) for s, a in raw
        ]
        front = pareto_front(pts)
        assert all(p in pts for p in front)
        for p in front:
            for q in pts:
                strictly_better = (
                    q.seconds <= p.seconds
                    and q.accuracy >= p.accuracy
                    and (q.seconds < p.seconds or q.accuracy > p.accuracy)
                )
                assert not strictly_better

    @given(raw=points, cap=st.integers(2, 6))
    @settings(max_examples=50, deadline=None)
    def test_cap_respected_and_keeps_extremes(self, raw, cap):
        pts = [
            ParetoPoint(ParetoAlgorithm(kind="direct"), s, a) for s, a in raw
        ]
        full = pareto_front(pts)
        capped = pareto_front(pts, max_size=cap)
        assert len(capped) <= max(cap, 2) or len(capped) <= len(full)
        if full:
            assert capped[0] == full[0]
            assert capped[-1] == full[-1]
