"""Seeded mixed-traffic generation: determinism is the contract.

The scale benchmark compares a single-process server against the
sharded front door *on identical traffic* — that comparison is only
meaningful because :func:`build_schedule` is a pure function of
``(requests, n_specs, seed)`` and :func:`run_load` derives every
request from that schedule.  These tests pin the determinism down to
the submission sequence and the report's ``schedule_digest``.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.serve.loadgen import POOL_SIZE, build_schedule, run_load


class TestBuildSchedule:
    def test_same_seed_same_schedule(self):
        a = build_schedule(64, 3, seed=123)
        b = build_schedule(64, 3, seed=123)
        assert a == b

    def test_different_seeds_differ(self):
        assert build_schedule(64, 3, seed=123) != build_schedule(64, 3, seed=124)

    def test_spec_coverage_is_balanced(self):
        schedule = build_schedule(64, 3, seed=7)
        counts = [0, 0, 0]
        for spec_i, slot in schedule:
            counts[spec_i] += 1
            assert 0 <= slot < POOL_SIZE
        assert max(counts) - min(counts) <= 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            build_schedule(0, 3, seed=1)
        with pytest.raises(ValueError):
            build_schedule(8, 0, seed=1)


class _RecordingServer:
    """A stand-in server that records the exact submission sequence."""

    def __init__(self):
        self.submissions: list[tuple[str, bytes, float]] = []
        self._lock = threading.Lock()

    def submit(self, problem, target):
        # The RHS bytes identify the exact pool instance (the run seed
        # alone is shared by every slot).
        with self._lock:
            self.submissions.append((problem.label, problem.b.tobytes(), target))
        future: Future = Future()

        class _Result:
            latency_s = 0.001
            plan_source = "stub"
            batch_size = 1

        future.set_result(_Result())
        return future


class TestRunLoadDeterminism:
    SPECS = [("unbiased", 3, None), ("biased", 3, None)]

    def test_submission_sequence_is_seed_deterministic(self):
        """Two runs with the same seed offer byte-identical traffic —
        with one client the full submission *order* is reproducible."""
        runs = []
        for _ in range(2):
            server = _RecordingServer()
            report = run_load(
                server, self.SPECS, requests=16, clients=1, seed=42
            )
            runs.append((server.submissions, report["schedule_digest"]))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        # Both specs actually appear in the mix.
        labels = {label for label, _, _ in runs[0][0]}
        assert labels == {"unbiased", "biased"}

    def test_different_seed_changes_the_traffic(self):
        sequences = []
        for seed in (42, 43):
            server = _RecordingServer()
            run_load(server, self.SPECS, requests=16, clients=1, seed=seed)
            sequences.append(server.submissions)
        assert sequences[0] != sequences[1]

    def test_report_carries_seed_and_digest(self):
        server = _RecordingServer()
        report = run_load(server, self.SPECS, requests=8, clients=2, seed=5)
        assert report["seed"] == 5
        assert report["completed"] == 8
        expected = build_schedule(8, len(self.SPECS), 5)
        from repro.serve.loadgen import _schedule_digest

        assert report["schedule_digest"] == _schedule_digest(expected)

    def test_multi_client_runs_complete_the_same_request_set(self):
        """Thread interleaving may reorder submissions, but the *set*
        of requests (and the digest) is identical across client counts."""
        sets = []
        for clients in (1, 4):
            server = _RecordingServer()
            report = run_load(
                server, self.SPECS, requests=24, clients=clients, seed=9
            )
            assert report["completed"] == 24
            sets.append((sorted(server.submissions), report["schedule_digest"]))
        assert sets[0] == sets[1]
