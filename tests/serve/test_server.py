"""End-to-end tests for the solve server."""

import json

import numpy as np
import pytest

from repro.core import open_server, poisson_problem, solve
from repro.serve import SolveServer
from repro.store.trialdb import TrialDB

LEVEL = 3
N = 2**LEVEL + 1


def make_server(**overrides):
    options = dict(
        machine="intel",
        store=TrialDB(":memory:"),
        workers=2,
        queue_size=32,
        batch_size=4,
        instances=1,
        seed=3,
    )
    options.update(overrides)
    return SolveServer(**options)


class TestColdPath:
    def test_first_response_is_fallback_then_swaps(self):
        with make_server() as server:
            problem = poisson_problem("unbiased", n=N, seed=7)
            first = server.solve(problem, 1e5)
            assert first.plan_source == "fallback"
            assert first.stale
            assert first.solution.shape == (N, N)
            assert server.wait_for_swaps(timeout=60)
            second = server.solve(problem, 1e5)
            assert second.plan_source == "swapped"
            assert not second.stale
            assert second.generation == first.generation + 1
            snap = server.stats()
            assert snap["counters"]["plan_swaps"] == 1
            assert snap["counters"]["fallback_served"] >= 1
            (event,) = snap["swap_events"]
            assert event["old_source"] == "fallback"
            assert event["new_source"] == "swapped"

    def test_swap_provenance_persisted_in_trial_log(self):
        db = TrialDB(":memory:")
        with make_server(store=db) as server:
            problem = poisson_problem("unbiased", n=N, seed=7)
            server.solve(problem, 1e5)
            assert server.wait_for_swaps(timeout=60)
        (trial,) = db.trials()
        provenance = json.loads(trial.plan_json)["metadata"]["serve_swap"]
        assert provenance["reason"] == "stale-while-tune"
        assert provenance["fallback_generation"] == 0
        assert provenance["stale_served_at_tune"] >= 1
        assert "unbiased" in provenance["key"]

    def test_fallback_solution_meets_target_accuracy(self):
        """The heuristic stand-in is a real trained plan, not a guess."""
        from repro.accuracy.judge import AccuracyJudge
        from repro.accuracy.reference import reference_solution

        with make_server() as server:
            problem = poisson_problem("unbiased", n=N, seed=11)
            result = server.solve(problem, 1e5)
            assert result.plan_source == "fallback"
        judge = AccuracyJudge(problem.initial_guess(), reference_solution(problem))
        # Trained on 1 instance and judged on another draw, so allow slack;
        # anything >> 1 confirms the plan actually solves.
        assert judge.accuracy_of(result.solution) > 1e2


class TestWarmPath:
    def test_warmed_key_never_serves_fallback(self):
        with make_server() as server:
            entry = server.warm("unbiased", LEVEL)
            assert entry.source == "tuned"
            result = server.solve(poisson_problem("unbiased", n=N, seed=5), 1e5)
            assert result.plan_source == "tuned"
            assert not result.stale
            assert server.stats()["counters"].get("fallback_builds", 0) == 0

    def test_warm_many(self):
        with make_server() as server:
            entries = server.warm_many([("unbiased", LEVEL, None),
                                        ("biased", LEVEL, None)])
            assert [e.source for e in entries] == ["tuned", "tuned"]
            assert len(server.cache) == 2

    def test_matches_offline_solve(self):
        """Served solutions are byte-identical to core.solve with the plan."""
        with make_server() as server:
            entry = server.warm("unbiased", LEVEL)
            problem = poisson_problem("unbiased", n=N, seed=5)
            result = server.solve(problem, 1e5)
        offline, _ = solve(entry.plan, problem, 1e5)
        np.testing.assert_array_equal(result.solution, offline)


class TestBatching:
    def test_burst_of_same_key_requests_batches(self):
        with make_server(workers=1, batch_size=8) as server:
            server.warm("unbiased", LEVEL)
            futures = [
                server.submit(poisson_problem("unbiased", n=N, seed=i), 1e5)
                for i in range(12)
            ]
            results = [f.result(timeout=60) for f in futures]
            assert all(r.plan_source == "tuned" for r in results)
            assert max(r.batch_size for r in results) > 1
            counters = server.stats()["counters"]
            assert counters["batches"] < counters["requests_completed"]
            # Hit counters are per-request even when lookups batch.
            assert counters["cache_hits"] == counters["requests_completed"] == 12

    def test_mixed_keys_bucket_separately(self):
        with make_server(workers=1, batch_size=8) as server:
            server.warm("unbiased", LEVEL)
            server.warm("biased", LEVEL)
            futures = [
                server.submit(
                    poisson_problem(dist, n=N, seed=i), 1e5
                )
                for i, dist in enumerate(["unbiased", "biased"] * 4)
            ]
            for f in futures:
                f.result(timeout=60)
            assert len(server.cache) == 2


class TestRequestValidation:
    def test_unknown_label_raises_at_submit(self):
        from repro.workloads.problem import PoissonProblem

        problem = PoissonProblem(b=np.zeros((N, N)), boundary=np.zeros(4 * N - 4))
        with make_server() as server:
            with pytest.raises(ValueError, match="distribution"):
                server.submit(problem, 1e5)

    def test_auto_distribution_classifies(self):
        from repro.workloads.problem import PoissonProblem

        rng = np.random.default_rng(0)
        scale, shift = float(2**32), float(2**31)
        biased = PoissonProblem(
            b=rng.uniform(-scale, scale, (N, N)) + shift,
            boundary=rng.uniform(-scale, scale, 4 * N - 4) + shift,
        )
        with make_server() as server:
            server.warm("biased", LEVEL)
            result = server.solve(biased, 1e5, distribution="auto")
            assert result.plan_source == "tuned"  # routed to the biased plan
            (key,) = server.cache.keys()
            assert key.distribution == "biased"

    def test_target_above_ladder_fails_that_request_only(self):
        with make_server() as server:
            server.warm("unbiased", LEVEL)
            bad = server.submit(poisson_problem("unbiased", n=N, seed=1), 1e99)
            good = server.submit(poisson_problem("unbiased", n=N, seed=2), 1e5)
            with pytest.raises(ValueError, match="ladder"):
                bad.result(timeout=60)
            assert good.result(timeout=60).solution.shape == (N, N)


class TestLifecycle:
    def test_submit_after_shutdown_raises(self):
        server = make_server()
        server.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            server.submit(poisson_problem("unbiased", n=N, seed=1), 1e5)

    def test_shutdown_is_idempotent(self):
        server = make_server()
        server.shutdown()
        server.shutdown()

    def test_open_server_facade(self):
        with open_server(
            machine="intel", store=TrialDB(":memory:"), instances=1, seed=3
        ) as server:
            assert isinstance(server, SolveServer)
            server.warm("unbiased", LEVEL)
            result = server.solve(poisson_problem("unbiased", n=N, seed=1), 1e5)
            assert result.plan_source == "tuned"

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            make_server(workers=0)


class TestLoadGenerator:
    def test_run_load_report(self):
        from repro.serve import run_load

        with make_server() as server:
            server.warm("unbiased", LEVEL)
            report = run_load(
                server, [("unbiased", LEVEL, None)], requests=10, clients=2
            )
        assert report["completed"] == 10
        assert report["throughput_rps"] > 0
        assert report["p50_s"] <= report["p95_s"] <= report["p99_s"] <= report["max_s"]
        assert report["sources"] == {"tuned": 10}

    def test_run_load_validates(self):
        from repro.serve import run_load

        with make_server() as server:
            with pytest.raises(ValueError):
                run_load(server, [("unbiased", LEVEL, None)], requests=0)
            with pytest.raises(ValueError):
                run_load(server, [("unbiased", LEVEL, None)], clients=0)
