"""Saturation, drain, and hot-swap semantics — the serve/runtime interplay.

Covers the serving runtime's three hard guarantees:

* queue saturation rejects with the typed
  :class:`~repro.serve.batching.Backpressure` error (admission control,
  not blocking);
* ``shutdown(drain=True)`` completes every admitted request;
* a hot swap mid-stream never yields a torn plan — every solution is
  byte-identical to one produced by a *whole* plan (fallback or tuned),
  verified by golden-hashing solutions against offline solves, including
  when batches execute on the work-stealing scheduler from
  :mod:`repro.runtime.scheduler`.
"""

import concurrent.futures
import hashlib
import threading

import numpy as np
import pytest

from repro.core import poisson_problem, solve
from repro.runtime.scheduler import SerialScheduler, WorkStealingScheduler
from repro.serve import Backpressure, SolveServer
from repro.store.trialdb import TrialDB

LEVEL = 3
N = 2**LEVEL + 1


def make_server(**overrides):
    options = dict(
        machine="intel",
        store=TrialDB(":memory:"),
        workers=1,
        queue_size=4,
        batch_size=2,
        instances=1,
        seed=3,
    )
    options.update(overrides)
    return SolveServer(**options)


def gate_cache(server):
    """Block the worker inside its next cache access until released."""
    gate = threading.Event()
    entered = threading.Event()
    original = server.cache.get_or_fallback

    def gated(profile, key, count=1):
        entered.set()
        gate.wait(timeout=30)
        return original(profile, key, count)

    server.cache.get_or_fallback = gated
    return gate, entered


def solution_hash(x) -> str:
    return hashlib.sha256(np.ascontiguousarray(x).tobytes()).hexdigest()


class TestBackpressure:
    def test_saturated_queue_rejects_with_typed_error(self):
        server = make_server(workers=1, queue_size=2)
        gate, entered = gate_cache(server)
        try:
            held = [server.submit(poisson_problem("unbiased", n=N, seed=0), 1e5)]
            entered.wait(timeout=10)  # the worker holds request 0
            held += [
                server.submit(poisson_problem("unbiased", n=N, seed=i), 1e5)
                for i in (1, 2)  # fill the 2-slot queue
            ]
            with pytest.raises(Backpressure) as err:
                server.submit(poisson_problem("unbiased", n=N, seed=99), 1e5)
            assert err.value.capacity == 2
            assert server.stats()["counters"]["requests_rejected"] == 1
        finally:
            gate.set()
            server.shutdown(drain=True)
        # Every admitted request still completed.
        assert all(f.result(timeout=60) is not None for f in held)

    def test_rejection_does_not_poison_the_server(self):
        server = make_server(workers=1, queue_size=1)
        gate, entered = gate_cache(server)
        try:
            first = server.submit(poisson_problem("unbiased", n=N, seed=0), 1e5)
            entered.wait(timeout=10)
            blocked = server.submit(poisson_problem("unbiased", n=N, seed=1), 1e5)
            with pytest.raises(Backpressure):
                server.submit(poisson_problem("unbiased", n=N, seed=2), 1e5)
        finally:
            gate.set()
        assert first.result(timeout=60) and blocked.result(timeout=60)
        # After the backlog clears, new submissions are admitted again.
        retry = server.submit(poisson_problem("unbiased", n=N, seed=2), 1e5)
        assert retry.result(timeout=60).solution.shape == (N, N)
        server.shutdown(drain=True)


class TestDrain:
    def test_shutdown_drains_in_flight_requests(self):
        server = make_server(workers=2, queue_size=16)
        gate, entered = gate_cache(server)
        futures = [
            server.submit(poisson_problem("unbiased", n=N, seed=i), 1e5)
            for i in range(8)
        ]
        entered.wait(timeout=10)

        releaser = threading.Timer(0.05, gate.set)
        releaser.start()
        try:
            server.shutdown(drain=True, timeout=60)
        finally:
            releaser.cancel()
            gate.set()
        assert all(f.done() for f in futures)
        results = [f.result(timeout=1) for f in futures]
        assert all(r.solution.shape == (N, N) for r in results)
        assert server.stats()["counters"]["requests_completed"] == 8

    def test_shutdown_without_drain_cancels_queued(self):
        server = make_server(workers=1, queue_size=16)
        gate, entered = gate_cache(server)
        futures = [
            server.submit(poisson_problem("unbiased", n=N, seed=i), 1e5)
            for i in range(6)
        ]
        entered.wait(timeout=10)
        releaser = threading.Timer(0.05, gate.set)
        releaser.start()
        try:
            server.shutdown(drain=False)
        finally:
            releaser.cancel()
            gate.set()
        concurrent.futures.wait(futures, timeout=30)
        done = sum(1 for f in futures if f.done() and not f.cancelled())
        cancelled = sum(1 for f in futures if f.cancelled())
        # Whatever was still queued was cancelled, not silently dropped.
        assert cancelled >= 1
        assert done + cancelled == len(futures)


class TestHotSwapNeverTearsPlans:
    @pytest.mark.parametrize(
        "scheduler", [None, SerialScheduler(), WorkStealingScheduler(workers=2, seed=0)]
    )
    def test_mid_stream_swap_golden_hashes(self, scheduler):
        """Stream requests across a background swap; every solution must
        match one of the two whole plans, never a mixture."""
        db = TrialDB(":memory:")
        problem = poisson_problem("unbiased", n=N, seed=21)
        with make_server(
            store=db, workers=2, queue_size=64, batch_size=4, scheduler=scheduler
        ) as server:
            futures = [server.submit(problem, 1e5) for _ in range(20)]
            # Ensure the fallback actually served (scheduling the
            # background tune), then let the swap land mid-stream.
            assert futures[0].result(timeout=60).plan_source == "fallback"
            assert server.wait_for_swaps(timeout=60)
            futures += [server.submit(problem, 1e5) for _ in range(40)]
            results = [f.result(timeout=60) for f in futures]
            sources = {r.plan_source for r in results}
            assert "fallback" in sources  # early requests rode the heuristic
            assert "swapped" in sources or "exact" in sources

            # Golden hashes: offline solves with each whole plan.
            key = server.cache.key_for(
                server.profile, problem.operator, LEVEL, "unbiased"
            )
            tuned_entry = server.cache.lookup(key)
        from repro.serve.cache import PlanCache

        fallback_cache = PlanCache(
            server.registry, instances=1, seed=3, telemetry=None
        )
        fallback_plan = fallback_cache._fallback_plan(server.profile, key)
        golden = {
            "fallback": solution_hash(solve(fallback_plan, problem, 1e5)[0]),
            "tuned": solution_hash(solve(tuned_entry.plan, problem, 1e5)[0]),
        }
        for result in results:
            digest = solution_hash(result.solution)
            expected = "fallback" if result.plan_source == "fallback" else "tuned"
            assert digest == golden[expected], (
                f"torn plan: a {result.plan_source} response matched neither "
                f"whole-plan golden hash"
            )

    def test_mid_stream_swap_preserves_3d_solution_hashes(self):
        """The stale-while-tune cycle on a 3-D workload class: every
        streamed solution byte-matches a whole-plan offline solve."""
        db = TrialDB(":memory:")
        problem = poisson_problem("unbiased", n=N, seed=33, operator="poisson3d")
        with make_server(store=db, workers=2, queue_size=64, batch_size=4) as server:
            futures = [server.submit(problem, 1e5) for _ in range(10)]
            assert futures[0].result(timeout=60).plan_source == "fallback"
            assert server.wait_for_swaps(timeout=120)
            futures += [server.submit(problem, 1e5) for _ in range(10)]
            results = [f.result(timeout=60) for f in futures]
            sources = {r.plan_source for r in results}
            assert "fallback" in sources
            assert "swapped" in sources or "exact" in sources
            key = server.cache.key_for(
                server.profile, problem.operator, LEVEL, "unbiased"
            )
            assert key.ndim == 3
            tuned_entry = server.cache.lookup(key)
        from repro.serve.cache import PlanCache

        fallback_cache = PlanCache(server.registry, instances=1, seed=3, telemetry=None)
        fallback_plan = fallback_cache._fallback_plan(server.profile, key)
        assert fallback_plan.ndim == 3 and tuned_entry.plan.ndim == 3
        golden = {
            "fallback": solution_hash(solve(fallback_plan, problem, 1e5)[0]),
            "tuned": solution_hash(solve(tuned_entry.plan, problem, 1e5)[0]),
        }
        for result in results:
            digest = solution_hash(result.solution)
            expected = "fallback" if result.plan_source == "fallback" else "tuned"
            assert digest == golden[expected], (
                f"torn plan: a {result.plan_source} 3-D response matched "
                f"neither whole-plan golden hash"
            )

    def test_scheduler_batches_match_sequential_results(self):
        """The work-stealing path returns byte-identical solutions."""
        problems = [poisson_problem("unbiased", n=N, seed=i) for i in range(6)]
        outputs = {}
        for name, scheduler in (
            ("sequential", None),
            ("workstealing", WorkStealingScheduler(workers=3, seed=1)),
        ):
            with make_server(
                workers=1, queue_size=16, batch_size=8, scheduler=scheduler
            ) as server:
                server.warm("unbiased", LEVEL)
                futures = [server.submit(p, 1e5) for p in problems]
                outputs[name] = [
                    solution_hash(f.result(timeout=60).solution) for f in futures
                ]
        assert outputs["sequential"] == outputs["workstealing"]
