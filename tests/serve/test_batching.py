"""Tests for the bounded request queue and same-key micro-batching."""

import threading

import pytest

from repro.serve.batching import Backpressure, RequestQueue


class TestAdmissionControl:
    def test_put_returns_depth(self):
        q = RequestQueue(4)
        assert q.put("a", 1) == 1
        assert q.put("a", 2) == 2
        assert q.depth() == 2

    def test_backpressure_is_typed_and_carries_capacity(self):
        q = RequestQueue(2)
        q.put("a", 1)
        q.put("a", 2)
        with pytest.raises(Backpressure) as err:
            q.put("a", 3)
        assert err.value.depth == 2
        assert err.value.capacity == 2
        assert isinstance(err.value, RuntimeError)

    def test_closed_queue_rejects_puts(self):
        q = RequestQueue(2)
        q.close()
        with pytest.raises(RuntimeError, match="closed"):
            q.put("a", 1)


class TestBatching:
    def test_same_key_requests_batch_together(self):
        q = RequestQueue(10)
        for i, key in enumerate(["a", "b", "a", "a", "b"]):
            q.put(key, (key, i))
        batch = q.take_batch(max_size=8)
        assert batch == [("a", 0), ("a", 2), ("a", 3)]
        # Other keys kept their FIFO order.
        assert q.take_batch(max_size=8) == [("b", 1), ("b", 4)]

    def test_batch_cap_respected(self):
        q = RequestQueue(10)
        for i in range(5):
            q.put("a", i)
        assert q.take_batch(max_size=2) == [0, 1]
        assert q.take_batch(max_size=2) == [2, 3]
        assert q.take_batch(max_size=2) == [4]

    def test_batch_size_one_preserves_order(self):
        q = RequestQueue(10)
        for i, key in enumerate(["a", "b", "a"]):
            q.put(key, i)
        assert q.take_batch(max_size=1) == [0]
        assert q.take_batch(max_size=1) == [1]
        assert q.take_batch(max_size=1) == [2]

    def test_timeout_returns_empty_list(self):
        q = RequestQueue(2)
        assert q.take_batch(max_size=4, timeout=0.01) == []

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            RequestQueue(0)
        q = RequestQueue(2)
        with pytest.raises(ValueError):
            q.take_batch(0)


class TestCloseSemantics:
    def test_closed_and_drained_returns_none(self):
        q = RequestQueue(4)
        q.put("a", 1)
        q.close()
        assert q.take_batch(4) == [1]  # drains what was admitted
        assert q.take_batch(4, timeout=0.01) is None

    def test_close_wakes_blocked_taker(self):
        q = RequestQueue(4)
        out = []

        def taker():
            out.append(q.take_batch(4, timeout=10.0))

        thread = threading.Thread(target=taker)
        thread.start()
        q.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert out == [None]

    def test_drain_empties_queue(self):
        q = RequestQueue(4)
        q.put("a", 1)
        q.put("b", 2)
        assert q.drain() == [1, 2]
        assert q.depth() == 0
