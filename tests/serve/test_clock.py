"""Deterministic serve timing via the injectable clock.

The server measures queue wait, solve time, and end-to-end latency on
its injected :class:`~repro.util.clock.Clock`.  With a
:class:`ManualClock` the tests control exactly how much "time" each
phase takes, so the telemetry assertions are equalities, not
sleep-and-hope windows — the de-flake contract for every
timing-dependent serve/telemetry test.
"""

import threading

import pytest

from repro.core import poisson_problem
from repro.serve import SolveServer
from repro.store.trialdb import TrialDB
from repro.util.clock import MONOTONIC_CLOCK, ManualClock, MonotonicClock


class TestManualClock:
    def test_advance_and_sleep_are_virtual(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        clock.sleep(2.5)
        assert clock.now() == 12.5
        assert clock.advance(0.5) == 13.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        a = clock.now()
        assert clock.now() >= a
        assert MONOTONIC_CLOCK.now() >= 0.0


class TestServerTimingIsDeterministic:
    def test_request_latency_equals_manual_advances(self):
        """Block the solve, advance the clock by exactly 1.5 virtual
        seconds, release: the reported latency must be exactly 1.5."""
        from repro.tuner.executor import PlanExecutor

        clock = ManualClock()
        entered = threading.Event()
        gate = threading.Event()
        original = PlanExecutor.run_v

        def gated_run_v(self, *args, **kwargs):
            entered.set()
            assert gate.wait(timeout=30)
            return original(self, *args, **kwargs)

        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3, clock=clock,
        )
        try:
            server.warm("unbiased", 3)  # no background tune in play
            problem = poisson_problem("unbiased", n=9, seed=1)
            import unittest.mock as mock

            with mock.patch.object(PlanExecutor, "run_v", gated_run_v):
                future = server.submit(problem, 1e5)
                assert entered.wait(timeout=30)
                clock.advance(1.5)
                gate.set()
                result = future.result(timeout=60)
            assert result.latency_s == pytest.approx(1.5)
            snap = server.stats()
            hist = snap["latency"]["request_latency"]
            assert hist["count"] == 1
            assert hist["max_s"] == pytest.approx(1.5)
            # The solve itself saw the same 1.5 virtual seconds...
            assert snap["latency"]["solve"]["max_s"] == pytest.approx(1.5)
            # ...and nothing else ever advanced the clock.
            assert clock.now() == pytest.approx(1.5)
        finally:
            server.shutdown(drain=True, timeout=30)

    def test_queue_wait_is_zero_without_advances(self):
        clock = ManualClock()
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3, clock=clock,
        )
        try:
            server.warm("unbiased", 3)
            problem = poisson_problem("unbiased", n=9, seed=2)
            result = server.solve(problem, 1e5, timeout=60)
            assert result.latency_s == 0.0
            snap = server.stats()
            assert snap["latency"]["queue_wait"]["max_s"] == 0.0
            assert snap["latency"]["request_latency"]["max_s"] == 0.0
        finally:
            server.shutdown(drain=True, timeout=30)

    def test_wait_for_swaps_returns_immediately_when_idle(self):
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3,
        )
        try:
            import time

            start = time.monotonic()
            assert server.wait_for_swaps(timeout=30.0)
            # Condition-based wait: no sleep-poll tick is ever paid.
            assert time.monotonic() - start < 1.0
        finally:
            server.shutdown(drain=True, timeout=30)


class TestLoadgenClock:
    def test_report_wall_time_uses_injected_clock(self):
        from repro.serve.loadgen import run_load

        clock = ManualClock(start=100.0)
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=2,
            instances=1, seed=3,
        )
        try:
            server.warm("unbiased", 3)
            report = run_load(
                server, [("unbiased", 3, None)], requests=4, clients=2,
                clock=clock,
            )
            assert report["completed"] == 4
            # The manual clock never advanced, so measured wall time is 0
            # and the throughput guard must have handled it gracefully.
            assert report["wall_seconds"] == 0.0
        finally:
            server.shutdown(drain=True, timeout=30)
