"""Tests for the serving plan cache (stale-while-tune semantics)."""

import pytest

from repro.machines.presets import AMD_BARCELONA, INTEL_HARPERTOWN
from repro.serve.cache import PlanCache, ServeKey
from repro.store.registry import PlanRegistry
from repro.store.trialdb import TrialDB


@pytest.fixture
def registry():
    return PlanRegistry(TrialDB(":memory:"))


@pytest.fixture
def cache(registry):
    return PlanCache(registry, instances=1, seed=3)


class TestServeKey:
    def test_operator_normalized(self):
        key = ServeKey("fp", None, 3, "unbiased")
        assert key.operator == "poisson"
        spelled = ServeKey("fp", "anisotropic(epsilon=1e-2)", 3, "unbiased")
        canonical = ServeKey("fp", "anisotropic(epsilon=0.01)", 3, "unbiased")
        assert spelled == canonical

    def test_label_mentions_every_field(self):
        key = ServeKey("fp-abc", "poisson", 4, "biased")
        assert "fp-abc" in key.label()
        assert "L4" in key.label()
        assert "biased" in key.label()


class TestWarm:
    def test_warm_tunes_and_caches(self, cache, registry):
        entry = cache.warm(INTEL_HARPERTOWN, "unbiased", 3)
        assert entry.source == "tuned"
        assert not entry.stale
        assert len(registry) == 1
        # Warming again is a no-op lookup (no second tune).
        again = cache.warm(INTEL_HARPERTOWN, "unbiased", 3)
        assert again is entry
        assert registry.db.count_trials() == 1

    def test_warm_key_serves_without_fallback(self, cache):
        cache.warm(INTEL_HARPERTOWN, "unbiased", 3)
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        entry = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert entry.source == "tuned"
        assert not entry.stale


class TestFallback:
    def test_cold_key_serves_heuristic_and_marks_stale(self, cache):
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        entry = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert entry.source == "fallback"
        assert entry.stale
        assert entry.plan.metadata.get("serve_fallback") is True
        assert entry.plan.metadata.get("heuristic", "").startswith("Strategy")
        # The fallback never touches the registry's plans table.
        assert len(cache.registry) == 0

    def test_fallback_cached_not_rebuilt(self, cache):
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        first = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        second = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert second is first
        assert second.serve_count() == 2
        assert cache.telemetry.counter("fallback_builds") == 1

    def test_registry_exact_hit_prefers_stored_plan(self, cache, registry):
        registry.get_or_tune(
            INTEL_HARPERTOWN, cache.tune_key(
                cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
            )
        )
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        entry = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert entry.source == "exact"
        assert not entry.stale

    def test_nearest_profile_serves_without_fallback(self, cache, registry):
        registry.get_or_tune(
            INTEL_HARPERTOWN, cache.tune_key(
                cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
            )
        )
        key = cache.key_for(AMD_BARCELONA, None, 3, "unbiased")
        entry = cache.get_or_fallback(AMD_BARCELONA, key)
        assert entry.source == "nearest"
        assert not entry.stale

    def test_allow_nearest_false_falls_back_instead(self, registry):
        cache = PlanCache(registry, instances=1, seed=3, allow_nearest=False)
        registry.get_or_tune(
            INTEL_HARPERTOWN, cache.tune_key(
                cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
            )
        )
        key = cache.key_for(AMD_BARCELONA, None, 3, "unbiased")
        entry = cache.get_or_fallback(AMD_BARCELONA, key)
        assert entry.source == "fallback"


class TestSwap:
    def test_swap_bumps_generation_and_records_event(self, cache, registry):
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        stale = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert stale.generation == 0
        hit = registry.get_or_tune(INTEL_HARPERTOWN, cache.tune_key(key))
        swapped = cache.swap(key, hit.plan, source="swapped", plan_json=hit.plan_json)
        assert swapped.generation == 1
        assert not swapped.stale
        assert cache.lookup(key) is swapped
        (event,) = cache.telemetry.swap_events
        assert event.old_source == "fallback"
        assert event.new_source == "swapped"
        assert event.stale_served == 1

    def test_old_entry_remains_usable_after_swap(self, cache, registry):
        """Readers holding the pre-swap entry keep a coherent plan."""
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        stale = cache.get_or_fallback(INTEL_HARPERTOWN, key)
        held_plan = stale.plan
        hit = registry.get_or_tune(INTEL_HARPERTOWN, cache.tune_key(key))
        cache.swap(key, hit.plan)
        # The held entry is untouched: same plan object, still executable.
        assert stale.plan is held_plan
        assert stale.plan.choice(3, 0) is not None

    def test_keys_and_len(self, cache):
        assert len(cache) == 0
        key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        cache.get_or_fallback(INTEL_HARPERTOWN, key)
        assert len(cache) == 1
        assert cache.keys() == [key]


class TestLockFreeWarmHits:
    def test_warm_lookups_never_block_on_a_stuck_miss(self, cache):
        """The sharded tier's hot path guarantee: a miss that is stuck
        inside a registry lookup (holding its per-key build lock) must
        not delay concurrent warm-key readers — the warm-hit path takes
        no cache-wide lock at all."""
        import threading

        cache.warm(INTEL_HARPERTOWN, "unbiased", 3)
        warm_key = cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")
        cold_key = cache.key_for(INTEL_HARPERTOWN, None, 4, "biased")

        miss_entered = threading.Event()
        release_miss = threading.Event()
        original_get = cache.registry.get

        def stuck_get(*args, **kwargs):
            miss_entered.set()
            assert release_miss.wait(timeout=30)
            return original_get(*args, **kwargs)

        cache.registry.get = stuck_get  # instance shadow; scoped to this test
        try:
            miss = threading.Thread(
                target=cache.get_or_fallback, args=(INTEL_HARPERTOWN, cold_key)
            )
            miss.start()
            assert miss_entered.wait(timeout=30)
            # The miss now sits inside the registry with its build lock
            # held.  Warm hits from many threads must all finish without
            # waiting for it.
            results: list[object] = []

            def warm_hit():
                results.append(cache.get_or_fallback(INTEL_HARPERTOWN, warm_key))

            readers = [threading.Thread(target=warm_hit) for _ in range(8)]
            for reader in readers:
                reader.start()
            for reader in readers:
                reader.join(timeout=10)
                assert not reader.is_alive(), "warm hit blocked behind a miss"
            assert len(results) == 8
            assert all(entry.source == "tuned" for entry in results)
            assert cache.telemetry.counter("cache_hits") >= 8
        finally:
            release_miss.set()
            miss.join(timeout=30)
            del cache.registry.get
        assert not miss.is_alive()
        assert cache.lookup(cold_key) is not None
