"""SLO-driven plan selection: breach -> degrade, recovery -> restore.

The ISSUE contract, pinned deterministically: when a workload class's
sliding-window p99 breaches the configured SLO the server hot-swaps the
class to its lower-accuracy tuned plan (the accuracy ladder capped
``slo_degrade_rungs`` below the top) within one telemetry window, and
swaps the full-accuracy plan back once the window recovers.  Both swaps
are stamped into the trial log with ``serve_swap`` provenance.

Determinism comes from the injectable :class:`ManualClock`: solve
durations are *scripted* — a patched ``PlanExecutor.run_v`` advances
the clock by a chosen amount per request — so the windowed p99 is an
exact number, not a racy measurement.
"""

import json
import threading
import unittest.mock as mock

import pytest

from repro.core import poisson_problem
from repro.serve import SolveServer
from repro.store.trialdb import TrialDB
from repro.tuner.executor import PlanExecutor
from repro.util.clock import ManualClock

SLO_P99_S = 0.5
WINDOW_S = 5.0
MIN_SAMPLES = 4


@pytest.fixture
def db():
    return TrialDB(":memory:")


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def server(db, clock):
    server = SolveServer(
        machine="intel",
        store=db,
        workers=1,
        instances=1,
        seed=3,
        clock=clock,
        slo_p99_s=SLO_P99_S,
        slo_window_s=WINDOW_S,
        slo_min_samples=MIN_SAMPLES,
        slo_recovery_fraction=0.8,
        slo_degrade_rungs=1,
    )
    server.warm("unbiased", 3)
    yield server
    server.shutdown(drain=True, timeout=30)


def _scripted_run_v(clock: ManualClock):
    """A ``run_v`` replacement that advances the clock by a scripted
    virtual duration per solve (0.0 once the script runs out).  Must be
    a plain function so attribute access binds the executor as usual.
    """
    durations: list[float] = []
    lock = threading.Lock()
    original = PlanExecutor.run_v

    def run_v(self, *args, **kwargs):
        with lock:
            duration = durations.pop(0) if durations else 0.0
        if duration:
            clock.advance(duration)
        return original(self, *args, **kwargs)

    run_v.durations = durations  # type: ignore[attr-defined]
    return run_v


def _serve_swaps(db: TrialDB) -> list[dict]:
    """The ``serve_swap`` provenance payloads in the trial log, in order."""
    swaps = []
    for record in db.trials():
        provenance = json.loads(record.provenance or "{}")
        if "serve_swap" in provenance:
            swaps.append(provenance["serve_swap"])
    return swaps


class TestBreachDegradesWithinOneWindow:
    def test_breach_recovery_roundtrip_is_stamped_into_provenance(
        self, server, db, clock
    ):
        key = server.cache.key_for(server.profile, None, 3, "unbiased")
        baseline = server.cache.lookup(key)
        assert baseline is not None and not baseline.degraded
        problem = poisson_problem("unbiased", n=9, seed=1)
        scripted = _scripted_run_v(clock)

        with mock.patch.object(PlanExecutor, "run_v", scripted):
            # --- breach: min_samples slow requests fill the window ----
            scripted.durations.extend([1.0] * MIN_SAMPLES)
            for _ in range(MIN_SAMPLES):
                server.solve(problem, 1e5, timeout=60)
            # The swap landed with the breaching sample itself — within
            # the window, not on some later checkpoint.
            entry = server.cache.lookup(key)
            assert entry.degraded
            assert entry.source == "slo_degraded"
            assert entry.generation == baseline.generation + 1
            # rungs=1 below the 5-rung default ladder's top index 4
            assert entry.accuracy_cap == entry.plan.num_accuracies - 2
            assert server.telemetry.counter("slo_breaches") == 1

            # --- degraded serving: top-rung requests pay one fewer rung
            result = server.solve(problem, 1e9, timeout=60)
            assert result.plan_source == "slo_degraded"
            assert server.telemetry.counter("degraded_served") == 1

            # --- recovery: age the slow samples out, serve fast -------
            clock.advance(WINDOW_S + 1.0)
            scripted.durations.extend([0.001] * MIN_SAMPLES)
            for _ in range(MIN_SAMPLES):
                server.solve(problem, 1e5, timeout=60)
            restored = server.cache.lookup(key)
            assert not restored.degraded
            assert restored.source == "slo_restored"
            assert restored.accuracy_cap is None
            assert restored.generation == baseline.generation + 2
            assert server.telemetry.counter("slo_recoveries") == 1
            # Back at full accuracy: no further degraded serves.
            server.solve(problem, 1e9, timeout=60)
            assert server.telemetry.counter("degraded_served") == 1

        # --- provenance: both swaps are durable trial rows ------------
        swaps = _serve_swaps(db)
        assert [swap["reason"] for swap in swaps] == [
            "slo-breach", "slo-recovered",
        ]
        breach, recovered = swaps
        assert breach["key"] == key.label() == recovered["key"]
        assert breach["accuracy_cap"] == entry.accuracy_cap
        assert breach["observed_p99_s"] == pytest.approx(1.0)
        assert breach["target_p99_s"] == SLO_P99_S
        assert recovered["accuracy_cap"] is None
        assert recovered["observed_p99_s"] <= 0.8 * SLO_P99_S
        assert recovered["generation"] == breach["generation"] + 1

    def test_single_outlier_never_flips_the_plan(self, server, db, clock):
        key = server.cache.key_for(server.profile, None, 3, "unbiased")
        problem = poisson_problem("unbiased", n=9, seed=1)
        scripted = _scripted_run_v(clock)
        with mock.patch.object(PlanExecutor, "run_v", scripted):
            # One catastrophic request, below min_samples: hold steady.
            scripted.durations.append(50.0)
            server.solve(problem, 1e5, timeout=60)
            assert not server.cache.lookup(key).degraded
            assert server.telemetry.counter("slo_breaches") == 0
        assert _serve_swaps(db) == []

    def test_degraded_plan_is_the_tuned_plan_at_a_capped_rung(
        self, server, clock
    ):
        """The degraded entry is the *same tuned plan* run at a capped
        rung — its low-accuracy answer, not a different algorithm."""
        import numpy as np

        problem = poisson_problem("unbiased", n=9, seed=1)
        scripted = _scripted_run_v(clock)
        with mock.patch.object(PlanExecutor, "run_v", scripted):
            scripted.durations.extend([1.0] * MIN_SAMPLES)
            for _ in range(MIN_SAMPLES):
                server.solve(problem, 1e5, timeout=60)
        key = server.cache.key_for(server.profile, None, 3, "unbiased")
        entry = server.cache.lookup(key)
        assert entry.degraded
        # A top-rung request under the cap must produce bit-for-bit the
        # plan's own answer at the capped rung's accuracy target.
        capped_accuracy = entry.plan.accuracies[entry.accuracy_cap]
        degraded = server.solve(problem, 1e9, timeout=60).solution
        uncapped_same_rung = server.solve(
            problem, capped_accuracy, timeout=60
        ).solution
        assert np.array_equal(degraded, uncapped_same_rung)
