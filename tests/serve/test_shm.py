"""Zero-copy shared-memory payload transport (:mod:`repro.serve.shm`).

The sharded serving tier's contract is that grid arrays cross the
process boundary as *views over shared pages*, never as copies or
pickles — these tests pin the view identity (``np.shares_memory``),
the slot layout roundtrip, the pool's admission-control semantics, and
the read-only request-side discipline that lets ``PoissonProblem``
share the views without copying.
"""

import numpy as np
import pytest

from repro.core import poisson_problem
from repro.serve.shm import (
    ShmAttachments,
    SlotLayout,
    SlotPool,
    attach_problem,
    attach_shared_memory,
    reset_solution,
)


class TestSlotLayout:
    def test_offsets_partition_the_slot(self):
        layout = SlotLayout((9, 9))
        assert layout.b_offset == 0
        assert layout.boundary_offset == layout.grid_nbytes
        assert layout.x_offset == layout.grid_nbytes + layout.boundary_nbytes
        assert layout.slot_nbytes == 2 * layout.grid_nbytes + layout.boundary_nbytes

    def test_3d_shapes_supported(self):
        layout = SlotLayout((9, 9, 9))
        assert layout.ndim == 3
        assert layout.grid_nbytes == 9**3 * 8

    def test_non_cube_rejected(self):
        with pytest.raises(ValueError, match="cube"):
            SlotLayout((9, 17))

    def test_views_roundtrip_and_are_disjoint(self):
        pool = SlotPool((9, 9), slots=2)
        try:
            b0, bd0, x0 = pool.views(0)
            b1, _, _ = pool.views(1)
            b0[:] = 1.0
            bd0[:] = 2.0
            x0[:] = 3.0
            # Re-deriving the views sees the same bytes (same pages)...
            b0b, bd0b, x0b = pool.views(0)
            assert np.array_equal(b0b, b0)
            assert np.array_equal(bd0b, bd0)
            assert np.array_equal(x0b, x0)
            # ...regions and slots never overlap.
            assert not np.shares_memory(b0, x0)
            assert not np.shares_memory(b0, b1)
            assert np.all(b1 == 0.0)
        finally:
            pool.close()


class TestSlotPool:
    def test_acquire_release_exhaustion(self):
        pool = SlotPool((9, 9), slots=2)
        try:
            a, b = pool.acquire(), pool.acquire()
            assert {a, b} == {0, 1}
            assert pool.acquire() is None  # exhausted: admission control
            assert pool.in_use() == 2
            pool.release(a)
            assert pool.acquire() == a
        finally:
            pool.close()

    def test_release_rejects_free_or_bogus_slots(self):
        pool = SlotPool((9, 9), slots=1)
        try:
            with pytest.raises(ValueError):
                pool.release(0)  # never acquired
            with pytest.raises(ValueError):
                pool.release(7)  # out of range
        finally:
            pool.close()

    def test_close_is_idempotent_and_disables_acquire(self):
        pool = SlotPool((9, 9), slots=1)
        pool.close()
        pool.close()
        assert pool.acquire() is None

    def test_payload_roundtrip_preserves_bytes(self):
        problem = poisson_problem("unbiased", n=9, seed=5)
        pool = SlotPool((9, 9), slots=1)
        try:
            slot = pool.acquire()
            pool.write_payload(slot, problem)
            b, boundary, _ = pool.views(slot)
            assert np.array_equal(b, problem.b)
            assert np.array_equal(boundary, problem.boundary)
        finally:
            pool.close()


class TestZeroCopyAttachment:
    def test_attach_problem_shares_pages_and_is_read_only(self):
        source = poisson_problem("unbiased", n=9, seed=7)
        pool = SlotPool((9, 9), slots=1)
        try:
            slot = pool.acquire()
            pool.write_payload(slot, source)
            pool_b, _, _ = pool.views(slot)
            problem, x = attach_problem(
                pool._shm.buf, slot, (9, 9), "poisson", "unbiased"
            )
            # The zero-copy contract: the problem's arrays ARE the slot.
            assert np.shares_memory(problem.b, pool_b)
            assert not problem.b.flags.writeable
            assert not problem.boundary.flags.writeable
            assert x.flags.writeable
            assert np.array_equal(problem.b, source.b)
            # The solve-in-place region is visible to the owner side.
            x.fill(42.0)
            assert pool.read_solution(slot)[0, 0] == 42.0
        finally:
            pool.close()

    def test_read_solution_returns_a_private_copy(self):
        pool = SlotPool((9, 9), slots=1)
        try:
            slot = pool.acquire()
            _, _, x = pool.views(slot)
            x.fill(1.0)
            out = pool.read_solution(slot)
            assert not np.shares_memory(out, x)
            x.fill(2.0)
            assert np.all(out == 1.0)
        finally:
            pool.close()

    def test_reset_solution_matches_initial_guess(self):
        problem = poisson_problem("unbiased", n=9, seed=3)
        x = np.ones_like(problem.b)
        reset_solution(x, problem.boundary)
        assert np.array_equal(x, problem.initial_guess())


class TestAttachments:
    def test_attach_by_name_and_cache(self):
        pool = SlotPool((9, 9), slots=1)
        attachments = ShmAttachments()
        try:
            slot = pool.acquire()
            _, _, x = pool.views(slot)
            x.fill(9.0)
            buf = attachments.buffer(pool.name)
            assert attachments.buffer(pool.name) is buf  # cached
            _, _, x_view = SlotLayout((9, 9)).views(buf, slot)
            assert np.all(x_view == 9.0)
            del buf, x_view
        finally:
            attachments.close()
            pool.close()

    def test_attach_does_not_adopt_lifetime(self):
        # Attaching and closing again must leave the owner's segment
        # intact (the CPython resource-tracker pitfall, gh-82300).
        pool = SlotPool((9, 9), slots=1)
        try:
            shm = attach_shared_memory(pool.name)
            shm.close()
            slot = pool.acquire()
            _, _, x = pool.views(slot)
            x.fill(1.0)  # still mapped and writable
            assert pool.read_solution(slot)[0, 0] == 1.0
        finally:
            pool.close()
