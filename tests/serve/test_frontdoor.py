"""The sharded front door: end-to-end, crash recovery, scaling.

These tests spawn real worker processes.  Grids stay tiny (level 3)
because process spawn + import dominates the wall clock, not solves.

The crash test is the serving twin of the fleet's SIGKILL-mid-lease
test: one shard worker is SIGSTOPped (so requests provably queue on
it), then SIGKILLed mid-stream; the front door must re-route to a
respawned worker with **no request lost and none answered twice**, and
the telemetry must record the restart.  Payloads survive because they
live in the front door's shared memory, not in the dead process.
"""

import os
import signal

import numpy as np
import pytest

from repro.core import open_server, poisson_problem
from repro.serve import Backpressure, FrontDoor, SolveServer
from repro.serve.sharding import Autoscaler
from repro.store.trialdb import TrialDB
from repro.util.clock import ManualClock
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

LEVEL = 3
N = size_of_level(LEVEL)


def _problems(count: int, dist: str = "unbiased", operator=None):
    return [
        make_problem(dist, N, 11, index=i, operator=operator)
        for i in range(count)
    ]


class TestEndToEnd:
    def test_sharded_solutions_match_single_process_golden(self, tmp_path):
        """The zero-copy transport is bit-transparent: a request routed
        through shared memory and a worker process must produce the
        exact bytes the in-process server produces from the same plan."""
        store = str(tmp_path / "store.sqlite")
        problems_2d = _problems(3)
        problems_3d = _problems(2, operator="poisson3d")

        single = SolveServer(machine="intel", store=TrialDB(store), instances=1, seed=3)
        try:
            single.warm("unbiased", LEVEL)
            single.warm("unbiased", LEVEL, "poisson3d")
            golden = [single.solve(p, 1e5).solution for p in problems_2d]
            golden += [single.solve(p, 1e5).solution for p in problems_3d]
        finally:
            single.shutdown(drain=True)

        with FrontDoor(
            shards=2, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            futures = [door.submit(p, 1e5) for p in problems_2d + problems_3d]
            results = [f.result(timeout=120) for f in futures]
        for result, expected in zip(results, golden):
            assert np.array_equal(result.solution, expected)
        # Plans came from the shared store, not a re-tune.
        assert all(r.plan_source in ("exact", "stored", "tuned") for r in results)

    def test_routing_is_sticky_and_classes_spread(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=2, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            two_d = [
                door.submit(p, 1e5).result(timeout=120) for p in _problems(3)
            ]
            three_d = [
                door.submit(p, 1e5).result(timeout=120)
                for p in _problems(2, operator="poisson3d")
            ]
            # Least-loaded sticky routing: the first class pins shard 0,
            # the second (different key) pins shard 1; neither moves.
            assert {r.shard for r in two_d} == {0}
            assert {r.shard for r in three_d} == {1}

    def test_open_server_facade_returns_front_door(self, tmp_path):
        door = open_server(
            store=str(tmp_path / "s.sqlite"),
            shards=2,
            workers=1,
            instances=1,
            seed=3,
        )
        assert isinstance(door, FrontDoor)
        with door:
            result = door.solve(poisson_problem("unbiased", n=N, seed=1), 1e5)
            assert result.solution.shape == (N, N)

    def test_open_server_rejects_non_path_store_for_shards(self):
        with pytest.raises(TypeError, match="path"):
            open_server(store=TrialDB(":memory:"), shards=2)


class TestCrashRecovery:
    def test_sigkill_mid_stream_no_loss_no_duplicates(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        problems = _problems(8)

        single = SolveServer(machine="intel", store=TrialDB(store), instances=1, seed=3)
        try:
            single.warm("unbiased", LEVEL)
            golden = [single.solve(p, 1e5).solution for p in problems]
        finally:
            single.shutdown(drain=True)

        with FrontDoor(
            shards=2, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            # Pin the class to its shard and find the victim process.
            first = door.submit(problems[0], 1e5).result(timeout=120)
            victim_index = first.shard
            victim = door._workers[victim_index].process
            assert victim.pid is not None

            # Freeze the victim so the stream provably queues on it...
            os.kill(victim.pid, signal.SIGSTOP)
            futures = [door.submit(p, 1e5) for p in problems[1:]]
            # ...then kill it mid-stream.
            os.kill(victim.pid, signal.SIGKILL)

            results = [f.result(timeout=180) for f in futures]
            counters = door.telemetry.snapshot()["counters"]

        # No request lost: every future resolved, with correct bytes.
        assert np.array_equal(first.solution, golden[0])
        for result, expected in zip(results, golden[1:]):
            assert np.array_equal(result.solution, expected)
        # Re-routed: the replacement worker (a fresh index) served them.
        assert all(r.shard != victim_index for r in results)
        # None answered twice, and telemetry recorded the restart.
        assert counters.get("duplicate_responses", 0) == 0
        assert counters["requests_completed"] == len(problems)
        assert counters["worker_crashes"] == 1
        assert counters["worker_restarts"] == 1
        assert counters["requests_resubmitted"] == len(problems) - 1

    def test_crash_streak_guard_fails_pending_instead_of_looping(self, tmp_path):
        """A worker that dies repeatedly must not respawn forever."""
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=1, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            door.max_crash_streak = 0  # first crash already exceeds it
            # Freeze the worker first so the request cannot be answered
            # before the kill lands.
            victim = door._workers[0].process
            os.kill(victim.pid, signal.SIGSTOP)
            future = door.submit(poisson_problem("unbiased", n=N, seed=1), 1e5)
            os.kill(victim.pid, signal.SIGKILL)
            with pytest.raises(RuntimeError, match="crashed"):
                future.result(timeout=60)
            assert door.n_shards == 0  # not respawned


class TestAdmissionAndLifecycle:
    def test_backpressure_when_slot_pool_is_exhausted(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=1, store_path=store, workers=1, instances=1, seed=3,
            pool_slots=1,
        ) as door:
            worker = door._workers[0].process
            problem = poisson_problem("unbiased", n=N, seed=1)
            # Freeze the worker: the first request parks in the only slot.
            os.kill(worker.pid, signal.SIGSTOP)
            try:
                future = door.submit(problem, 1e5)
                with pytest.raises(Backpressure):
                    door.submit(problem, 1e5)
            finally:
                os.kill(worker.pid, signal.SIGCONT)
            future.result(timeout=120)
            # The slot came back after completion.
            result = door.solve(problem, 1e5)
            assert result.solution.shape == (N, N)
            assert door.telemetry.counter("requests_rejected") == 1

    def test_submit_after_shutdown_raises(self, tmp_path):
        door = FrontDoor(
            shards=1, store_path=str(tmp_path / "s.sqlite"), workers=1,
            instances=1, seed=3,
        )
        door.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            door.submit(poisson_problem("unbiased", n=N, seed=1), 1e5)
        door.shutdown()  # idempotent

    def test_resize_grows_shrinks_and_keeps_serving(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=1, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            problem = poisson_problem("unbiased", n=N, seed=1)
            before = door.solve(problem, 1e5)
            assert door.resize(2) == 2
            assert door.n_shards == 2
            assert door.resize(1) == 1
            # The class re-routes to a surviving worker and still serves.
            after = door.solve(problem, 1e5)
            assert np.array_equal(after.solution, before.solution)

    def test_autoscale_tick_applies_decisions(self, tmp_path):
        clock = ManualClock()
        scaler = Autoscaler(1, 2, up_backlog=0, cooldown_s=0.0, clock=clock)
        with FrontDoor(
            shards=1, store_path=str(tmp_path / "s.sqlite"), workers=1,
            instances=1, seed=3, autoscaler=scaler,
        ) as door:
            # up_backlog=0 makes every shard count as pressed.
            assert door.autoscale_tick() == 2
            assert door.n_shards == 2
            assert door.autoscale_tick() == 2  # at max_shards, holds

    def test_stats_aggregates_all_shards(self, tmp_path):
        with FrontDoor(
            shards=2, store_path=str(tmp_path / "s.sqlite"), workers=1,
            instances=1, seed=3,
        ) as door:
            door.solve(poisson_problem("unbiased", n=N, seed=1), 1e5)
            snapshot = door.stats()
            assert set(snapshot["shards"]) == {"0", "1"}
            assert snapshot["frontdoor"]["counters"]["requests_completed"] == 1
            served = sum(
                shard.get("counters", {}).get("requests_completed", 0)
                for shard in snapshot["shards"].values()
            )
            assert served == 1
            assert door.wait_for_swaps(timeout=60.0)
