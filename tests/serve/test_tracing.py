"""End-to-end tracing through the serving tier.

The acceptance contract of the observability PR, pinned as tests: one
request through a 2-shard :class:`FrontDoor` yields a **single
correlated span tree** — frontdoor.request -> serve.request ->
serve.batch (with the plan-cache decision annotation) -> serve.solve ->
mg.level -> op.* with backend labels — exportable as valid Chrome
``trace_event`` JSON; the loadgen report carries trace ids; an
SLO-driven plan swap stamps the triggering request's trace id into its
``serve_swap`` trial-row provenance; and turning tracing on never
changes the telemetry snapshot's exported shape.

Grids stay tiny (level 3) for the same reason as the front-door tests:
process spawn + import dominates, not solves.  ``op_span_min_points=0``
lifts the executor's op-span floor so even these 9x9 grids record per-op
spans.
"""

import json
import unittest.mock as mock

from repro.core import poisson_problem
from repro.obs.export import chrome_trace
from repro.obs.trace import Tracer
from repro.serve import FrontDoor, SolveServer
from repro.serve.loadgen import run_load
from repro.store.trialdb import TrialDB
from repro.tuner.executor import PlanExecutor
from repro.util.clock import ManualClock
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

LEVEL = 3
N = size_of_level(LEVEL)


def assert_single_tree(spans, root_name):
    """One trace id, one root (named ``root_name``), every parent link
    resolving inside the collected set."""
    assert spans, "trace recorded no spans"
    assert len({s.trace_id for s in spans}) == 1
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == [root_name]
    ids = {s.span_id for s in spans}
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, f"orphan span {span.name}"


class TestSingleServerTrace:
    def test_request_yields_one_correlated_tree(self):
        tracer = Tracer()
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3, tracer=tracer, op_span_min_points=0,
        )
        try:
            server.warm("unbiased", LEVEL)
            result = server.solve(poisson_problem("unbiased", n=N, seed=1), 1e5, timeout=60)
        finally:
            server.shutdown(drain=True)
        assert result.trace_id is not None
        spans = tracer.for_trace(result.trace_id)
        assert_single_tree(spans, "serve.request")
        names = {s.name for s in spans}
        assert {"serve.batch", "plan_cache.decision", "serve.solve", "mg.level"} <= names
        ops = [s for s in spans if s.name.startswith("op.")]
        assert ops, "no per-op spans despite a zero floor"
        for span in ops:
            assert "backend" in span.attrs and "level" in span.attrs


class TestShardedTrace:
    def test_one_request_through_two_shards_exports_as_chrome_trace(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=2, store_path=store, workers=1, instances=1, seed=3,
            trace=True, op_span_min_points=0,
        ) as door:
            problem = make_problem("unbiased", N, 11, index=0)
            result = door.submit(problem, 1e5).result(timeout=120)
            assert result.trace_id is not None
            spans = door.tracer.for_trace(result.trace_id)

        # The worker-side tree shipped home and joined the front door's
        # root: every layer of the request path is one correlated tree.
        assert_single_tree(spans, "frontdoor.request")
        names = {s.name for s in spans}
        assert {
            "serve.request", "serve.batch", "plan_cache.decision",
            "serve.solve", "mg.level",
        } <= names
        ops = [s for s in spans if s.name.startswith("op.")]
        assert ops and all("backend" in s.attrs for s in ops)

        # ...and the tree is exportable as valid Chrome trace_event JSON.
        doc = json.loads(json.dumps(chrome_trace(spans)))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == len(spans)
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["args"]["trace_id"] == result.trace_id

    def test_untraced_door_ships_no_spans(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        with FrontDoor(
            shards=1, store_path=store, workers=1, instances=1, seed=3
        ) as door:
            result = door.solve(make_problem("unbiased", N, 11, index=0), 1e5)
        assert result.trace_id is None


class TestLoadgenReport:
    def test_report_carries_every_trace_id(self):
        tracer = Tracer()
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3, tracer=tracer,
        )
        try:
            server.warm("unbiased", LEVEL)
            report = run_load(
                server, [("unbiased", LEVEL, None)], requests=4, clients=2,
                seed=7,
            )
        finally:
            server.shutdown(drain=True)
        assert len(report["trace_ids"]) == 4
        assert len(set(report["trace_ids"])) == 4
        recorded = tracer.sink.trace_ids()
        for trace_id in report["trace_ids"]:
            assert trace_id in recorded

    def test_untraced_report_has_no_trace_ids_key(self):
        server = SolveServer(
            machine="intel", store=TrialDB(":memory:"), workers=1,
            instances=1, seed=3,
        )
        try:
            server.warm("unbiased", LEVEL)
            report = run_load(
                server, [("unbiased", LEVEL, None)], requests=2, clients=1,
                seed=7,
            )
        finally:
            server.shutdown(drain=True)
        assert "trace_ids" not in report


class TestSwapProvenanceTraceId:
    def test_slo_degrade_stamps_triggering_trace_id(self):
        """The serve_swap trial row must name the traced request whose
        completion tripped the breach decision."""
        db = TrialDB(":memory:")
        clock = ManualClock()
        tracer = Tracer()
        server = SolveServer(
            machine="intel", store=db, workers=1, instances=1, seed=3,
            clock=clock, tracer=tracer, slo_p99_s=0.5, slo_window_s=5.0,
            slo_min_samples=2,
        )
        original = PlanExecutor.run_v

        def slow_run_v(self, *args, **kwargs):
            clock.advance(1.0)
            return original(self, *args, **kwargs)

        try:
            server.warm("unbiased", LEVEL)
            problem = poisson_problem("unbiased", n=N, seed=1)
            with mock.patch.object(PlanExecutor, "run_v", slow_run_v):
                results = [server.solve(problem, 1e5, timeout=60) for _ in range(2)]
        finally:
            server.shutdown(drain=True)

        swaps = []
        for record in db.trials():
            provenance = json.loads(record.provenance or "{}")
            if "serve_swap" in provenance:
                swaps.append(provenance["serve_swap"])
        assert len(swaps) == 1
        assert swaps[0]["reason"] == "slo-breach"
        # the second solve filled the 2-sample window and tripped the swap
        assert swaps[0]["trace_id"] == results[1].trace_id
        assert results[1].trace_id is not None


class TestTelemetryShapeUnchanged:
    def test_snapshot_structure_identical_with_tracing_on(self):
        """Tracing must be invisible in the exported telemetry JSON: the
        same workload produces the same key structure either way."""

        def serve_once(tracer):
            server = SolveServer(
                machine="intel", store=TrialDB(":memory:"), workers=1,
                instances=1, seed=3, tracer=tracer,
            )
            try:
                server.warm("unbiased", LEVEL)
                server.solve(poisson_problem("unbiased", n=N, seed=1), 1e5, timeout=60)
                return server.stats()
            finally:
                server.shutdown(drain=True)

        plain, traced = serve_once(None), serve_once(Tracer())
        assert set(plain) == set(traced)
        for section in ("counters", "gauges", "latency", "windows"):
            assert set(plain[section]) == set(traced[section])
        assert plain["counters"] == traced["counters"]
        json.dumps(traced)  # still a valid JSON document
