"""Shard routing, the pickle-free codec, and the autoscaler policy.

Everything here is the *pure* half of the sharded tier — no processes.
The codec tests are the zero-copy enforcement: JSON is the only wire
format, and JSON cannot encode an ndarray, so an array reaching the
control bus is a hard ``TypeError``, never a silent serialization.
"""

import numpy as np
import pytest

from repro.serve.sharding import (
    Autoscaler,
    ShardStats,
    ShardWorkerConfig,
    decode_message,
    encode_message,
    shard_index,
    shard_key,
)
from repro.util.clock import ManualClock


class TestShardKey:
    def test_key_carries_operator_level_and_ndim(self):
        assert shard_key("poisson", 5, 2) == "poisson|L5|2d"
        assert shard_key("poisson3d", 4, 3) == "poisson3d|L4|3d"

    def test_index_is_deterministic_and_in_range(self):
        keys = [shard_key("poisson", level, nd) for level in range(3, 9)
                for nd in (2, 3)]
        for shards in (1, 2, 4, 7):
            for key in keys:
                index = shard_index(key, shards)
                assert 0 <= index < shards
                assert shard_index(key, shards) == index  # stable

    def test_index_spreads_keys(self):
        keys = [shard_key(op, level, 2) for op in ("poisson", "a", "b", "c")
                for level in range(3, 10)]
        used = {shard_index(key, 4) for key in keys}
        assert len(used) == 4  # 28 keys must hit all 4 shards

    def test_index_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_index("poisson|L5|2d", 0)


class TestCodec:
    def test_roundtrip(self):
        msg = {"type": "solve", "id": 7, "shape": [9, 9], "target": 1e5}
        assert decode_message(encode_message(msg)) == msg

    def test_ndarray_is_rejected_not_serialized(self):
        """The zero-copy guarantee, enforced: no array ever crosses the
        control bus — not even by accident."""
        with pytest.raises(TypeError):
            encode_message({"type": "solve", "payload": np.zeros((9, 9))})

    def test_nested_ndarray_is_rejected_too(self):
        with pytest.raises(TypeError):
            encode_message({"type": "solve", "nested": {"x": np.arange(3)}})


class TestShardWorkerConfig:
    def test_server_kwargs_cover_the_serving_surface(self):
        config = ShardWorkerConfig(index=1, workers=3, slo_p99_s=0.25)
        kwargs = config.server_kwargs()
        assert kwargs["workers"] == 3
        assert kwargs["slo_p99_s"] == 0.25
        assert "index" not in kwargs  # the shard id is not a server option
        assert "store_path" not in kwargs


class TestAutoscaler:
    def test_scales_up_on_backlog(self):
        clock = ManualClock()
        scaler = Autoscaler(1, 4, up_backlog=4, clock=clock)
        assert scaler.decide([ShardStats(inflight=1)]) == 1
        assert scaler.decide([ShardStats(inflight=4)]) == 2

    def test_scales_up_on_p99_breach(self):
        clock = ManualClock()
        scaler = Autoscaler(1, 4, slo_p99_s=0.5, clock=clock)
        assert scaler.decide([ShardStats(inflight=1, p99_s=0.4)]) == 1
        assert scaler.decide([ShardStats(inflight=1, p99_s=0.6)]) == 2

    def test_respects_max_and_min_bounds(self):
        clock = ManualClock()
        scaler = Autoscaler(2, 2, up_backlog=1, down_idle_s=0.0, clock=clock)
        assert scaler.decide([ShardStats(inflight=9), ShardStats(inflight=9)]) == 2
        clock.advance(100.0)
        assert scaler.decide([ShardStats(inflight=0), ShardStats(inflight=0)]) == 2

    def test_cooldown_blocks_consecutive_changes(self):
        clock = ManualClock()
        scaler = Autoscaler(1, 8, up_backlog=1, cooldown_s=10.0, clock=clock)
        assert scaler.decide([ShardStats(inflight=5)]) == 2
        # Still pressed, but inside the cooldown window: hold.
        assert scaler.decide([ShardStats(inflight=5), ShardStats(inflight=5)]) == 2
        clock.advance(10.0)
        assert scaler.decide([ShardStats(inflight=5), ShardStats(inflight=5)]) == 3

    def test_scales_down_only_after_sustained_idle(self):
        clock = ManualClock()
        scaler = Autoscaler(1, 4, down_idle_s=30.0, cooldown_s=0.0, clock=clock)
        shards = [ShardStats(inflight=0), ShardStats(inflight=0)]
        assert scaler.decide(shards) == 2  # idle starts counting now
        clock.advance(29.0)
        assert scaler.decide(shards) == 2  # not idle long enough
        clock.advance(1.0)
        assert scaler.decide(shards) == 1

    def test_traffic_resets_the_idle_timer(self):
        clock = ManualClock()
        scaler = Autoscaler(1, 4, down_idle_s=30.0, cooldown_s=0.0, clock=clock)
        idle = [ShardStats(inflight=0), ShardStats(inflight=0)]
        assert scaler.decide(idle) == 2
        clock.advance(29.0)
        assert scaler.decide([ShardStats(inflight=1), ShardStats(inflight=0)]) == 2
        clock.advance(29.0)  # idle again, but the timer restarted
        assert scaler.decide(idle) == 2

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Autoscaler(0, 4)
        with pytest.raises(ValueError):
            Autoscaler(5, 4)
