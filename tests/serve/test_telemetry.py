"""Tests for the serving telemetry module."""

import json

import pytest

from repro.serve.telemetry import LatencyHistogram, Telemetry


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.95) == 0.0

    def test_percentiles_bracket_observations(self):
        hist = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for v in values:
            hist.record(v)
        # Bucketed estimates are within one geometric bucket (~33%).
        assert hist.percentile(0.50) == pytest.approx(0.050, rel=0.4)
        assert hist.percentile(0.95) == pytest.approx(0.095, rel=0.4)
        assert hist.percentile(0.99) == pytest.approx(0.099, rel=0.4)
        assert hist.percentile(1.0) <= hist.max
        assert hist.mean == pytest.approx(sum(values) / len(values))

    def test_percentiles_monotone_in_q(self):
        hist = LatencyHistogram()
        for v in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0):
            hist.record(v)
        qs = [0.1, 0.5, 0.9, 0.99, 1.0]
        ps = [hist.percentile(q) for q in qs]
        assert ps == sorted(ps)

    def test_overflow_bucket_uses_observed_max(self):
        hist = LatencyHistogram(bounds=(0.1, 1.0))
        hist.record(50.0)
        assert hist.percentile(0.99) == 50.0

    def test_rejects_bad_input(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 0.1))


class TestTelemetry:
    def test_counters_and_gauges(self):
        t = Telemetry()
        t.incr("requests")
        t.incr("requests", 4)
        t.set_gauge("queue_depth", 7)
        assert t.counter("requests") == 5
        assert t.counter("unknown") == 0
        assert t.gauge("queue_depth") == 7.0

    def test_observe_and_percentile(self):
        t = Telemetry()
        for v in (0.001, 0.002, 0.004):
            t.observe("lat", v)
        assert t.percentile("lat", 0.5) > 0
        assert t.percentile("missing", 0.5) == 0.0

    def test_swap_events_are_bounded(self):
        t = Telemetry(max_events=3)
        for i in range(5):
            t.swap_event(f"key-{i}", "fallback", "swapped", generation=i)
        events = t.swap_events
        assert len(events) == 3
        assert [e.seq for e in events] == [3, 4, 5]
        assert t.counter("plan_swaps") == 5

    def test_snapshot_is_json_serializable(self):
        t = Telemetry()
        t.incr("requests")
        t.set_gauge("depth", 1)
        t.observe("lat", 0.01)
        t.swap_event("k", "fallback", "swapped", generation=1, stale_served=2)
        snap = json.loads(t.to_json())
        assert snap["counters"]["requests"] == 1
        assert snap["counters"]["plan_swaps"] == 1
        assert snap["latency"]["lat"]["count"] == 1
        assert snap["swap_events"][0]["stale_served"] == 2
        # p50/p95/p99 keys exist for dashboards
        assert {"p50_s", "p95_s", "p99_s"} <= set(snap["latency"]["lat"])


class TestSlidingWindow:
    """The windowed percentiles behind SLO swaps and shard p99 gauges."""

    def test_empty_window(self):
        from repro.serve.telemetry import SlidingWindow

        window = SlidingWindow(window_s=5.0)
        assert window.count(now=0.0) == 0
        assert window.percentile(now=0.0, q=0.99) == 0.0

    def test_percentile_is_exact_over_live_samples(self):
        from repro.serve.telemetry import SlidingWindow

        window = SlidingWindow(window_s=10.0)
        for i, v in enumerate([0.1, 0.2, 0.3, 0.4]):
            window.record(now=float(i), value=v)
        assert window.count(now=3.0) == 4
        assert window.percentile(now=3.0, q=0.5) == 0.2
        assert window.percentile(now=3.0, q=0.99) == 0.4

    def test_old_samples_age_out(self):
        from repro.serve.telemetry import SlidingWindow

        window = SlidingWindow(window_s=5.0)
        window.record(now=0.0, value=9.0)
        window.record(now=4.0, value=0.1)
        assert window.percentile(now=4.0, q=0.99) == 9.0
        # The slow sample falls off the horizon; the window forgets it.
        assert window.count(now=6.0) == 1
        assert window.percentile(now=6.0, q=0.99) == 0.1
        assert window.count(now=20.0) == 0

    def test_bounded_samples_evict_oldest(self):
        from repro.serve.telemetry import SlidingWindow

        window = SlidingWindow(window_s=100.0, max_samples=4)
        for i in range(8):
            window.record(now=float(i), value=float(i))
        assert window.count(now=7.0) == 4
        assert window.percentile(now=7.0, q=0.0) == 4.0  # 0..3 evicted

    def test_to_dict_and_validation(self):
        from repro.serve.telemetry import SlidingWindow

        window = SlidingWindow(window_s=5.0)
        window.record(now=1.0, value=0.25)
        snap = window.to_dict(now=1.0)
        assert snap["count"] == 1
        assert snap["p99_s"] == 0.25
        with pytest.raises(ValueError):
            SlidingWindow(window_s=0.0)
        with pytest.raises(ValueError):
            window.record(now=2.0, value=-1.0)
        with pytest.raises(ValueError):
            window.percentile(now=2.0, q=1.5)

    def test_telemetry_windowed_surface(self):
        from repro.util.clock import ManualClock

        clock = ManualClock()
        t = Telemetry(clock=clock, window_s=5.0)
        for v in (0.1, 0.2, 0.3, 0.4):
            t.observe_windowed("lat", v)
        assert t.window_count("lat") == 4
        assert t.window_percentile("lat", 0.99) == 0.4
        clock.advance(6.0)
        assert t.window_count("lat") == 0
        assert t.window_percentile("lat", 0.99) == 0.0
