"""Tests for the reference multigrid cycles."""

import numpy as np
import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import reference_solution
from repro.grids.norms import residual_norm
from repro.grids.poisson import residual
from repro.machines.meter import OpMeter
from repro.multigrid.cycles import full_multigrid_cycle, vcycle, wcycle
from repro.workloads.distributions import make_problem


@pytest.fixture(scope="module")
def problem():
    return make_problem("unbiased", 33, seed=41)


@pytest.fixture(scope="module")
def x_opt(problem):
    return reference_solution(problem)


class TestVCycle:
    def test_reduces_error_by_order_of_magnitude(self, problem, x_opt):
        x = problem.initial_guess()
        judge = AccuracyJudge(x, x_opt)
        vcycle(x, problem.b)
        assert judge.accuracy_of(x) > 5.0

    def test_converges_to_machine_precision(self, problem):
        x = problem.initial_guess()
        for _ in range(30):
            vcycle(x, problem.b)
        scale = float(np.abs(problem.b).max())
        assert residual_norm(residual(x, problem.b)) <= 1e-10 * scale

    def test_base_case_is_exact(self):
        tiny = make_problem("unbiased", 3, seed=42)
        x = tiny.initial_guess()
        vcycle(x, tiny.b)
        assert residual_norm(residual(x, tiny.b)) <= 1e-6

    def test_base_size_cutoff_respected(self, problem):
        meter = OpMeter()
        x = problem.initial_guess()
        vcycle(x, problem.b, base_size=9, meter=meter)
        assert meter.counts[("direct", 9)] == 1
        assert ("relax", 5) not in meter.counts

    def test_meter_counts_exact(self, problem):
        # Level 5 V-cycle with base 3: relax 2x at n=33,17,9,5; direct at 3.
        meter = OpMeter()
        vcycle(problem.initial_guess(), problem.b, meter=meter)
        for n in (33, 17, 9, 5):
            assert meter.counts[("relax", n)] == 2
            assert meter.counts[("residual", n)] == 1
            assert meter.counts[("restrict", n)] == 1
            assert meter.counts[("interpolate", n)] == 1
        assert meter.counts[("direct", 3)] == 1

    def test_zero_presweeps_allowed(self, problem, x_opt):
        x = problem.initial_guess()
        judge = AccuracyJudge(x, x_opt)
        vcycle(x, problem.b, pre_sweeps=0, post_sweeps=2)
        assert judge.accuracy_of(x) > 2.0


class TestWCycle:
    def test_reduces_error_at_least_as_much_as_v(self, problem, x_opt):
        xv = problem.initial_guess()
        xw = problem.initial_guess()
        judge = AccuracyJudge(xv, x_opt)
        vcycle(xv, problem.b)
        wcycle(xw, problem.b)
        assert judge.accuracy_of(xw) >= 0.9 * judge.accuracy_of(xv)

    def test_visits_coarse_levels_twice(self, problem):
        meter = OpMeter()
        wcycle(problem.initial_guess(), problem.b, meter=meter)
        # At one level below the top the W cycle recurses twice.
        assert meter.counts[("relax", 17)] == 4
        assert meter.counts[("relax", 9)] == 8


class TestFullMultigrid:
    def test_single_cycle_beats_single_vcycle(self, problem, x_opt):
        xf = problem.initial_guess()
        xv = problem.initial_guess()
        judge = AccuracyJudge(xf, x_opt)
        full_multigrid_cycle(xf, problem.b)
        vcycle(xv, problem.b)
        assert judge.accuracy_of(xf) > judge.accuracy_of(xv)

    def test_estimation_phase_recurses(self, problem):
        meter = OpMeter()
        full_multigrid_cycle(problem.initial_guess(), problem.b, meter=meter)
        # Estimation + solve-phase V cycles at every level: more than one
        # residual per level below the top.
        assert meter.counts[("residual", 17)] >= 2

    def test_base_case(self):
        tiny = make_problem("unbiased", 3, seed=43)
        x = tiny.initial_guess()
        full_multigrid_cycle(x, tiny.b)
        assert residual_norm(residual(x, tiny.b)) <= 1e-6
