"""Tests for the iterate-until-accuracy reference solvers."""

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import reference_solution
from repro.machines.meter import OpMeter
from repro.multigrid.solver import (
    IterationLimit,
    ReferenceFullMGSolver,
    ReferenceVSolver,
    SORSolver,
)
from repro.workloads.distributions import make_problem


@pytest.fixture(scope="module")
def problem():
    return make_problem("biased", 17, seed=51)


@pytest.fixture(scope="module")
def judge_factory(problem):
    x_opt = reference_solution(problem)

    def make():
        x = problem.initial_guess()
        return x, AccuracyJudge(x, x_opt)

    return make


@pytest.mark.parametrize(
    "solver_cls", [SORSolver, ReferenceVSolver, ReferenceFullMGSolver]
)
class TestReferenceSolvers:
    def test_reaches_target(self, solver_cls, problem, judge_factory):
        x, judge = judge_factory()
        iters = solver_cls().solve(x, problem.b, judge.accuracy_of, 1e5)
        assert judge.accuracy_of(x) >= 1e5
        assert iters >= 1

    def test_zero_iterations_if_already_converged(
        self, solver_cls, problem, judge_factory
    ):
        x, judge = judge_factory()
        solver = solver_cls()
        solver.solve(x, problem.b, judge.accuracy_of, 1e3)
        again = solver.solve(x, problem.b, judge.accuracy_of, 1e3)
        assert again == 0

    def test_iteration_limit_raised(self, solver_cls, problem, judge_factory):
        x, judge = judge_factory()
        with pytest.raises(IterationLimit):
            solver_cls(max_iters=1).solve(x, problem.b, judge.accuracy_of, 1e12)

    def test_meter_populated(self, solver_cls, problem, judge_factory):
        x, judge = judge_factory()
        meter = OpMeter()
        solver_cls().solve(x, problem.b, judge.accuracy_of, 1e3, meter)
        assert meter.total("relax") + meter.total("direct") > 0


class TestRelativeBehaviour:
    def test_multigrid_needs_fewer_iterations_than_sor(self, problem, judge_factory):
        xs, js = judge_factory()
        xv, jv = judge_factory()
        sor_iters = SORSolver().solve(xs, problem.b, js.accuracy_of, 1e5)
        v_iters = ReferenceVSolver().solve(xv, problem.b, jv.accuracy_of, 1e5)
        assert v_iters < sor_iters

    def test_full_mg_start_helps(self, problem, judge_factory):
        xv, jv = judge_factory()
        xf, jf = judge_factory()
        v_iters = ReferenceVSolver().solve(xv, problem.b, jv.accuracy_of, 1e7)
        f_iters = ReferenceFullMGSolver().solve(xf, problem.b, jf.accuracy_of, 1e7)
        assert f_iters <= v_iters
