"""Learned cost models: fitting, clamps, fallback pricing, round-trip."""

import json
import math
from types import SimpleNamespace

import pytest

from repro.machines.meter import OPS, OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner.costmodel import (
    _MAX_EXPONENT,
    _MIN_EXPONENT,
    CostModel,
    ModelTiming,
    OpLaw,
    points_of,
)
from repro.tuner.config import plan_to_dict
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData


def rows_for(op: str, law: OpLaw, sizes=(17, 33, 65), weight=10.0):
    """Noise-free measurement rows following an exact power law."""
    return [
        {
            "op": op,
            "n": n,
            "seconds": law.coeff * points_of(op, n) ** law.exponent,
            "weight": weight,
        }
        for n in sizes
    ]


class TestPointsOf:
    def test_2d_ops_touch_n_squared(self):
        assert points_of("relax", 10) == 100.0
        assert points_of("relax@cnative", 10) == 100.0

    def test_3d_ops_touch_n_cubed(self):
        assert points_of("relax3d", 10) == 1000.0
        assert points_of("direct3d", 5) == 125.0


class TestFit:
    def test_recovers_exact_power_law(self):
        truth = OpLaw(coeff=3e-9, exponent=1.2)
        model = CostModel.fit(rows_for("relax", truth), INTEL_HARPERTOWN)
        law = model.laws["relax"]
        assert law.exponent == pytest.approx(1.2, rel=1e-6)
        assert law.coeff == pytest.approx(3e-9, rel=1e-6)
        assert law.observations == 3
        for n in (17, 33, 129):
            assert model.op_seconds("relax", n) == pytest.approx(
                truth.predict(points_of("relax", n)), rel=1e-6
            )

    def test_exponent_clamped_to_sane_range(self):
        # A wildly super-cubic trend is a degenerate fit, not physics.
        steep = rows_for("relax", OpLaw(coeff=1e-12, exponent=5.0))
        model = CostModel.fit(steep, INTEL_HARPERTOWN)
        assert model.laws["relax"].exponent == _MAX_EXPONENT
        flat = rows_for("relax", OpLaw(coeff=1e-6, exponent=0.01))
        model = CostModel.fit(flat, INTEL_HARPERTOWN)
        assert model.laws["relax"].exponent == _MIN_EXPONENT

    def test_single_size_borrows_analytic_exponent(self):
        # One measured size cannot determine a slope: the analytic
        # model's own cost-vs-points exponent anchors the law.
        model = CostModel.fit(
            [{"op": "relax", "n": 33, "seconds": 1e-4, "weight": 4.0}],
            INTEL_HARPERTOWN,
        )
        law = model.laws["relax"]
        assert _MIN_EXPONENT <= law.exponent <= _MAX_EXPONENT
        # The measured point itself is reproduced exactly.
        assert model.op_seconds("relax", 33) == pytest.approx(1e-4, rel=1e-9)

    def test_malformed_rows_skipped_not_fatal(self):
        rows = [
            {"op": "relax"},  # no size/seconds
            {"op": "relax", "n": 2, "seconds": 1.0},  # n < 3
            {"op": "relax", "n": 33, "seconds": 0.0},  # no signal
            {"op": "relax", "n": 33, "seconds": -1.0},
            {"op": "relax", "n": 33, "seconds": float("nan")},
            {"op": "relax", "n": "not-a-size", "seconds": 1.0},
            {"op": "relax", "n": 33, "seconds": 1e-4, "weight": 0.0},
        ]
        model = CostModel.fit(rows, INTEL_HARPERTOWN)
        assert model.laws == {}
        assert model.provenance["rows"] == 0

    def test_empty_fit_prices_like_analytic_profile(self):
        model = CostModel.fit([], INTEL_HARPERTOWN)
        assert model.laws == {}
        assert model.calibration == 1.0
        for op in OPS:
            for n in (17, 65):
                assert model.op_seconds(op, n) == pytest.approx(
                    INTEL_HARPERTOWN.op_time(op, n), rel=1e-9
                )

    def test_calibration_scales_unfitted_ops(self):
        # Measurements uniformly 2x the analytic price: unmeasured ops
        # inherit the ratio through the global calibration.
        rows = [
            {
                "op": "relax",
                "n": n,
                "seconds": 2.0 * INTEL_HARPERTOWN.op_time("relax", n),
                "weight": 1.0,
            }
            for n in (17, 33, 65)
        ]
        model = CostModel.fit(rows, INTEL_HARPERTOWN)
        assert model.calibration == pytest.approx(2.0, rel=1e-6)
        assert model.op_seconds("residual", 33) == pytest.approx(
            2.0 * INTEL_HARPERTOWN.op_time("residual", 33), rel=1e-6
        )


class TestTrialFolding:
    def _trial(self, scale: float):
        plan = VCycleTuner(
            max_level=3,
            training=TrainingData(distribution="unbiased", instances=1, seed=0),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            keep_audit=False,
        ).tune()
        meter = plan.unit_meter(plan.max_level, plan.num_accuracies - 1)
        analytic = INTEL_HARPERTOWN.price(meter)
        return SimpleNamespace(
            plan_json=json.dumps(plan_to_dict(plan)),
            simulated_cost=scale * analytic,
        )

    def test_stored_trials_become_pseudo_observations(self):
        model = CostModel.fit([], INTEL_HARPERTOWN, trials=[self._trial(3.0)])
        assert model.provenance["trials"] == 1
        assert model.laws  # the plan's ops got laws
        # Plan-level cost 3x analytic spreads as a 3x calibration.
        assert model.calibration == pytest.approx(3.0, rel=1e-3)

    def test_unusable_trials_skipped(self):
        junk = [
            SimpleNamespace(plan_json=None, simulated_cost=1.0),
            SimpleNamespace(plan_json="{not json", simulated_cost=1.0),
            SimpleNamespace(plan_json="{}", simulated_cost=0.0),
        ]
        model = CostModel.fit([], INTEL_HARPERTOWN, trials=junk)
        assert model.provenance["trials"] == 0
        assert model.laws == {}


class TestSerialization:
    def test_round_trip_preserves_predictions_and_identity(self):
        model = CostModel.fit(
            rows_for("relax", OpLaw(coeff=2e-9, exponent=1.1)), INTEL_HARPERTOWN
        )
        clone = CostModel.from_json(model.to_json())
        assert clone.fingerprint() == model.fingerprint()
        for op in ("relax", "residual", "direct"):
            assert clone.op_seconds(op, 33) == pytest.approx(
                model.op_seconds(op, 33), rel=1e-12
            )

    def test_fingerprint_ignores_provenance(self):
        rows = rows_for("relax", OpLaw(coeff=2e-9, exponent=1.1))
        a = CostModel.fit(rows, INTEL_HARPERTOWN, provenance={"source": "x"})
        b = CostModel.fit(rows, INTEL_HARPERTOWN, provenance={"source": "y"})
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint().startswith("cm-")

    def test_fingerprint_tracks_fitted_content(self):
        a = CostModel.fit(
            rows_for("relax", OpLaw(coeff=2e-9, exponent=1.1)), INTEL_HARPERTOWN
        )
        b = CostModel.fit(
            rows_for("relax", OpLaw(coeff=4e-9, exponent=1.1)), INTEL_HARPERTOWN
        )
        assert a.fingerprint() != b.fingerprint()


class TestModelTiming:
    def test_prices_through_model_and_keeps_base_profile(self):
        model = CostModel.fit(
            rows_for("relax", OpLaw(coeff=5e-9, exponent=1.0)), INTEL_HARPERTOWN
        )
        timing = ModelTiming(model)
        # The DP's deterministic-pricing checks key off .profile.
        assert isinstance(timing, CostModelTiming)
        assert timing.profile is INTEL_HARPERTOWN
        assert timing.op_seconds("relax", 33) == pytest.approx(
            model.op_seconds("relax", 33)
        )
        meter = OpMeter()
        meter.charge("relax", 33, 7)
        assert timing.time_candidate(meter, None, None) == pytest.approx(
            7 * model.op_seconds("relax", 33)
        )

    def test_predictions_always_finite_positive(self):
        model = CostModel.fit([], INTEL_HARPERTOWN)
        for op in model.known_ops():
            value = model.op_seconds(op, 65)
            assert math.isfinite(value) and value > 0.0
        # Unknown ops fall to the clamp floor instead of raising.
        value = model.op_seconds("no-such-op", 65)
        assert math.isfinite(value) and value > 0.0
