"""BOSearch: plan validity, budget accounting, determinism, modes."""

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner import BOSearch, CostModel, dp_trial_budget
from repro.store.sink import CollectingSink
from repro.tuner.choices import DirectChoice
from repro.tuner.config import plan_to_dict
from repro.tuner.training import TrainingData


def search(max_level=4, **kwargs):
    kwargs.setdefault("profile", INTEL_HARPERTOWN)
    kwargs.setdefault(
        "training", TrainingData(distribution="unbiased", instances=1, seed=0)
    )
    return BOSearch(max_level=max_level, **kwargs)


class TestConstruction:
    def test_needs_profile_or_model(self):
        with pytest.raises(ValueError, match="profile"):
            BOSearch(max_level=4)

    def test_rejects_trivial_levels(self):
        with pytest.raises(ValueError, match="levels"):
            search(max_level=1)

    def test_rejects_zero_budgets(self):
        with pytest.raises(ValueError, match="explore"):
            search(explore=0)
        with pytest.raises(ValueError, match="explore"):
            search(exploit=0)

    def test_dp_trial_budget_formula(self):
        # Per slot: m RECURSE candidates + 1 SOR train; DIRECT is free.
        assert dp_trial_budget(6, 5) == 5 * 5 * 6
        assert dp_trial_budget(2, 5) == 30
        assert dp_trial_budget(1, 5) == 0


class TestPlanShape:
    @pytest.fixture(scope="class")
    def plan(self):
        return search(max_level=4, seed=0).tune()

    def test_all_slots_filled(self, plan):
        for level in range(1, plan.max_level + 1):
            for i in range(plan.num_accuracies):
                assert plan.choice(level, i) is not None

    def test_level_one_always_direct(self, plan):
        for i in range(plan.num_accuracies):
            assert plan.choice(1, i) == DirectChoice()

    def test_metadata_identifies_model_tuner(self, plan):
        md = plan.metadata
        assert md["tuner"] == "model"
        assert md["search_seed"] == 0
        assert md["kind"] == "multigrid-v"
        assert md["trial_budget_dp"] == dp_trial_budget(4, plan.num_accuracies)
        assert md["budget_fraction"] == pytest.approx(
            md["trials_used"] / md["trial_budget_dp"], abs=1e-4
        )

    def test_spends_a_fraction_of_the_dp_budget(self, plan):
        used = plan.metadata["trials_used"]
        assert 0 < used < plan.metadata["trial_budget_dp"]
        assert plan.metadata["budget_fraction"] <= 0.30

    def test_simulated_cost_finite_positive(self, plan):
        cost = plan.time_on(INTEL_HARPERTOWN, plan.max_level, plan.num_accuracies - 1)
        assert cost > 0.0


class TestDeterminism:
    def test_same_seed_same_plan(self):
        first = plan_to_dict(search(max_level=3, seed=7).tune())
        second = plan_to_dict(search(max_level=3, seed=7).tune())
        assert first == second

    def test_seed_in_metadata_tracks_argument(self):
        plan = search(max_level=3, seed=11).tune()
        assert plan.metadata["search_seed"] == 11


class TestModelMode:
    def test_model_only_search_builds_valid_plan(self):
        # The cold-machine path: no trusted profile, a fitted (here
        # trivially empty) model prices everything.
        model = CostModel.fit([], INTEL_HARPERTOWN)
        plan = search(max_level=3, profile=None, model=model).tune()
        assert plan.metadata["tuner"] == "model"
        assert plan.metadata["model_fingerprint"] == model.fingerprint()
        for level in range(1, 4):
            for i in range(plan.num_accuracies):
                assert plan.choice(level, i) is not None

    def test_empty_model_reproduces_profile_search(self):
        # No laws + calibration 1.0 prices exactly like the analytic
        # profile, so the searches walk identical landscapes.
        model = CostModel.fit([], INTEL_HARPERTOWN)
        with_profile = search(max_level=3, seed=5).tune()
        with_model = search(max_level=3, seed=5, profile=None, model=model).tune()
        assert [
            with_model.choice(level, i)
            for level in range(1, 4)
            for i in range(with_model.num_accuracies)
        ] == [
            with_profile.choice(level, i)
            for level in range(1, 4)
            for i in range(with_profile.num_accuracies)
        ]


class TestSink:
    def test_emits_one_tuning_trial(self):
        sink = CollectingSink()
        search(max_level=3, sink=sink).tune()
        assert len(sink.trials) == 1
        trial = sink.trials[0]
        assert trial.kind == "multigrid-v"
        assert trial.tuner == "model"
        assert trial.simulated_cost > 0.0
