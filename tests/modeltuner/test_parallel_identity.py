"""Parallel model-guided tuning: serial/parallel byte-identity.

The BOSearch decides its candidate picks for a whole level *before*
any evaluation runs and folds outcomes in a fixed enumeration order,
so a process pool must change only the wall-clock — never the plan.
"""

import json

from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner import BOSearch
from repro.parallel import ProcessPoolTrialExecutor, SerialExecutor
from repro.tuner.config import plan_to_dict
from repro.tuner.training import TrainingData


def _tune(executor, max_level=4, seed=3):
    return BOSearch(
        max_level=max_level,
        training=TrainingData(distribution="unbiased", instances=1, seed=0),
        profile=INTEL_HARPERTOWN,
        seed=seed,
        trial_executor=executor,
    ).tune()


def _canonical(plan) -> str:
    return json.dumps(plan_to_dict(plan), sort_keys=True)


class TestParallelDeterminism:
    def test_pool_matches_serial_byte_for_byte(self):
        serial = _tune(SerialExecutor())
        with ProcessPoolTrialExecutor(2) as pool:
            parallel = _tune(pool)
        assert _canonical(serial) == _canonical(parallel)
        assert serial.metadata["trials_used"] == parallel.metadata["trials_used"]

    def test_default_executor_is_serial(self):
        assert _canonical(_tune(None)) == _canonical(_tune(SerialExecutor()))

    def test_pool_reused_across_seeds(self):
        with ProcessPoolTrialExecutor(2) as pool:
            for seed in (0, 1):
                serial = _tune(SerialExecutor(), max_level=3, seed=seed)
                parallel = _tune(pool, max_level=3, seed=seed)
                assert _canonical(serial) == _canonical(parallel)
