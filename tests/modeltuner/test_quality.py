"""Tuner-quality regression: the budgeted search stays near the DP.

The acceptance claim (gated at level 6 by
``benchmarks/bench_modeltuner.py``) is that the model tuner lands
within 10% of the exhaustive DP's simulated plan cost while spending
at most 25% of its trial budget.  This suite pins the same bars at
level 5 — fast enough for the tier-1 run — on two operator families,
so a regression in the acquisition or the priors fails here first.
"""

import pytest

from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner import BOSearch, dp_trial_budget
from repro.tuner.dp import VCycleTuner
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

MAX_LEVEL = 5
QUALITY_BAR = 1.10
BUDGET_BAR = 0.25


def _training(operator: str) -> TrainingData:
    return TrainingData(
        distribution="unbiased", instances=1, seed=0, operator=operator
    )


def _plan_cost(plan) -> float:
    return plan.time_on(INTEL_HARPERTOWN, plan.max_level, plan.num_accuracies - 1)


@pytest.mark.parametrize("operator", ["poisson", "anisotropic(epsilon=0.1)"])
class TestQualityBars:
    def test_within_ten_percent_of_dp_at_quarter_budget(self, operator):
        dp_plan = VCycleTuner(
            max_level=MAX_LEVEL,
            training=_training(operator),
            timing=CostModelTiming(INTEL_HARPERTOWN),
            keep_audit=False,
        ).tune()
        model_plan = BOSearch(
            max_level=MAX_LEVEL,
            training=_training(operator),
            profile=INTEL_HARPERTOWN,
            seed=0,
        ).tune()

        ratio = _plan_cost(model_plan) / _plan_cost(dp_plan)
        assert ratio <= QUALITY_BAR, (
            f"{operator}: model plan costs {ratio:.3f}x the DP plan "
            f"(bar {QUALITY_BAR:g}x)"
        )

        budget = dp_trial_budget(MAX_LEVEL, model_plan.num_accuracies)
        fraction = model_plan.metadata["trials_used"] / budget
        assert fraction <= BUDGET_BAR, (
            f"{operator}: spent {model_plan.metadata['trials_used']}/{budget} "
            f"trials ({fraction:.0%}; bar {BUDGET_BAR:.0%})"
        )
