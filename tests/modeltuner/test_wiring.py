"""Model tuner wired through every entry point: core API, registry,
campaigns, the CLI grid arguments, serving fallback, and the artifact
store."""

import pytest

from repro.cli import main
from repro.core import autotune, autotune_cached
from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner import CostModel, model_for_profile
from repro.serve.cache import PlanCache
from repro.store import (
    CampaignSpec,
    ModelStore,
    PlanRegistry,
    TrialDB,
    TuneKey,
    model_artifact_key,
)
from repro.store.campaign import tune_cell


@pytest.fixture
def registry():
    return PlanRegistry(TrialDB(":memory:"))


KEY = TuneKey(max_level=3, instances=1, seed=0)


class TestCoreAPI:
    def test_autotune_model_tuner(self):
        plan = autotune(max_level=3, instances=1, tuner="model")
        assert plan.metadata["tuner"] == "model"
        assert plan.metadata["trials_used"] > 0

    def test_autotune_rejects_unknown_tuner(self):
        with pytest.raises(ValueError, match="tuner"):
            autotune(max_level=3, instances=1, tuner="annealing")

    def test_autotune_cached_model_tuner(self, registry):
        plan = autotune_cached(
            max_level=3, instances=1, seed=0, store=registry, tuner="model"
        )
        assert plan.metadata["tuner"] == "model"
        # The cached plan resolves from the registry on the second call.
        again = autotune_cached(
            max_level=3, instances=1, seed=0, store=registry, tuner="model"
        )
        assert again.metadata["tuner"] == "model"
        assert registry.db.count_trials() == 1


class TestRegistry:
    def test_get_or_tune_model_string(self, registry):
        hit = registry.get_or_tune(INTEL_HARPERTOWN, KEY, tuner="model")
        assert hit.source == "tuned"
        assert hit.plan.metadata["tuner"] == "model"
        # Trial row and plan row both carry the tuner provenance.
        (record,) = registry.db.trials()
        assert record.tuner == "model"
        (row,) = registry.db.conn.execute("SELECT tuner FROM plans").fetchall()
        assert row["tuner"] == "model"

    def test_model_tune_persists_artifact(self, registry):
        registry.get_or_tune(INTEL_HARPERTOWN, KEY, tuner="model")
        store = ModelStore(registry.db)
        assert len(store) == 1
        (summary,) = store.models()
        assert summary["model_key"] == model_artifact_key(
            INTEL_HARPERTOWN.fingerprint()
        )
        model = store.get_cost_model(INTEL_HARPERTOWN.fingerprint())
        assert isinstance(model, CostModel)

    def test_dp_string_matches_default(self, registry):
        hit = registry.get_or_tune(INTEL_HARPERTOWN, KEY, tuner="dp")
        assert hit.plan.metadata.get("tuner", "dp") == "dp"
        (record,) = registry.db.trials()
        assert record.tuner == "dp"

    def test_unknown_tuner_string_rejected(self, registry):
        with pytest.raises(ValueError, match="tuner"):
            registry.get_or_tune(INTEL_HARPERTOWN, KEY, tuner="bogus")

    def test_full_mg_key_keeps_model_metadata(self, registry):
        key = TuneKey(
            kind="full-multigrid", max_level=3, instances=1, seed=0
        )
        hit = registry.get_or_tune(INTEL_HARPERTOWN, key, tuner="model")
        assert hit.plan.metadata["tuner"] == "model"
        assert "trials_used" in hit.plan.metadata


class TestModelForProfile:
    def test_fit_once_then_served_from_store(self, registry):
        first = model_for_profile(registry, INTEL_HARPERTOWN)
        assert len(ModelStore(registry.db)) == 1
        second = model_for_profile(registry, INTEL_HARPERTOWN)
        assert second.fingerprint() == first.fingerprint()

    def test_refit_replaces_artifact(self, registry):
        model_for_profile(registry, INTEL_HARPERTOWN)
        model_for_profile(registry, INTEL_HARPERTOWN, refit=True)
        assert len(ModelStore(registry.db)) == 1


class TestCampaigns:
    def test_spec_round_trips_tuner(self):
        spec = CampaignSpec(name="m", tuner="model")
        assert CampaignSpec.from_dict(spec.to_dict()).tuner == "model"
        # Pre-model specs deserialize to the DP default.
        legacy = dict(spec.to_dict())
        del legacy["tuner"]
        assert CampaignSpec.from_dict(legacy).tuner == "dp"

    def test_spec_rejects_unknown_tuner(self):
        with pytest.raises(ValueError, match="tuner"):
            CampaignSpec(name="m", tuner="random")

    def test_tune_cell_uses_spec_tuner(self, registry):
        spec = CampaignSpec(
            name="m", machines=("intel",), levels=(3,), instances=1, tuner="model"
        )
        result = tune_cell(registry, spec, "intel", "unbiased", "poisson", 3)
        assert result.source == "tuned"
        assert result.hit.plan.metadata["tuner"] == "model"
        (record,) = registry.db.trials()
        assert record.tuner == "model"


class TestCLI:
    def test_store_tune_model_tuner(self, tmp_path, capsys):
        db_path = str(tmp_path / "store.sqlite")
        args = [
            "store", "--db", db_path, "tune",
            "--machine", "intel", "--max-level", "3",
            "--instances", "1", "--tuner", "model",
        ]
        assert main(args) == 0
        capsys.readouterr()
        db = TrialDB(db_path)
        (record,) = db.trials()
        assert record.tuner == "model"
        assert len(ModelStore(db)) == 1

    def test_unknown_tuner_rejected_by_parser(self, tmp_path, capsys):
        db_path = str(tmp_path / "store.sqlite")
        with pytest.raises(SystemExit):
            main(["store", "--db", db_path, "tune", "--tuner", "simplex"])


class TestServeFallback:
    def _cold_key(self, cache):
        return cache.key_for(INTEL_HARPERTOWN, None, 3, "unbiased")

    def test_model_fallback_serves_model_plan(self, registry):
        cache = PlanCache(registry, instances=1, seed=0, model_fallback=True)
        entry = cache.get_or_fallback(
            INTEL_HARPERTOWN, self._cold_key(cache)
        )
        assert entry.source == "fallback"
        assert entry.stale  # background DP swap is still owed
        assert entry.plan.metadata["tuner"] == "model"
        assert entry.plan.metadata["serve_fallback"] is True
        assert cache.telemetry.counter("model_fallback_builds") == 1

    def test_model_failure_falls_back_to_heuristic(self, registry, monkeypatch):
        cache = PlanCache(registry, instances=1, seed=0, model_fallback=True)

        def boom(profile, key):
            raise RuntimeError("model tuner unavailable")

        monkeypatch.setattr(cache, "_model_fallback_plan", boom)
        entry = cache.get_or_fallback(INTEL_HARPERTOWN, self._cold_key(cache))
        assert entry.source == "fallback"
        assert entry.plan.metadata.get("heuristic", "").startswith("Strategy")
        assert cache.telemetry.counter("model_fallback_errors") == 1
        assert cache.telemetry.counter("model_fallback_builds") == 0

    def test_default_cache_keeps_heuristic_fallback(self, registry):
        cache = PlanCache(registry, instances=1, seed=0)
        entry = cache.get_or_fallback(INTEL_HARPERTOWN, self._cold_key(cache))
        assert entry.plan.metadata.get("heuristic", "").startswith("Strategy")
        assert cache.telemetry.counter("model_fallback_builds") == 0
