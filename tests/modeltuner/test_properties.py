"""Property-based tests (hypothesis) for the model tuner.

Pins the two contracts the subsystem is built on: the budgeted search
is a pure function of its seed (byte-identical plans on replay, valid
plans for *any* seed), and a cost model fitted from arbitrary
well-formed profiler cells predicts finite, strictly positive seconds
for every op it can be asked to price.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.presets import INTEL_HARPERTOWN
from repro.modeltuner import BOSearch, CostModel
from repro.obs.profile import SolveProfiler
from repro.tuner.choices import DirectChoice
from repro.tuner.config import plan_to_dict
from repro.tuner.training import TrainingData

#: Base op families as a SolveProfiler records them (direct solves land
#: under the sentinel backend "direct").
PROFILED_OPS = ("relax", "residual", "restrict", "interpolate", "direct")

cells = st.lists(
    st.tuples(
        st.integers(min_value=2, max_value=8),  # level
        st.sampled_from(PROFILED_OPS),
        st.sampled_from(("numpy", "cnative", "numba")),
        st.floats(1e-9, 10.0, allow_nan=False, allow_infinity=False),
        st.integers(min_value=1, max_value=50),  # call count
    ),
    max_size=30,
)


def _search(seed: int, max_level: int = 3) -> BOSearch:
    return BOSearch(
        max_level=max_level,
        training=TrainingData(distribution="unbiased", instances=1, seed=0),
        profile=INTEL_HARPERTOWN,
        seed=seed,
    )


class TestSearchDeterminism:
    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=8, deadline=None)
    def test_same_seed_byte_identical_plan(self, seed):
        first = plan_to_dict(_search(seed).tune())
        second = plan_to_dict(_search(seed).tune())
        assert first == second

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=8, deadline=None)
    def test_any_seed_yields_valid_plan(self, seed):
        plan = _search(seed).tune()
        for i in range(plan.num_accuracies):
            assert plan.choice(1, i) == DirectChoice()
        for level in range(1, plan.max_level + 1):
            for i in range(plan.num_accuracies):
                assert plan.choice(level, i) is not None
        cost = plan.time_on(
            INTEL_HARPERTOWN, plan.max_level, plan.num_accuracies - 1
        )
        assert math.isfinite(cost) and cost > 0.0
        assert 0 < plan.metadata["trials_used"] < plan.metadata["trial_budget_dp"]


class TestModelPredictionProperties:
    @given(data=cells, ndim=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_fit_from_arbitrary_cells_predicts_finite_positive(self, data, ndim):
        prof = SolveProfiler()
        for level, op, backend, mean_s, count in data:
            for _ in range(count):
                prof.record(level, op, backend, mean_s)
        model = CostModel.fit(prof.to_training_rows(ndim), INTEL_HARPERTOWN)
        for op in model.known_ops():
            for n in (5, 33, 257):
                value = model.op_seconds(op, n)
                assert math.isfinite(value) and value > 0.0

    @given(data=cells)
    @settings(max_examples=20, deadline=None)
    def test_fit_round_trips_through_json(self, data):
        prof = SolveProfiler()
        for level, op, backend, mean_s, count in data:
            prof.record(level, op, backend, mean_s * count)
        model = CostModel.fit(prof.to_training_rows(2), INTEL_HARPERTOWN)
        clone = CostModel.from_json(model.to_json())
        assert clone.fingerprint() == model.fingerprint()
        for op in ("relax", "direct", "relax@cnative"):
            assert clone.op_seconds(op, 65) == model.op_seconds(op, 65)
