"""Tests for band storage and the scalar reference band Cholesky."""

import numpy as np
import pytest

from repro.grids.poisson import rhs_scale
from repro.linalg.band import (
    bandwidth_of_grid,
    cholesky_banded_reference,
    poisson_band_matrix,
    solve_banded_reference,
)
from tests.grids.test_poisson import dense_poisson_matrix


def band_to_dense(ab: np.ndarray) -> np.ndarray:
    w = ab.shape[0] - 1
    m = ab.shape[1]
    a = np.zeros((m, m))
    for off in range(w + 1):
        for j in range(m - off):
            a[j + off, j] = ab[off, j]
            a[j, j + off] = ab[off, j]
    return a


class TestBandMatrix:
    def test_bandwidth(self):
        assert bandwidth_of_grid(9) == 7
        assert bandwidth_of_grid(3) == 1

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_matches_dense_construction(self, n):
        dense = dense_poisson_matrix(n)
        from_band = band_to_dense(poisson_band_matrix(n))
        np.testing.assert_allclose(from_band, dense)

    def test_row_boundary_decoupling(self):
        # Last unknown of a grid row has no east neighbour: the first
        # subdiagonal must have zeros at row boundaries.
        n = 5
        ab = poisson_band_matrix(n)
        w = n - 2
        assert ab[1, w - 1] == 0.0
        assert ab[1, 0] == pytest.approx(-rhs_scale(n))

    def test_spd(self):
        dense = band_to_dense(poisson_band_matrix(9))
        eigvals = np.linalg.eigvalsh(dense)
        assert eigvals.min() > 0


class TestReferenceCholesky:
    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_factor_matches_dense_cholesky(self, n):
        ab = poisson_band_matrix(n)
        lb = cholesky_banded_reference(ab)
        dense_l = np.linalg.cholesky(band_to_dense(ab))
        np.testing.assert_allclose(_lower_from_band(lb), dense_l, rtol=1e-12)

    def test_input_not_modified(self):
        ab = poisson_band_matrix(5)
        before = ab.copy()
        cholesky_banded_reference(ab)
        np.testing.assert_array_equal(ab, before)

    def test_non_spd_raises(self):
        ab = poisson_band_matrix(5)
        ab[0, :] = -1.0
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_banded_reference(ab)

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_solve_matches_dense(self, n, rng):
        ab = poisson_band_matrix(n)
        lb = cholesky_banded_reference(ab)
        m = (n - 2) ** 2
        rhs = rng.standard_normal(m)
        x = solve_banded_reference(lb, rhs)
        expected = np.linalg.solve(band_to_dense(ab), rhs)
        np.testing.assert_allclose(x, expected, rtol=1e-9)

    def test_solve_rejects_bad_rhs(self):
        lb = cholesky_banded_reference(poisson_band_matrix(5))
        with pytest.raises(ValueError):
            solve_banded_reference(lb, np.zeros(4))


def _lower_from_band(lb: np.ndarray) -> np.ndarray:
    w = lb.shape[0] - 1
    m = lb.shape[1]
    lo = np.zeros((m, m))
    for off in range(w + 1):
        for j in range(m - off):
            lo[j + off, j] = lb[off, j]
    return lo
