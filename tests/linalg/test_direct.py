"""Tests for the DirectSolver facade (all backends) and the Thomas solver."""

import numpy as np
import pytest

from repro.grids.poisson import apply_poisson, residual
from repro.grids.norms import residual_norm
from repro.linalg.direct import DirectSolver, build_interior_rhs, scatter_interior
from repro.linalg.tridiag import thomas_solve
from repro.workloads.distributions import make_problem

BACKENDS = ["block", "lapack", "reference"]


class TestDirectSolver:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovers_manufactured_solution(self, backend, rng):
        # Build b = A u_exact (with u_exact's own boundary); solving must
        # return u_exact to machine precision.
        n = 9
        u_exact = rng.standard_normal((n, n))
        b = apply_poisson(u_exact)
        x = u_exact.copy()
        x[1:-1, 1:-1] = 0.0
        DirectSolver(backend=backend).solve(x, b)
        np.testing.assert_allclose(x, u_exact, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_residual_machine_precision(self, backend):
        problem = make_problem("unbiased", 9, seed=5)
        x = problem.initial_guess()
        DirectSolver(backend=backend).solve(x, problem.b)
        scale = float(np.abs(problem.b).max())
        assert residual_norm(residual(x, problem.b)) <= 1e-9 * scale

    def test_backends_agree(self):
        problem = make_problem("biased", 17, seed=6)
        solutions = []
        for backend in BACKENDS:
            x = problem.initial_guess()
            DirectSolver(backend=backend).solve(x, problem.b)
            solutions.append(x)
        for other in solutions[1:]:
            np.testing.assert_allclose(solutions[0], other, rtol=1e-10)

    def test_boundary_untouched(self):
        problem = make_problem("unbiased", 9, seed=7)
        x = problem.initial_guess()
        boundary_before = x[0, :].copy()
        DirectSolver().solve(x, problem.b)
        np.testing.assert_array_equal(x[0, :], boundary_before)

    def test_caching_gives_same_answers(self):
        problem = make_problem("unbiased", 9, seed=8)
        cached = DirectSolver(backend="block", cache_factorization=True)
        uncached = DirectSolver(backend="block", cache_factorization=False)
        x1 = problem.initial_guess()
        x2 = problem.initial_guess()
        cached.solve(x1, problem.b)
        cached.solve(x1.copy(), problem.b)  # second call reuses the factor
        uncached.solve(x2, problem.b)
        np.testing.assert_allclose(x1, x2, rtol=1e-12)

    def test_cache_populated_only_when_enabled(self):
        problem = make_problem("unbiased", 9, seed=9)
        cached = DirectSolver(cache_factorization=True)
        uncached = DirectSolver(cache_factorization=False)
        cached.solve(problem.initial_guess(), problem.b)
        uncached.solve(problem.initial_guess(), problem.b)
        assert len(cached._cache) == 1
        assert len(uncached._cache) == 0

    def test_solved_copy_preserves_input(self):
        problem = make_problem("unbiased", 9, seed=10)
        x = problem.initial_guess()
        before = x.copy()
        out = DirectSolver().solved_copy(x, problem.b)
        np.testing.assert_array_equal(x, before)
        assert out is not x

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DirectSolver(backend="magma")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DirectSolver().solve(np.zeros((9, 9)), np.zeros((5, 5)))


class TestRhsHelpers:
    def test_build_interior_rhs_folds_boundary(self):
        n = 5
        x = np.zeros((n, n))
        x[0, 1] = 2.0  # boundary north of interior point (1, 1)
        b = np.zeros((n, n))
        rhs = build_interior_rhs(x, b)
        inv_h2 = (n - 1.0) ** 2
        assert rhs[0] == pytest.approx(2.0 * inv_h2)
        assert rhs[1] == pytest.approx(0.0)

    def test_scatter_round_trip(self, rng):
        x = np.zeros((5, 5))
        flat = rng.standard_normal(9)
        scatter_interior(x, flat)
        np.testing.assert_array_equal(x[1:-1, 1:-1].reshape(-1), flat)

    def test_scatter_rejects_bad_length(self):
        with pytest.raises(ValueError):
            scatter_interior(np.zeros((5, 5)), np.zeros(8))


class TestThomas:
    def test_matches_dense_solve(self, rng):
        m = 12
        lower = rng.uniform(-1, 0, m - 1)
        upper = rng.uniform(-1, 0, m - 1)
        diag = np.full(m, 4.0)
        rhs = rng.standard_normal(m)
        a = np.diag(diag) + np.diag(lower, -1) + np.diag(upper, 1)
        np.testing.assert_allclose(
            thomas_solve(lower, diag, upper, rhs), np.linalg.solve(a, rhs), rtol=1e-10
        )

    def test_rejects_inconsistent_lengths(self):
        with pytest.raises(ValueError):
            thomas_solve(np.zeros(3), np.zeros(4), np.zeros(2), np.zeros(4))

    def test_zero_pivot_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            thomas_solve(np.ones(1), np.zeros(2), np.ones(1), np.ones(2))
