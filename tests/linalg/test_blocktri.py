"""Tests for the block-tridiagonal production band solver."""

import numpy as np
import pytest

from repro.linalg.band import cholesky_banded_reference, poisson_band_matrix
from repro.linalg.blocktri import BlockTridiagonalCholesky, poisson_blocks
from tests.linalg.test_band import band_to_dense


class TestPoissonBlocks:
    def test_block_structure(self):
        n = 5
        diag_block, off = poisson_blocks(n)
        dense = band_to_dense(poisson_band_matrix(n))
        w = n - 2
        np.testing.assert_allclose(dense[:w, :w], diag_block)
        np.testing.assert_allclose(dense[w : 2 * w, :w], off * np.eye(w))


class TestBlockSolver:
    @pytest.mark.parametrize("n", [3, 5, 9, 17])
    def test_solve_matches_dense(self, n, rng):
        solver = BlockTridiagonalCholesky(n)
        m = (n - 2) ** 2
        rhs = rng.standard_normal(m)
        dense = band_to_dense(poisson_band_matrix(n))
        np.testing.assert_allclose(
            solver.solve(rhs), np.linalg.solve(dense, rhs), rtol=1e-9
        )

    @pytest.mark.parametrize("n", [5, 9])
    def test_factor_matches_reference_band_cholesky(self, n):
        ours = BlockTridiagonalCholesky(n).lower_band()
        reference = cholesky_banded_reference(poisson_band_matrix(n))
        np.testing.assert_allclose(ours, reference, rtol=1e-10, atol=1e-12)

    def test_factorization_reusable_across_rhs(self, rng):
        solver = BlockTridiagonalCholesky(9)
        dense = band_to_dense(poisson_band_matrix(9))
        for _ in range(3):
            rhs = rng.standard_normal(49)
            np.testing.assert_allclose(
                solver.solve(rhs), np.linalg.solve(dense, rhs), rtol=1e-9
            )

    def test_rejects_bad_rhs_shape(self):
        with pytest.raises(ValueError):
            BlockTridiagonalCholesky(5).solve(np.zeros(5))

    def test_large_grid_residual(self, rng):
        # End-to-end sanity at a size where blocks are nontrivial.
        n = 33
        solver = BlockTridiagonalCholesky(n)
        m = (n - 2) ** 2
        rhs = rng.standard_normal(m)
        x = solver.solve(rhs)
        dense = band_to_dense(poisson_band_matrix(n))
        np.testing.assert_allclose(dense @ x, rhs, rtol=1e-8, atol=1e-8)
