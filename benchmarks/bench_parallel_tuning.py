"""Extension bench: parallel tuning speedup vs. worker count.

Runs the same campaign grid at several ``--jobs`` settings against
fresh stores, reports wall-clock speedup over the serial run, and
verifies the parallel registries are byte-for-byte equivalent to the
serial one (same plan keys, same plan JSON) — the determinism contract
of :mod:`repro.parallel`.

Runnable standalone (CI's bench-smoke job uses ``--smoke``)::

    python benchmarks/bench_parallel_tuning.py --smoke --json out.json
    python benchmarks/bench_parallel_tuning.py --jobs 1 2 4 --min-speedup 2.0

``--min-speedup`` turns the report into a gate: the run fails unless
the largest worker count reaches that speedup (use on multi-core hosts;
the paper's Figure 9 measures exactly this kind of scaling).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.store import Campaign, CampaignSpec, TrialDB

OUT_DIR = Path(__file__).parent / "out"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="worker counts to benchmark (default: 1 2 4; smoke: 1 2)",
    )
    parser.add_argument(
        "--machines", nargs="+", default=None, help="machine presets in the grid"
    )
    parser.add_argument(
        "--distributions", nargs="+", default=None, help="input distributions"
    )
    parser.add_argument(
        "--levels", type=int, nargs="+", default=None, help="finest grid levels"
    )
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small grid and worker counts (CI gate: determinism, not speedup)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="fail unless the largest worker count reaches this speedup "
        "(0 disables the gate; needs a host with enough cores)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=f"write results as JSON (default: {OUT_DIR}/parallel_tuning.json)",
    )
    return parser


def run_grid(spec: CampaignSpec, jobs: int, workdir: Path) -> tuple[float, dict]:
    """One campaign over a fresh store; returns (wall seconds, contents)."""
    campaign = Campaign(spec, TrialDB(workdir / f"store-j{jobs}.sqlite"))
    start = time.perf_counter()
    campaign.run(jobs=jobs)
    wall = time.perf_counter() - start
    contents = campaign.registry.contents()
    campaign.db.close()
    return wall, contents


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        machines = args.machines or ["intel", "amd"]
        distributions = args.distributions or ["unbiased"]
        levels = args.levels or [3, 4]
        instances = args.instances or 1
        job_counts = args.jobs or [1, 2]
    else:
        machines = args.machines or ["intel", "amd", "sun"]
        distributions = args.distributions or ["unbiased", "biased"]
        levels = args.levels or [5, 6]
        instances = args.instances or 2
        job_counts = args.jobs or [1, 2, 4]
    if 1 not in job_counts:
        job_counts = [1] + job_counts
    job_counts = sorted(set(job_counts))

    spec = CampaignSpec(
        name="bench-parallel",
        machines=tuple(machines),
        distributions=tuple(distributions),
        levels=tuple(levels),
        instances=instances,
        seed=args.seed,
    )
    cells = len(spec.cells())
    print(
        f"parallel tuning bench: {cells} cells "
        f"({len(machines)} machines x {len(distributions)} distributions "
        f"x {len(levels)} levels), jobs {job_counts}, "
        f"{os.cpu_count()} host cpu(s)"
    )

    runs = []
    serial_wall = None
    serial_contents = None
    with tempfile.TemporaryDirectory() as tmp:
        for jobs in job_counts:
            wall, contents = run_grid(spec, jobs, Path(tmp))
            if jobs == 1:
                serial_wall, serial_contents = wall, contents
            speedup = serial_wall / wall if wall > 0 else float("inf")
            identical = contents == serial_contents
            runs.append(
                {
                    "jobs": jobs,
                    "wall_seconds": wall,
                    "speedup_vs_serial": speedup,
                    "registry_identical_to_serial": identical,
                }
            )
            print(
                f"  jobs={jobs:<2d} wall={wall:7.2f}s  speedup={speedup:5.2f}x  "
                f"registry {'==' if identical else '!='} serial"
            )

    report = {
        "grid": {
            "machines": machines,
            "distributions": distributions,
            "levels": levels,
            "instances": instances,
            "seed": args.seed,
            "cells": cells,
        },
        "host_cpus": os.cpu_count(),
        "smoke": args.smoke,
        "runs": runs,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "parallel_tuning.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if not all(r["registry_identical_to_serial"] for r in runs):
        failures.append("parallel registry diverged from the serial registry")
    if args.min_speedup > 0:
        best = runs[-1]
        if best["speedup_vs_serial"] < args.min_speedup:
            failures.append(
                f"jobs={best['jobs']} reached {best['speedup_vs_serial']:.2f}x, "
                f"below the {args.min_speedup:.2f}x gate"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
