"""Benchmark-suite fixtures: artifact output directory and helpers.

Every figure/table bench writes the regenerated artifact (the text table
or cycle diagram) to ``benchmarks/out/<name>.txt`` so a benchmark run
leaves a diffable record; EXPERIMENTS.md is assembled from these.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    def _write(name: str, content: str) -> Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(content + "\n")
        return path

    return _write
