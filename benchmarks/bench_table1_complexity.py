"""Table 1 (section 2): serial complexity of the three building blocks.

Paper: Direct n^2, SOR n^1.5, Multigrid n (in n = N^2 grid cells).  The
bench regenerates the table, fits the exponents, and records the artifact.
"""

import pytest

from repro.bench.experiments import table1_complexity


@pytest.fixture(scope="module")
def result():
    return table1_complexity(max_level=7)


def test_table1_regenerate(benchmark, result, write_artifact):
    out = benchmark.pedantic(
        lambda: table1_complexity(max_level=6), rounds=1, iterations=1
    )
    write_artifact("table1_complexity", result.format())
    assert out.fits


def test_exponents_match_paper(result):
    assert result.fits["Direct"].exponent == pytest.approx(2.0, abs=0.2)
    assert result.fits["SOR"].exponent == pytest.approx(1.5, abs=0.2)
    assert result.fits["Multigrid"].exponent == pytest.approx(1.0, abs=0.15)


def test_fit_quality(result):
    for fit in result.fits.values():
        assert fit.r_squared > 0.98
