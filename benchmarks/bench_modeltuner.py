"""Model-tuner bench: budgeted BO search vs the exhaustive DP.

For each operator family, tunes the same key three ways — the paper's
exhaustive DP, the budgeted model-guided :class:`BOSearch`, and the
Strategy 10^final heuristic (the serving fallback the model tuner is
meant to displace) — and compares simulated plan costs and trial
budgets.

Gates (the acceptance bars for the model tuner):

* the model plan's simulated cost is within ``--quality-bar`` of the DP
  plan's (default 1.10, i.e. 10%; ``$REPRO_MG_MODEL_QUALITY`` overrides
  the default for weak CI hosts);
* the search spends at most ``--budget-bar`` of the DP's trial budget
  (default 0.25);
* the model plan beats the Strategy 10^final heuristic on at least two
  benched operator families (the cold-machine serving claim; on some
  families the heuristic happens to *be* the optimum, so a universal
  bar would gate on the workload, not the tuner).

Runnable standalone::

    python benchmarks/bench_modeltuner.py --smoke --json out.json
    python benchmarks/bench_modeltuner.py --level 6 --operators poisson
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.machines.presets import get_preset
from repro.modeltuner import BOSearch, dp_trial_budget
from repro.tuner.dp import VCycleTuner
from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

OUT_DIR = Path(__file__).parent / "out"

#: The acceptance families: the isotropic baseline, the operator whose
#: tuned cycle shapes differ most from it, and the variable-coefficient
#: family (where the fixed heuristic leaves measurable cost behind).
DEFAULT_OPERATORS = ("poisson", "anisotropic(epsilon=0.1)", "varcoeff")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--level", type=int, default=6,
        help="tuning level (default 6, the acceptance level)",
    )
    parser.add_argument("--machine", default="intel")
    parser.add_argument("--distribution", default="unbiased")
    parser.add_argument(
        "--instances", type=int, default=2,
        help="training instances per trial (smoke: 1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="training-data seed")
    parser.add_argument(
        "--search-seed", type=int, default=0,
        help="BO candidate-selection seed (independent of --seed)",
    )
    parser.add_argument(
        "--operators", nargs="+", default=list(DEFAULT_OPERATORS),
        help="operator specs to bench (acceptance needs >= 2 families)",
    )
    parser.add_argument(
        "--quality-bar", type=float,
        default=float(os.environ.get("REPRO_MG_MODEL_QUALITY", "1.10")),
        help="max model/DP simulated-cost ratio "
        "(default 1.10; $REPRO_MG_MODEL_QUALITY overrides)",
    )
    parser.add_argument(
        "--budget-bar", type=float, default=0.25,
        help="max fraction of the DP trial budget the search may spend",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="single training instance; the gates still apply",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write results as JSON (default: {OUT_DIR}/modeltuner.json)",
    )
    return parser


def bench_operator(
    operator: str,
    level: int,
    machine: str,
    distribution: str,
    instances: int,
    seed: int,
    search_seed: int,
) -> dict:
    """Tune one family three ways and report costs + budgets."""
    profile = get_preset(machine)
    training = TrainingData(
        distribution=distribution, instances=instances, seed=seed,
        operator=operator,
    )
    timing = CostModelTiming(profile)
    final = len(DEFAULT_ACCURACIES) - 1

    def cost(plan) -> float:
        return plan.time_on(profile, level, plan.num_accuracies - 1)

    start = time.perf_counter()
    dp_plan = VCycleTuner(
        max_level=level, training=training, timing=timing, keep_audit=False
    ).tune()
    dp_wall = time.perf_counter() - start

    start = time.perf_counter()
    model_plan = BOSearch(
        max_level=level, training=training, profile=profile, seed=search_seed
    ).tune()
    model_wall = time.perf_counter() - start

    heuristic_plan = tune_heuristic(
        HeuristicStrategy(sub_index=final, final_index=final),
        max_level=level,
        accuracies=DEFAULT_ACCURACIES,
        training=training,
        timing=timing,
    )

    budget = dp_trial_budget(level, len(DEFAULT_ACCURACIES))
    dp_cost, model_cost, heuristic_cost = (
        cost(dp_plan), cost(model_plan), cost(heuristic_plan),
    )
    return {
        "operator": operator,
        "dp_cost_s": dp_cost,
        "model_cost_s": model_cost,
        "heuristic_cost_s": heuristic_cost,
        "quality_ratio": model_cost / dp_cost,
        "heuristic_ratio": heuristic_cost / model_cost,
        "beats_heuristic": model_cost < heuristic_cost,
        "trials_used": model_plan.metadata["trials_used"],
        "trial_budget_dp": budget,
        "budget_fraction": model_plan.metadata["trials_used"] / budget,
        "dp_tune_wall_s": dp_wall,
        "model_tune_wall_s": model_wall,
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    instances = 1 if args.smoke else args.instances

    report: dict = {
        "level": args.level,
        "machine": args.machine,
        "distribution": args.distribution,
        "instances": instances,
        "smoke": args.smoke,
        "quality_bar": args.quality_bar,
        "budget_bar": args.budget_bar,
        "operators": [],
    }
    failures: list[str] = []

    print(
        f"model-tuner bench: level {args.level}, machine={args.machine}, "
        f"quality bar {args.quality_bar:g}x, budget bar {args.budget_bar:.0%}"
    )
    for operator in args.operators:
        row = bench_operator(
            operator, args.level, args.machine, args.distribution,
            instances, args.seed, args.search_seed,
        )
        report["operators"].append(row)
        print(
            f"  {operator:<28} model/DP={row['quality_ratio']:.4f}x  "
            f"trials={row['trials_used']}/{row['trial_budget_dp']} "
            f"({row['budget_fraction']:.0%})  "
            f"heuristic/model={row['heuristic_ratio']:.2f}x"
        )
        if row["quality_ratio"] > args.quality_bar:
            failures.append(
                f"{operator}: model plan costs {row['quality_ratio']:.3f}x "
                f"the DP plan (bar {args.quality_bar:g}x)"
            )
        if row["budget_fraction"] > args.budget_bar:
            failures.append(
                f"{operator}: spent {row['trials_used']}/{row['trial_budget_dp']} "
                f"trials ({row['budget_fraction']:.0%}; bar {args.budget_bar:.0%})"
            )
    wins = sum(1 for row in report["operators"] if row["beats_heuristic"])
    need = min(2, len(args.operators))
    report["heuristic_wins"] = wins
    if wins < need:
        failures.append(
            f"model plans beat the Strategy 10^final heuristic on only "
            f"{wins} of {len(args.operators)} operator families (need {need})"
        )

    out_path = Path(args.json) if args.json else OUT_DIR / "modeltuner.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
