"""Extension bench: fleet scaling — N pull-workers filling one registry.

Enqueues one campaign grid (2 operators x 2 distributions x 2 levels by
default) into a shared SQLite store, drains it with fleet worker
processes at several fleet sizes, and reports wall-clock speedup over
the single-worker drain.  Two gates:

* every fleet's resulting plan registry must be byte-identical to the
  single-worker registry (the fleet determinism contract), and
* with ``--min-speedup`` (smoke default: 2.5, overridable via
  ``$REPRO_MG_FLEET_SPEEDUP``), the largest fleet must reach that
  speedup — skipped automatically when the host has fewer CPUs than
  workers, since the gate measures parallel hardware, not the queue.

Runnable standalone (CI's fleet-smoke job uses ``--smoke``)::

    python benchmarks/bench_fleet.py --smoke --json out.json
    python benchmarks/bench_fleet.py --workers 1 2 4 8 --min-speedup 3.0

Workers are separate processes (forked, so interpreter startup is
amortized identically across fleet sizes) sharing one WAL store — the
same claim/renew/complete protocol `repro-mg fleet work` runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.fleet import FleetCoordinator
from repro.parallel.executor import _default_context
from repro.store import CampaignSpec, PlanRegistry, TrialDB

OUT_DIR = Path(__file__).parent / "out"

SPEEDUP_ENV = "REPRO_MG_FLEET_SPEEDUP"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="fleet sizes to benchmark (default: 1 4)",
    )
    parser.add_argument(
        "--machines", nargs="+", default=None, help="machine presets in the grid"
    )
    parser.add_argument(
        "--distributions", nargs="+", default=None, help="input distributions"
    )
    parser.add_argument(
        "--operators", nargs="+", default=None, help="operator specs in the grid"
    )
    parser.add_argument(
        "--levels", type=int, nargs="+", default=None, help="finest grid levels"
    )
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small grid; gates identity always and speedup when the host "
        "has the cores for it",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the largest fleet reaches this speedup over one "
        f"worker (default: ${SPEEDUP_ENV} or 2.5 with --smoke, else 0; "
        "0 disables; auto-skipped when cpus < workers)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=f"write results as JSON (default: {OUT_DIR}/fleet.json)",
    )
    return parser


def _drain(task: tuple[str, str, str]) -> int:
    """One fleet worker process: pull until the campaign settles."""
    from repro.fleet import FleetWorker

    db_path, campaign, worker_id = task
    db = TrialDB(db_path)
    try:
        worker = FleetWorker(db, campaign, worker_id=worker_id, lease_ttl=60.0)
        return len(worker.run())
    finally:
        db.close()


def run_fleet(
    spec: CampaignSpec, workers: int, workdir: Path
) -> tuple[float, dict[str, str]]:
    """Enqueue + drain with ``workers`` processes; returns (wall, contents)."""
    db_path = str(workdir / f"fleet-w{workers}.sqlite")
    db = TrialDB(db_path)
    FleetCoordinator(db, spec.name).enqueue(spec)
    db.close()

    tasks = [(db_path, spec.name, f"bench-w{i}") for i in range(workers)]
    start = time.perf_counter()
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_default_context()
    ) as pool:
        completed = sum(pool.map(_drain, tasks))
    wall = time.perf_counter() - start

    db = TrialDB(db_path)
    contents = PlanRegistry(db).contents()
    db.close()
    if completed != len(spec.cells()):
        raise RuntimeError(
            f"fleet of {workers} completed {completed} cells, "
            f"expected {len(spec.cells())}"
        )
    return wall, contents


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        machines = args.machines or ["intel"]
        distributions = args.distributions or ["unbiased", "biased"]
        operators = args.operators or ["poisson", "anisotropic(epsilon=0.01)"]
        levels = args.levels or [5, 6]
        instances = args.instances or 2
    else:
        machines = args.machines or ["intel", "amd"]
        distributions = args.distributions or ["unbiased", "biased"]
        operators = args.operators or ["poisson", "anisotropic(epsilon=0.01)"]
        levels = args.levels or [6, 7]
        instances = args.instances or 2
    worker_counts = args.workers or [1, 4]
    if 1 not in worker_counts:
        worker_counts = [1] + worker_counts
    worker_counts = sorted(set(worker_counts))

    min_speedup = args.min_speedup
    if min_speedup is None:
        env = os.environ.get(SPEEDUP_ENV)
        if env is not None:
            min_speedup = float(env)
        else:
            min_speedup = 2.5 if args.smoke else 0.0

    spec = CampaignSpec(
        name="bench-fleet",
        machines=tuple(machines),
        distributions=tuple(distributions),
        operators=tuple(operators),
        levels=tuple(levels),
        instances=instances,
        seed=args.seed,
    )
    cells = len(spec.cells())
    cpus = os.cpu_count() or 1
    print(
        f"fleet bench: {cells} cells ({len(operators)} operators x "
        f"{len(distributions)} distributions x {len(levels)} levels x "
        f"{len(machines)} machines), fleets {worker_counts}, {cpus} host cpu(s)"
    )

    runs = []
    single_wall = None
    single_contents = None
    with tempfile.TemporaryDirectory() as tmp:
        for workers in worker_counts:
            wall, contents = run_fleet(spec, workers, Path(tmp))
            if workers == 1:
                single_wall, single_contents = wall, contents
            speedup = single_wall / wall if wall > 0 else float("inf")
            identical = contents == single_contents
            runs.append(
                {
                    "workers": workers,
                    "wall_seconds": wall,
                    "speedup_vs_single": speedup,
                    "registry_identical_to_single": identical,
                }
            )
            print(
                f"  workers={workers:<2d} wall={wall:7.2f}s  "
                f"speedup={speedup:5.2f}x  "
                f"registry {'==' if identical else '!='} single-worker"
            )

    report = {
        "grid": {
            "machines": machines,
            "distributions": distributions,
            "operators": operators,
            "levels": levels,
            "instances": instances,
            "seed": args.seed,
            "cells": cells,
        },
        "host_cpus": cpus,
        "smoke": args.smoke,
        "min_speedup": min_speedup,
        "runs": runs,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "fleet.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if not all(r["registry_identical_to_single"] for r in runs):
        failures.append("fleet registry diverged from the single-worker registry")
    largest = runs[-1]
    if min_speedup > 0:
        if cpus < largest["workers"]:
            print(
                f"NOTE: host has {cpus} cpu(s) < {largest['workers']} workers; "
                f"skipping the {min_speedup:.2f}x speedup gate (identity "
                "still enforced)"
            )
        elif largest["speedup_vs_single"] < min_speedup:
            failures.append(
                f"workers={largest['workers']} reached "
                f"{largest['speedup_vs_single']:.2f}x, below the "
                f"{min_speedup:.2f}x gate"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
