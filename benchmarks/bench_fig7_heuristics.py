"""Figure 7: fixed heuristic strategies vs the autotuner (absolute times).

Paper: biased data, accuracy 10^9, 8 cores; strategies 10^9 and
10^x/10^9.  Shape to reproduce: the autotuner is never worse than any
heuristic, and which heuristic is best depends on problem size.
"""

import pytest

from repro.bench.experiments import fig7_heuristics


@pytest.fixture(scope="module")
def result():
    return fig7_heuristics(max_level=7, machine="intel", distribution="biased")


def test_fig7_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig7_heuristics(max_level=5, min_level=3),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig7_heuristics", result.format())


def test_autotuned_ties_or_beats_every_heuristic(result):
    auto = result.series[-1]
    assert auto.name == "Autotuned"
    for s in result.series[:-1]:
        for i in range(len(result.sizes)):
            assert auto.values[i] <= s.values[i] * 1.0001


def test_heuristic_gap_grows_with_size(result):
    # Strategy 10^9's penalty relative to the autotuner must widen as the
    # problem grows (Fig 8's rising curves).
    strat109 = result.series[0]
    auto = result.series[-1]
    first_ratio = strat109.values[0] / auto.values[0]
    last_ratio = strat109.values[-1] / auto.values[-1]
    assert last_ratio >= first_ratio
    assert last_ratio > 1.5
