"""Figure 14: tuned full-MG cycles across the three architectures.

Paper: all cycles solve unbiased input to accuracy 10^5 (initial size
2^11); every machine gets a *different* optimized shape — AMD and Sun
recurse one level deeper (direct solve at level 4 vs 5 on Intel) and do
more relaxations at medium resolutions.
"""

import pytest

from repro.bench.experiments import fig14_architectures
from repro.cycles.stats import CycleStats


@pytest.fixture(scope="module")
def result():
    return fig14_architectures(max_level=7, target=1e5)


def test_fig14_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig14_architectures(max_level=4), rounds=1, iterations=1
    )
    write_artifact("fig14_architectures", result.format())


def test_three_machines_rendered(result):
    assert len(result.renders) == 3


def test_shapes_differ_across_machines(result):
    # The headline claim: optimized cycle shape is machine-dependent.
    shapes = set(result.renders.values())
    assert len(shapes) >= 2, "all three architectures got identical cycles"


def test_niagara_avoids_big_dense_solves(result):
    # Weak-FPU machine: its direct call (if any) must sit at least as deep
    # as the Intel one, or be replaced by iterated SOR.
    stats = {k: v for k, v in result.stats.items()}
    intel = next(v for k, v in stats.items() if "intel" in k)
    sun = next(v for k, v in stats.items() if "sun" in k)
    assert isinstance(intel, CycleStats) and isinstance(sun, CycleStats)
    sun_direct = sun.direct_level if sun.direct_level is not None else 0
    intel_direct = intel.direct_level if intel.direct_level is not None else 0
    assert sun_direct <= intel_direct or sun.sor_segments > intel.sor_segments
