"""Extension bench: serving throughput and tail latency, cold vs warmed cache.

Drives the solve server with the closed-loop load generator over a
mixed poisson/anisotropic workload, twice:

* **cold start** — fresh store, nothing cached.  The first response per
  workload class must come back via the heuristic fallback *without*
  blocking on the DP tune (stale-while-tune), and the background swaps
  must show up in telemetry.
* **warmed cache** — every class warmed before the load.  Throughput
  and tail latency are compared against the cold run; the gates fail
  the run when the warmed cache is not decisively better.

Two throughputs are reported per phase.  *Stream* throughput counts
only the request stream's wall clock — thanks to stale-while-tune it
stays high even cold, which is the point of the fallback.  *Steady-
state* throughput charges the cold run for its full bootstrap: the
clock runs until every background DP tune has landed, because until
then the system is still paying cold-start cost in the background.
The warmed/cold speedup gate compares steady-state numbers; the p95
gate compares the streams' observed tail latencies.

Runnable standalone (CI's bench-smoke job uses ``--smoke``)::

    python benchmarks/bench_serve.py --smoke --json out.json
    python benchmarks/bench_serve.py --min-speedup 5 --min-p95-factor 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.serve import SolveServer, run_load
from repro.store import TrialDB
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

OUT_DIR = Path(__file__).parent / "out"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--level", type=int, default=None, help="grid level")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2, help="serving threads")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--target", type=float, default=1e5)
    parser.add_argument(
        "--smoke", action="store_true", help="small grid and request counts for CI"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless warmed-cache throughput reaches X times the cold "
        "run's (default: 5 full, 1.5 smoke; 0 disables)",
    )
    parser.add_argument(
        "--min-p95-factor",
        type=float,
        default=None,
        metavar="X",
        help="fail unless cold p95 latency is at least X times the warmed "
        "p95 (default: 2 full, 1.5 smoke; 0 disables)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=f"write results as JSON (default: {OUT_DIR}/serve.json)",
    )
    return parser


def run_phase(
    name: str,
    specs,
    args,
    warm: bool,
) -> dict:
    """One load-generation pass against a fresh server and store."""
    server = SolveServer(
        machine="intel",
        store=TrialDB(":memory:"),
        workers=args.workers,
        queue_size=max(64, args.requests),
        batch_size=args.batch_size,
        instances=args.instances,
        seed=args.seed,
    )
    phase: dict = {"phase": name}
    try:
        if warm:
            warm_started = time.perf_counter()
            for dist, level, operator in specs:
                entry = server.warm(dist, level, operator)
                assert entry.source in ("tuned", "exact"), entry.source
            phase["warmup_seconds"] = time.perf_counter() - warm_started
        else:
            # The stale-while-tune contract, observed: the very first
            # request on a cold key answers from the heuristic fallback
            # in far less time than the DP tune that replaces it.
            dist, level, operator = specs[0]
            probe = make_problem(
                dist, size_of_level(level), args.seed, index=99, operator=operator
            )
            first = server.solve(probe, args.target)
            phase["first_response"] = {
                "plan_source": first.plan_source,
                "latency_s": first.latency_s,
                "stale": first.stale,
            }
        load_started = time.perf_counter()
        report = run_load(
            server,
            specs,
            requests=args.requests,
            clients=args.clients,
            target=args.target,
            seed=args.seed,
        )
        if not warm:
            # Steady state: the cold run is not done bootstrapping until
            # every background swap has landed.
            assert server.wait_for_swaps(timeout=600), "background tunes hung"
            snapshot = server.stats()
            phase["swap_events"] = snapshot["swap_events"]
            phase["background_tune"] = snapshot["latency"].get("background_tune")
        steady_wall = time.perf_counter() - load_started
        report["steady_wall_seconds"] = steady_wall
        report["steady_throughput_rps"] = (
            report["completed"] / steady_wall if steady_wall > 0 else float("inf")
        )
        phase["load"] = report
        phase["counters"] = server.stats()["counters"]
    finally:
        server.shutdown(drain=True)
    return phase


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.level = args.level or 3
        args.requests = args.requests or 24
        args.clients = args.clients or 2
        args.instances = args.instances or 1
        min_speedup = 1.5 if args.min_speedup is None else args.min_speedup
        min_p95 = 1.5 if args.min_p95_factor is None else args.min_p95_factor
    else:
        args.level = args.level or 5
        args.requests = args.requests or 80
        args.clients = args.clients or 4
        args.instances = args.instances or 2
        min_speedup = 5.0 if args.min_speedup is None else args.min_speedup
        min_p95 = 2.0 if args.min_p95_factor is None else args.min_p95_factor

    # Mixed workload: two poisson classes plus an anisotropic one.
    specs = [
        ("unbiased", args.level, None),
        ("biased", args.level, None),
        ("unbiased", args.level, "anisotropic(epsilon=0.01)"),
    ]
    print(
        f"serve bench: level {args.level}, {args.requests} requests x "
        f"{args.clients} clients, {len(specs)} workload classes, "
        f"{args.workers} serving threads"
    )

    cold = run_phase("cold", specs, args, warm=False)
    warmed = run_phase("warmed", specs, args, warm=True)

    cold_rps = cold["load"]["steady_throughput_rps"]
    warm_rps = warmed["load"]["steady_throughput_rps"]
    speedup = warm_rps / cold_rps if cold_rps > 0 else float("inf")
    cold_p95, warm_p95 = cold["load"]["p95_s"], warmed["load"]["p95_s"]
    p95_factor = cold_p95 / warm_p95 if warm_p95 > 0 else float("inf")

    first = cold["first_response"]
    print(
        f"  cold first response: {first['plan_source']} in "
        f"{first['latency_s'] * 1e3:.1f}ms "
        f"({len(cold['swap_events'])} background swap(s) observed)"
    )
    for phase in (cold, warmed):
        load = phase["load"]
        print(
            f"  {phase['phase']:>6}: stream {load['throughput_rps']:8.1f} req/s  "
            f"steady-state {load['steady_throughput_rps']:8.1f} req/s  "
            f"p50={load['p50_s'] * 1e3:7.2f}ms  "
            f"p95={load['p95_s'] * 1e3:7.2f}ms  "
            f"p99={load['p99_s'] * 1e3:7.2f}ms  "
            f"rejected={load['rejected']}"
        )
    print(
        f"  warmed-vs-cold: steady-state throughput {speedup:.1f}x, "
        f"p95 latency {p95_factor:.1f}x better"
    )

    report = {
        "config": {
            "level": args.level,
            "requests": args.requests,
            "clients": args.clients,
            "workers": args.workers,
            "batch_size": args.batch_size,
            "instances": args.instances,
            "seed": args.seed,
            "smoke": args.smoke,
            "specs": [list(s) for s in specs],
        },
        "cold": cold,
        "warmed": warmed,
        "throughput_speedup": speedup,
        "p95_factor": p95_factor,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "serve.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if first["plan_source"] != "fallback":
        failures.append(
            f"cold first response came from {first['plan_source']!r}, "
            "not the heuristic fallback"
        )
    if len(cold["swap_events"]) < len(specs):
        failures.append(
            f"only {len(cold['swap_events'])} background swap(s) observed "
            f"for {len(specs)} cold classes"
        )
    if min_speedup > 0 and speedup < min_speedup:
        failures.append(
            f"warmed steady-state throughput {speedup:.2f}x cold, below the "
            f"{min_speedup:.2f}x gate"
        )
    if min_p95 > 0 and p95_factor < min_p95:
        failures.append(
            f"cold p95 only {p95_factor:.2f}x the warmed p95, below the "
            f"{min_p95:.2f}x gate"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
