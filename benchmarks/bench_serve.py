"""Extension bench: serving throughput and tail latency, cold vs warmed cache.

Drives the solve server with the closed-loop load generator over a
mixed poisson/anisotropic workload, twice:

* **cold start** — fresh store, nothing cached.  The first response per
  workload class must come back via the heuristic fallback *without*
  blocking on the DP tune (stale-while-tune), and the background swaps
  must show up in telemetry.
* **warmed cache** — every class warmed before the load.  Throughput
  and tail latency are compared against the cold run; the gates fail
  the run when the warmed cache is not decisively better.

Two throughputs are reported per phase.  *Stream* throughput counts
only the request stream's wall clock — thanks to stale-while-tune it
stays high even cold, which is the point of the fallback.  *Steady-
state* throughput charges the cold run for its full bootstrap: the
clock runs until every background DP tune has landed, because until
then the system is still paying cold-start cost in the background.
The warmed/cold speedup gate compares steady-state numbers; the p95
gate compares the streams' observed tail latencies.

With ``--shards N`` the bench instead measures **horizontal scaling**:
the same seeded mixed 2D/3D traffic is driven through one warmed
single-process server and through a sharded front door of N worker
processes (zero-copy shared-memory payloads), and the gates require
the sharded tier to reach ``--min-shard-speedup`` times the
single-process throughput at equal-or-better p99.  Like the fleet
bench, the speedup/p99 gates measure parallel hardware and are skipped
(with a note) when the host has fewer CPUs than shards; set
``$REPRO_MG_SERVE_SPEEDUP`` to override the gate without editing CI.

Runnable standalone (CI's bench-smoke and serve-scale jobs use
``--smoke``)::

    python benchmarks/bench_serve.py --smoke --json out.json
    python benchmarks/bench_serve.py --min-speedup 5 --min-p95-factor 2
    python benchmarks/bench_serve.py --shards 4 --min-shard-speedup 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.obs.bench import write_bench_report
from repro.serve import FrontDoor, SolveServer, run_load
from repro.store import TrialDB
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

OUT_DIR = Path(__file__).parent / "out"

SPEEDUP_ENV = "REPRO_MG_SERVE_SPEEDUP"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--level", type=int, default=None, help="grid level")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2, help="serving threads")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--target", type=float, default=1e5)
    parser.add_argument(
        "--smoke", action="store_true", help="small grid and request counts for CI"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless warmed-cache throughput reaches X times the cold "
        "run's (default: 5 full, 1.5 smoke; 0 disables)",
    )
    parser.add_argument(
        "--min-p95-factor",
        type=float,
        default=None,
        metavar="X",
        help="fail unless cold p95 latency is at least X times the warmed "
        "p95 (default: 2 full, 1.5 smoke; 0 disables)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="measure horizontal scaling instead: warmed single-process "
        "server vs an N-shard front door on the same seeded traffic",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the sharded tier reaches X times single-process "
        f"throughput (default: ${SPEEDUP_ENV} or 4 full, 1.5 smoke; "
        "0 disables; auto-skipped when cpus < shards)",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=None,
        metavar="X",
        help="fail if sharded p99 exceeds X times the single-process p99 "
        "(default: 1.0 full — equal or better — and 2.0 smoke; "
        "0 disables; skipped with the speedup gate when cpus < shards)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=f"write results as JSON (default: {OUT_DIR}/serve.json)",
    )
    return parser


def run_phase(
    name: str,
    specs,
    args,
    warm: bool,
) -> dict:
    """One load-generation pass against a fresh server and store."""
    server = SolveServer(
        machine="intel",
        store=TrialDB(":memory:"),
        workers=args.workers,
        queue_size=max(64, args.requests),
        batch_size=args.batch_size,
        instances=args.instances,
        seed=args.seed,
    )
    phase: dict = {"phase": name}
    try:
        if warm:
            warm_started = time.perf_counter()
            for dist, level, operator in specs:
                entry = server.warm(dist, level, operator)
                assert entry.source in ("tuned", "exact"), entry.source
            phase["warmup_seconds"] = time.perf_counter() - warm_started
        else:
            # The stale-while-tune contract, observed: the very first
            # request on a cold key answers from the heuristic fallback
            # in far less time than the DP tune that replaces it.
            dist, level, operator = specs[0]
            probe = make_problem(
                dist, size_of_level(level), args.seed, index=99, operator=operator
            )
            first = server.solve(probe, args.target)
            phase["first_response"] = {
                "plan_source": first.plan_source,
                "latency_s": first.latency_s,
                "stale": first.stale,
            }
        load_started = time.perf_counter()
        report = run_load(
            server,
            specs,
            requests=args.requests,
            clients=args.clients,
            target=args.target,
            seed=args.seed,
        )
        if not warm:
            # Steady state: the cold run is not done bootstrapping until
            # every background swap has landed.
            assert server.wait_for_swaps(timeout=600), "background tunes hung"
            snapshot = server.stats()
            phase["swap_events"] = snapshot["swap_events"]
            phase["background_tune"] = snapshot["latency"].get("background_tune")
        steady_wall = time.perf_counter() - load_started
        report["steady_wall_seconds"] = steady_wall
        report["steady_throughput_rps"] = (
            report["completed"] / steady_wall if steady_wall > 0 else float("inf")
        )
        phase["load"] = report
        phase["counters"] = server.stats()["counters"]
    finally:
        server.shutdown(drain=True)
    return phase


def run_scale(args) -> int:
    """Single-process vs N-shard front door on identical seeded traffic."""
    if args.smoke:
        level2d = args.level or 3
        level3d = 3
        requests = args.requests or 48
        clients = args.clients or max(4, 2 * args.shards)
        instances = args.instances or 1
        min_speedup_default = 1.5
        p99_ratio_default = 2.0
    else:
        level2d = args.level or 5
        level3d = 4
        requests = args.requests or 160
        clients = args.clients or max(8, 2 * args.shards)
        instances = args.instances or 2
        min_speedup_default = 4.0
        p99_ratio_default = 1.0
    min_speedup = args.min_shard_speedup
    if min_speedup is None:
        env = os.environ.get(SPEEDUP_ENV)
        min_speedup = float(env) if env is not None else min_speedup_default
    p99_ratio = (
        args.max_p99_ratio if args.max_p99_ratio is not None else p99_ratio_default
    )

    # Mixed 2D/3D traffic: two 2D classes plus a 3D one, so routing
    # spans operators, levels, and dimensionality.
    specs = [
        ("unbiased", level2d, None),
        ("biased", level2d, None),
        ("unbiased", level3d, "poisson3d"),
    ]
    cpus = os.cpu_count() or 1
    print(
        f"serve scale bench: {requests} requests x {clients} clients over "
        f"{len(specs)} classes (2D L{level2d} + 3D L{level3d}), "
        f"single-process vs {args.shards} shards, {cpus} host cpu(s)"
    )

    def load_kwargs():
        return dict(
            requests=requests,
            clients=clients,
            target=args.target,
            seed=args.seed,
        )

    single = SolveServer(
        machine="intel",
        store=TrialDB(":memory:"),
        workers=args.workers,
        queue_size=max(64, requests),
        batch_size=args.batch_size,
        instances=instances,
        seed=args.seed,
    )
    try:
        for dist, level, operator in specs:
            single.warm(dist, level, operator)
        single_report = run_load(single, specs, **load_kwargs())
    finally:
        single.shutdown(drain=True)

    door = FrontDoor(
        shards=args.shards,
        machine="intel",
        workers=args.workers,
        queue_size=max(64, requests),
        batch_size=args.batch_size,
        instances=instances,
        seed=args.seed,
        pool_slots=max(64, requests),
    )
    try:
        for dist, level, operator in specs:
            door.warm(dist, level, operator)
        sharded_report = run_load(door, specs, **load_kwargs())
        frontdoor_counters = door.stats()["frontdoor"]["counters"]
    finally:
        door.shutdown()

    single_rps = single_report["throughput_rps"]
    sharded_rps = sharded_report["throughput_rps"]
    speedup = sharded_rps / single_rps if single_rps > 0 else float("inf")
    single_p99 = single_report["p99_s"]
    sharded_p99 = sharded_report["p99_s"]
    observed_ratio = sharded_p99 / single_p99 if single_p99 > 0 else float("inf")
    for name, rpt in (("single", single_report), ("sharded", sharded_report)):
        print(
            f"  {name:>8}: {rpt['throughput_rps']:8.1f} req/s  "
            f"p50={rpt['p50_s'] * 1e3:7.2f}ms  "
            f"p95={rpt['p95_s'] * 1e3:7.2f}ms  "
            f"p99={rpt['p99_s'] * 1e3:7.2f}ms  "
            f"rejected={rpt['rejected']}"
        )
    print(
        f"  sharded-vs-single: throughput {speedup:.2f}x, "
        f"p99 ratio {observed_ratio:.2f} (schedule digest "
        f"{single_report['schedule_digest']} == "
        f"{sharded_report['schedule_digest']})"
    )

    report = {
        "mode": "scale",
        "config": {
            "levels": {"2d": level2d, "3d": level3d},
            "requests": requests,
            "clients": clients,
            "workers": args.workers,
            "batch_size": args.batch_size,
            "instances": instances,
            "seed": args.seed,
            "shards": args.shards,
            "smoke": args.smoke,
            "specs": [list(s) for s in specs],
        },
        "host_cpus": cpus,
        "min_shard_speedup": min_speedup,
        "max_p99_ratio": p99_ratio,
        "single": single_report,
        "sharded": sharded_report,
        "frontdoor_counters": frontdoor_counters,
        "shard_speedup": speedup,
        "p99_ratio": observed_ratio,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "serve.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    envelope_path = write_bench_report(
        "serve_scale", report, time.time(), OUT_DIR
    )
    print(f"wrote {out_path} and {envelope_path}")

    failures = []
    if single_report["schedule_digest"] != sharded_report["schedule_digest"]:
        failures.append("the two phases did not offer identical traffic")
    if sharded_report["completed"] != requests:
        failures.append(
            f"sharded tier completed {sharded_report['completed']} of "
            f"{requests} requests"
        )
    if (min_speedup > 0 or p99_ratio > 0) and cpus < args.shards:
        print(
            f"NOTE: host has {cpus} cpu(s) < {args.shards} shards; skipping "
            f"the {min_speedup:.2f}x speedup / {p99_ratio:.2f} p99 gates "
            "(completion and traffic identity still enforced)"
        )
    else:
        if min_speedup > 0 and speedup < min_speedup:
            failures.append(
                f"sharded throughput {speedup:.2f}x single-process, below "
                f"the {min_speedup:.2f}x gate"
            )
        if p99_ratio > 0 and observed_ratio > p99_ratio:
            failures.append(
                f"sharded p99 is {observed_ratio:.2f}x the single-process "
                f"p99, above the {p99_ratio:.2f} gate"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards is not None:
        return run_scale(args)
    if args.smoke:
        args.level = args.level or 3
        args.requests = args.requests or 24
        args.clients = args.clients or 2
        args.instances = args.instances or 1
        min_speedup = 1.5 if args.min_speedup is None else args.min_speedup
        min_p95 = 1.5 if args.min_p95_factor is None else args.min_p95_factor
    else:
        args.level = args.level or 5
        args.requests = args.requests or 80
        args.clients = args.clients or 4
        args.instances = args.instances or 2
        min_speedup = 5.0 if args.min_speedup is None else args.min_speedup
        min_p95 = 2.0 if args.min_p95_factor is None else args.min_p95_factor

    # Mixed workload: two poisson classes plus an anisotropic one.
    specs = [
        ("unbiased", args.level, None),
        ("biased", args.level, None),
        ("unbiased", args.level, "anisotropic(epsilon=0.01)"),
    ]
    print(
        f"serve bench: level {args.level}, {args.requests} requests x "
        f"{args.clients} clients, {len(specs)} workload classes, "
        f"{args.workers} serving threads"
    )

    cold = run_phase("cold", specs, args, warm=False)
    warmed = run_phase("warmed", specs, args, warm=True)

    cold_rps = cold["load"]["steady_throughput_rps"]
    warm_rps = warmed["load"]["steady_throughput_rps"]
    speedup = warm_rps / cold_rps if cold_rps > 0 else float("inf")
    cold_p95, warm_p95 = cold["load"]["p95_s"], warmed["load"]["p95_s"]
    p95_factor = cold_p95 / warm_p95 if warm_p95 > 0 else float("inf")

    first = cold["first_response"]
    print(
        f"  cold first response: {first['plan_source']} in "
        f"{first['latency_s'] * 1e3:.1f}ms "
        f"({len(cold['swap_events'])} background swap(s) observed)"
    )
    for phase in (cold, warmed):
        load = phase["load"]
        print(
            f"  {phase['phase']:>6}: stream {load['throughput_rps']:8.1f} req/s  "
            f"steady-state {load['steady_throughput_rps']:8.1f} req/s  "
            f"p50={load['p50_s'] * 1e3:7.2f}ms  "
            f"p95={load['p95_s'] * 1e3:7.2f}ms  "
            f"p99={load['p99_s'] * 1e3:7.2f}ms  "
            f"rejected={load['rejected']}"
        )
    print(
        f"  warmed-vs-cold: steady-state throughput {speedup:.1f}x, "
        f"p95 latency {p95_factor:.1f}x better"
    )

    report = {
        "config": {
            "level": args.level,
            "requests": args.requests,
            "clients": args.clients,
            "workers": args.workers,
            "batch_size": args.batch_size,
            "instances": args.instances,
            "seed": args.seed,
            "smoke": args.smoke,
            "specs": [list(s) for s in specs],
        },
        "cold": cold,
        "warmed": warmed,
        "throughput_speedup": speedup,
        "p95_factor": p95_factor,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "serve.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    envelope_path = write_bench_report("serve", report, time.time(), OUT_DIR)
    print(f"wrote {out_path} and {envelope_path}")

    failures = []
    if first["plan_source"] != "fallback":
        failures.append(
            f"cold first response came from {first['plan_source']!r}, "
            "not the heuristic fallback"
        )
    if len(cold["swap_events"]) < len(specs):
        failures.append(
            f"only {len(cold['swap_events'])} background swap(s) observed "
            f"for {len(specs)} cold classes"
        )
    if min_speedup > 0 and speedup < min_speedup:
        failures.append(
            f"warmed steady-state throughput {speedup:.2f}x cold, below the "
            f"{min_speedup:.2f}x gate"
        )
    if min_p95 > 0 and p95_factor < min_p95:
        failures.append(
            f"cold p95 only {p95_factor:.2f}x the warmed p95, below the "
            f"{min_p95:.2f}x gate"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
