"""Shared driver for the Figure 10-13 benches (reference comparison).

Each figure is the same experiment at one (distribution, accuracy) pair
across the three machines; these helpers run it and hold the common
assertions about the paper's shape.
"""

from __future__ import annotations

from repro.bench.experiments import ReferenceComparisonResult, fig10_13_reference_comparison

MACHINES = ("intel", "amd", "sun")


def run_panels(
    distribution: str, target: float, max_level: int = 6, instances: int = 2
) -> dict[str, ReferenceComparisonResult]:
    return {
        machine: fig10_13_reference_comparison(
            max_level=max_level,
            machine=machine,
            distribution=distribution,
            target=target,
            instances=instances,
        )
        for machine in MACHINES
    }


def combined_text(panels: dict[str, ReferenceComparisonResult]) -> str:
    return "\n\n".join(panels[m].format() for m in MACHINES)


def assert_autotuned_improves(panels: dict[str, ReferenceComparisonResult]) -> None:
    """Paper: 'On all three architectures, we see that the autotuned
    algorithms provide an improvement over the reference algorithms'
    (with near-ties at high accuracy and large size, section 4.2.2).

    At our scaled-down sizes the tuned plans are open-loop (worst-case
    trained iteration counts) while the references stop closed-loop per
    instance, so a tuned plan may trail reference V by up to one cycle
    (~15-25%) at mid sizes; the robust claims are the small-size shortcut
    advantage and the win against reference full MG at the top size.
    """
    for machine, res in panels.items():
        names = {s.name: s for s in res.series}
        ref_v = names["Reference V"].values
        ref_fmg = names["Reference Full MG"].values
        best_auto = [
            min(a, b)
            for a, b in zip(
                names["Autotuned V"].values, names["Autotuned Full MG"].values
            )
        ]
        assert best_auto[-1] <= ref_fmg[-1] * 1.05, f"{machine}: loses to ref FMG"
        for i in range(len(ref_v)):
            assert best_auto[i] <= ref_v[i] * 1.25, f"{machine}: size idx {i}"


def assert_small_sizes_use_shortcut(panels: dict[str, ReferenceComparisonResult]) -> None:
    """'an especially marked difference for small problem sizes due to the
    autotuned algorithms' use of the direct solve'."""
    for machine, res in panels.items():
        names = {s.name: s for s in res.series}
        ratio = names["Autotuned V"].values[0] / names["Reference V"].values[0]
        assert ratio < 0.9, f"{machine}: no small-size advantage ({ratio:.2f})"
