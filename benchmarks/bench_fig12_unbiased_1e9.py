"""Figure 12: relative time vs reference V, unbiased data, accuracy 10^9.

Paper: at high accuracy and large size the autotuner essentially *ties*
the reference full multigrid on Intel/AMD (gains "more difficult ...
due to a greater percentage of compute time being spent on unavoidable
relaxations at the finest grid resolution"), with wins still available
on the Niagara.
"""

import pytest

from benchmarks._refcomp import combined_text, run_panels


@pytest.fixture(scope="module")
def panels():
    return run_panels("unbiased", 1e9)


def test_fig12_regenerate(benchmark, panels, write_artifact):
    benchmark.pedantic(
        lambda: run_panels("unbiased", 1e9, max_level=4, instances=1),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig12_unbiased_1e9", combined_text(panels))


def test_autotuned_never_loses_badly(panels):
    # At 10^9 near-ties are the expected outcome (paper section 4.2.2);
    # the open-loop tuned plans may overshoot the closed-loop references by
    # roughly one V cycle at these scaled-down sizes.
    for machine, res in panels.items():
        names = {s.name: s for s in res.series}
        for i in range(len(res.sizes)):
            best_auto = min(
                names["Autotuned V"].values[i],
                names["Autotuned Full MG"].values[i],
            )
            best_ref = min(
                names["Reference V"].values[i],
                names["Reference Full MG"].values[i],
            )
            assert best_auto <= best_ref * 1.45, f"{machine} idx {i}"


def test_small_sizes_still_win(panels):
    for res in panels.values():
        names = {s.name: s for s in res.series}
        assert names["Autotuned V"].values[0] < names["Reference V"].values[0]
