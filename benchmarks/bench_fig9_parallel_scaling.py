"""Figure 9: parallel speedup of the tuned solver, 1..8 worker threads.

Paper: near-linear speedup flattening toward 8 threads on the 8-core
Xeon.  Reproduced with the virtual-time work-stealing scheduler over the
tuned plan's task graph (see DESIGN.md substitutions: the container has
one core, so wall-clock parallel speedup is not measurable here).
"""

import pytest

from repro.bench.experiments import fig9_parallel_scaling


@pytest.fixture(scope="module")
def result():
    return fig9_parallel_scaling(max_level=7, machine="intel", max_threads=8)


def test_fig9_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig9_parallel_scaling(max_level=5, max_threads=4),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig9_parallel_scaling", result.format())


def test_speedup_monotone_nondecreasing(result):
    for a, b in zip(result.speedups, result.speedups[1:]):
        assert b >= a * 0.98


def test_speedup_meaningful_at_8_threads(result):
    assert result.speedups[-1] > 2.5


def test_speedup_sublinear(result):
    for threads, speedup in zip(result.threads, result.speedups):
        assert speedup <= threads + 1e-9


def test_diminishing_returns(result):
    # The increment from 7->8 threads must not exceed the 1->2 increment
    # (concavity of the curve, the paper's flattening).
    first_gain = result.speedups[1] - result.speedups[0]
    last_gain = result.speedups[-1] - result.speedups[-2]
    assert last_gain <= first_gain + 1e-9
