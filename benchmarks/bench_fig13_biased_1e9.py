"""Figure 13: relative time vs reference V, biased data, accuracy 10^9.
Paper: Niagara keeps a 1.9x win vs reference full MG at N = 2049; the
other machines essentially tie at large sizes."""

import pytest

from benchmarks._refcomp import combined_text, run_panels


@pytest.fixture(scope="module")
def panels():
    return run_panels("biased", 1e9)


def test_fig13_regenerate(benchmark, panels, write_artifact):
    benchmark.pedantic(
        lambda: run_panels("biased", 1e9, max_level=4, instances=1),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig13_biased_1e9", combined_text(panels))


def test_autotuned_never_loses_badly(panels):
    for machine, res in panels.items():
        names = {s.name: s for s in res.series}
        for i in range(len(res.sizes)):
            best_auto = min(
                names["Autotuned V"].values[i],
                names["Autotuned Full MG"].values[i],
            )
            best_ref = min(
                names["Reference V"].values[i],
                names["Reference Full MG"].values[i],
            )
            assert best_auto <= best_ref * 1.45, f"{machine} idx {i}"


def test_artifact_includes_speedups(panels):
    text = combined_text(panels)
    assert "speedup vs reference full MG" in text
