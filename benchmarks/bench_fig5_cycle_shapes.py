"""Figure 5: tuned V and full-MG cycle shapes on the AMD profile.

Paper: N = 2049 on AMD Barcelona, cycles for accuracies 10, 10^3, 10^5,
10^7, trained on unbiased and biased data.  Scaled here to N = 65.
"""

import pytest

from repro.bench.experiments import fig5_cycle_shapes
from repro.cycles.stats import CycleStats


@pytest.fixture(scope="module")
def result():
    return fig5_cycle_shapes(max_level=6, machine="amd", targets=(1e1, 1e3, 1e5, 1e7))


def test_fig5_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig5_cycle_shapes(max_level=4, targets=(1e1, 1e3)),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig5_cycle_shapes", result.format())


def test_all_sixteen_cycles_rendered(result):
    # 2 distributions x 2 plan kinds x 4 accuracies.
    assert len(result.renders) == 16


def test_higher_accuracy_cycles_do_more_work(result):
    # Within one distribution/kind, the accuracy-10^7 cycle must perform
    # at least as many relaxations as the accuracy-10 cycle.
    for dist in ("unbiased", "biased"):
        for kind in ("V", "full-MG"):
            lo = result.stats[f"{kind} cycle, {dist}, accuracy 10 (amd-barcelona)"]
            hi = result.stats[f"{kind} cycle, {dist}, accuracy 1e+07 (amd-barcelona)"]
            assert isinstance(lo, CycleStats) and isinstance(hi, CycleStats)
            assert sum(hi.relaxations.values()) >= sum(lo.relaxations.values())


def test_cycles_take_shortcuts(result):
    # Tuned cycles bottom out in a direct or iterated-SOR shortcut above
    # the 3x3 base case (the paper's key structural finding).
    shortcut_found = False
    for stats in result.stats.values():
        assert isinstance(stats, CycleStats)
        if (stats.direct_level or 1) > 1 or stats.sor_segments:
            shortcut_found = True
    assert shortcut_found
