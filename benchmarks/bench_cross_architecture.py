"""Section 4.3: the cross-architecture tuning penalty.

Paper: the Niagara-trained full-MG cycle runs 29% slower on the Xeon
than the natively trained one; the Xeon-trained cycle is 79% slower on
the Niagara.  Shape to reproduce: both penalties non-negative, and the
penalty on the weaker machine at least as large.
"""

import pytest

from repro.bench.experiments import cross_architecture


@pytest.fixture(scope="module")
def result():
    return cross_architecture(max_level=6, machines=("intel", "sun"), target=1e5)


def test_cross_arch_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: cross_architecture(max_level=4, machines=("intel", "sun")),
        rounds=1,
        iterations=1,
    )
    write_artifact("cross_architecture", result.format())


def test_two_directions_measured(result):
    assert len(result.entries) == 2


def test_foreign_tuning_never_wins(result):
    for _trained, _run, pct in result.entries:
        assert pct >= -0.5  # native tuning is optimal under its own prices


def test_some_penalty_exists(result):
    assert max(pct for *_rest, pct in result.entries) > 1.0
