"""Figure 11: relative time vs reference V, biased data, accuracy 10^5.
Paper speedups vs reference full MG at N = 2049: 2.9x / 2.5x / 1.8x."""

import pytest

from benchmarks._refcomp import (
    assert_autotuned_improves,
    assert_small_sizes_use_shortcut,
    combined_text,
    run_panels,
)


@pytest.fixture(scope="module")
def panels():
    return run_panels("biased", 1e5)


def test_fig11_regenerate(benchmark, panels, write_artifact):
    benchmark.pedantic(
        lambda: run_panels("biased", 1e5, max_level=4, instances=1),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig11_biased_1e5", combined_text(panels))


def test_autotuned_improves_everywhere(panels):
    assert_autotuned_improves(panels)


def test_small_size_shortcut(panels):
    assert_small_sizes_use_shortcut(panels)
