"""Figure 10: relative time vs reference V, unbiased data, accuracy 10^5,
on Intel / AMD / Sun profiles.  Paper speedups vs reference full MG at
N = 2049: 1.2x (Intel), 1.1x (AMD), 1.8x (Sun)."""

import pytest

from benchmarks._refcomp import (
    assert_autotuned_improves,
    assert_small_sizes_use_shortcut,
    combined_text,
    run_panels,
)


@pytest.fixture(scope="module")
def panels():
    return run_panels("unbiased", 1e5)


def test_fig10_regenerate(benchmark, panels, write_artifact):
    benchmark.pedantic(
        lambda: run_panels("unbiased", 1e5, max_level=4, instances=1),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig10_unbiased_1e5", combined_text(panels))


def test_autotuned_improves_everywhere(panels):
    assert_autotuned_improves(panels)


def test_small_size_shortcut(panels):
    assert_small_sizes_use_shortcut(panels)


def test_speedups_vs_reference_full_mg_positive(panels):
    for res in panels.values():
        assert res.speedup_at_top["Autotuned Full MG"] >= 0.95
