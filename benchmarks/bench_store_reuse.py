"""Extension bench: plan-registry amortization (the store's reason to exist).

Measures end-to-end ``solve_service`` latency with a cold store (DP
tuning pass included) against repeated calls served by registry exact
hits, plus the raw registry lookup cost.  The registry hit must skip
the tuner entirely, making repeated solves dramatically cheaper — the
paper's "tune once, reuse the configuration" model (section 3.2.1)
measured as a speedup.
"""

import os
import time

import pytest

from repro.core import poisson_problem, solve_service
from repro.machines.presets import INTEL_HARPERTOWN
from repro.store import PlanRegistry, TrialDB, TuneKey

#: CI's bench-smoke job shrinks the grid via this knob; the speedup
#: gate below holds at any level, just with smaller absolute numbers.
MAX_LEVEL = int(os.environ.get("REPRO_MG_BENCH_LEVEL", "6"))
TARGET = 1e5
INSTANCES = 2


@pytest.fixture(scope="module")
def problem():
    return poisson_problem("unbiased", n=2**MAX_LEVEL + 1, seed=77)


def _timed_service(problem, store):
    start = time.perf_counter()
    _, _, hit = solve_service(
        problem, TARGET, machine="intel", instances=INSTANCES, store=store
    )
    return time.perf_counter() - start, hit


def test_store_reuse_regenerate(benchmark, problem, write_artifact):
    db = TrialDB(":memory:")

    cold_wall, cold_hit = _timed_service(problem, db)
    assert cold_hit.source == "tuned"

    def warm_solve():
        return _timed_service(problem, db)

    warm_wall, warm_hit = benchmark.pedantic(warm_solve, rounds=5, iterations=1)
    assert warm_hit.source == "exact"

    registry = PlanRegistry(db)
    key = TuneKey(max_level=MAX_LEVEL, instances=INSTANCES)
    start = time.perf_counter()
    lookups = 20
    for _ in range(lookups):
        assert registry.get(INTEL_HARPERTOWN, key).source == "exact"
    lookup_wall = (time.perf_counter() - start) / lookups

    speedup = cold_wall / warm_wall
    lines = [
        f"plan-registry amortization (level {MAX_LEVEL}, target {TARGET:.0e}):",
        f"  cold solve_service (DP tune + solve): {cold_wall:.3f} s",
        f"  warm solve_service (registry hit):    {warm_wall:.3f} s",
        f"  registry lookup alone:                {lookup_wall * 1e3:.2f} ms",
        f"  amortization speedup:                 {speedup:.1f}x",
    ]
    write_artifact("extension_store_reuse", "\n".join(lines))
    # The win the subsystem exists for: warm calls skip the tuner.
    assert speedup > 2.0


def test_registry_hit_is_byte_stable(problem):
    db = TrialDB(":memory:")
    _, first = _timed_service(problem, db)
    _, second = _timed_service(problem, db)
    assert first.plan_json == second.plan_json
