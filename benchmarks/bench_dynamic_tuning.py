"""Extension bench: dynamic input-adaptive dispatch (paper section 6).

Runs a mixed unbiased/biased workload through the DynamicSolver and
verifies (a) every instance is routed to the plan trained for its class,
(b) every solve meets the accuracy target, and (c) dispatch adds no
measurable op-count overhead over using the matching plan directly.
"""

import pytest

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.core import autotune
from repro.machines.meter import OpMeter
from repro.machines.presets import INTEL_HARPERTOWN
from repro.tuner.dynamic import DynamicSolver
from repro.workloads.distributions import make_problem

MAX_LEVEL = 6
TARGET = 1e5


@pytest.fixture(scope="module")
def solver():
    plans = {
        dist: autotune(max_level=MAX_LEVEL, machine="intel", distribution=dist)
        for dist in ("unbiased", "biased")
    }
    return DynamicSolver(plans=plans)


@pytest.fixture(scope="module")
def workload():
    return [
        make_problem(dist, 2**MAX_LEVEL + 1, seed=40 + i)
        for i, dist in enumerate(
            ("unbiased", "biased", "biased", "unbiased", "biased", "unbiased")
        )
    ]


def test_dynamic_dispatch_regenerate(benchmark, solver, workload, write_artifact):
    def run_stream():
        return [solver.solve(p, TARGET)[1] for p in workload]

    labels = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    lines = ["dynamic dispatch over a mixed workload (target 1e5):"]
    for problem, label in zip(workload, labels):
        lines.append(f"  true={problem.label:<9} routed-to={label}")
    write_artifact("extension_dynamic_tuning", "\n".join(lines))


def test_routing_is_perfect(solver, workload):
    for problem in workload:
        label, plan = solver.plan_for(problem)
        assert label == problem.label
        assert plan.metadata["distribution"] == problem.label


def test_accuracy_contract_held(solver, workload):
    cache = ReferenceSolutionCache()
    for problem in workload:
        judge = AccuracyJudge(problem.initial_guess(), cache.get(problem))
        x, _ = solver.solve(problem, TARGET)
        assert judge.accuracy_of(x) >= 0.5 * TARGET


def test_no_dispatch_overhead_in_op_counts(solver, workload):
    problem = workload[0]
    meter = OpMeter()
    _, label = solver.solve(problem, TARGET, meter)
    plan = solver.plans[label]
    expected = plan.unit_meter(MAX_LEVEL, plan.accuracy_index(TARGET))
    assert meter == expected
    assert INTEL_HARPERTOWN.price(meter) == pytest.approx(
        INTEL_HARPERTOWN.price(expected)
    )
