"""Kernel backend bench: accelerated backends vs the NumPy reference.

Times every accelerable primitive (SOR sweep, residual, restriction,
interpolation+correction) for the requested backend against the NumPy
reference at the bench level, then executes one *tuner-selected* plan
both ways — per-level backends as tuned, and with the backends stripped
— and compares wall-clock.  Byte-identity is asserted throughout: every
accelerated kernel must reproduce the reference bit-for-bit, and the
two plan executions must return byte-identical solution grids (the
contract that makes the backend a pure pricing dimension).

Gates:

* byte-identity of every kernel and of the plan executions (always);
* ``--min-speedup X``: V-cycles at the bench level on the accelerated
  backend must run >= X times faster than the same cycles on NumPy
  (the acceptance bar is 5x on level-7 2-D V-cycles).  The tuned plan's
  end-to-end speedup is reported too, but the gate is the V-cycle
  workload — a DP plan's wall-clock is partly direct solves whose
  per-call SciPy overhead no backend can touch;
* the tuner must actually *select* the accelerated backend on at least
  one level whenever ``--min-speedup`` is given.

Runnable standalone::

    python benchmarks/bench_kernels.py --smoke --json out.json
    python benchmarks/bench_kernels.py --min-speedup 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.kernels import backend_provenance, get_backend, resolve_backend
from repro.machines.presets import get_preset
from repro.operators.spec import shared_operator
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

OUT_DIR = Path(__file__).parent / "out"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", default="auto",
        help="kernel backend to bench against NumPy (default: auto — the "
        "best backend available on this host)",
    )
    parser.add_argument(
        "--operator", default="poisson",
        help="operator spec to bench (default poisson)",
    )
    parser.add_argument(
        "--level", type=int, default=7,
        help="bench grid level (default 7, the acceptance level; smoke: 5)",
    )
    parser.add_argument("--machine", default="intel")
    parser.add_argument("--distribution", default="unbiased")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (median wins)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small level / few repeats; gates byte-identity only",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless the tuned plan with accelerated levels runs "
        ">= X times faster than the same plan on NumPy",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write results as JSON (default: {OUT_DIR}/kernels.json)",
    )
    return parser


def _median_time(fn, repeats: int, inner: int = 3) -> float:
    """Median seconds of ``inner`` back-to-back calls (best of repeats)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner)
    samples.sort()
    return samples[len(samples) // 2]


def bench_primitives(
    backend_name: str, operator: str, level: int, seed: int, repeats: int
) -> tuple[list[dict], list[str]]:
    """Per-kernel timings + byte-identity checks at the bench level.

    Returns (rows, failures); each row compares one primitive's NumPy
    reference against the accelerated binding on identical inputs.
    """
    n = size_of_level(level)
    op = shared_operator(operator, n)
    accel = get_backend(backend_name)
    accel.warmup()
    ref = get_backend("numpy").bind(op)
    fast = accel.bind(op)
    if fast is None:
        return [], [f"backend {backend_name!r} does not bind {operator!r}"]

    rng = np.random.default_rng(seed)
    shape = (n,) * op.ndim
    u0 = rng.uniform(-1.0, 1.0, size=shape)
    b = rng.uniform(-1.0, 1.0, size=shape)
    omega = op.omega_opt()

    rows: list[dict] = []
    failures: list[str] = []

    def compare(name: str, ref_run, fast_run, ref_out, fast_out) -> None:
        identical = bool(np.array_equal(ref_out, fast_out))
        if not identical:
            failures.append(f"{name}: {backend_name} differs from numpy at n={n}")
        t_ref = _median_time(ref_run, repeats)
        t_fast = _median_time(fast_run, repeats)
        rows.append(
            {
                "kernel": name,
                "n": n,
                "numpy_s": t_ref,
                f"{backend_name}_s": t_fast,
                "ratio": t_ref / t_fast if t_fast > 0 else float("inf"),
                "byte_identical": identical,
            }
        )

    ur, uf = u0.copy(), u0.copy()
    ref.sor_sweeps(ur, b, omega, 1)
    fast.sor_sweeps(uf, b, omega, 1)
    compare(
        "sor_sweep",
        lambda: ref.sor_sweeps(u0.copy(), b, omega, 1),
        lambda: fast.sor_sweeps(u0.copy(), b, omega, 1),
        ur,
        uf,
    )
    compare(
        "residual",
        lambda: ref.residual(u0, b),
        lambda: fast.residual(u0, b),
        ref.residual(u0, b),
        fast.residual(u0, b),
    )
    r = ref.residual(u0, b)
    compare(
        "restrict",
        lambda: ref.restrict(r),
        lambda: fast.restrict(r),
        ref.restrict(r),
        fast.restrict(r),
    )
    ec = ref.restrict(r)
    xr, xf = u0.copy(), u0.copy()
    ref.interpolate_correction(xr, ec)
    fast.interpolate_correction(xf, ec)
    compare(
        "interpolate",
        lambda: ref.interpolate_correction(u0.copy(), ec),
        lambda: fast.interpolate_correction(u0.copy(), ec),
        xr,
        xf,
    )
    return rows, failures


def _run_both_ways(
    plan: TunedVPlan,
    operator: str,
    distribution: str,
    seed: int,
    repeats: int,
) -> tuple[dict, list[str]]:
    """Execute ``plan`` as tuned and with its backends stripped.

    Executors are warmed (direct-solver factorizations, kernel bindings)
    before timing, so the comparison is steady-state plan execution.
    Returns wall-clocks, the speedup, and a byte-identity verdict.
    """
    reference = TunedVPlan(
        accuracies=plan.accuracies,
        max_level=plan.max_level,
        table=plan.table,
        metadata={k: v for k, v in plan.metadata.items() if k != "backend"},
        ndim=plan.ndim,
    )
    acc_index = plan.num_accuracies - 1
    n = size_of_level(plan.max_level)
    problem = make_problem(distribution, n, seed, operator=operator)
    failures: list[str] = []

    def runner(p):
        executor = PlanExecutor(operator=operator)

        def run() -> np.ndarray:
            x = problem.initial_guess()
            executor.run_v(p, x, problem.b, acc_index)
            return x

        return run

    run_fast, run_ref = runner(plan), runner(reference)
    x_fast, x_ref = run_fast(), run_ref()  # also warms both executors
    identical = bool(np.array_equal(x_fast, x_ref))
    if not identical:
        failures.append(
            "plan executed with its accelerated levels is not "
            "byte-identical to the NumPy execution"
        )
    wall_fast = _median_time(run_fast, repeats, inner=1)
    wall_ref = _median_time(run_ref, repeats, inner=1)
    report = {
        "level": plan.max_level,
        "backends": {str(k): v for k, v in sorted(plan.backends.items())},
        "numpy_wall_s": wall_ref,
        "accelerated_wall_s": wall_fast,
        "speedup": wall_ref / wall_fast if wall_fast > 0 else float("inf"),
        "byte_identical": identical,
    }
    return report, failures


def bench_tuned_plan(
    backend_name: str,
    operator: str,
    distribution: str,
    level: int,
    machine: str,
    seed: int,
    repeats: int,
) -> tuple[dict, list[str]]:
    """Tune one plan with the backend axis and execute it both ways."""
    profile = get_preset(machine)
    plan = VCycleTuner(
        max_level=level,
        training=TrainingData(
            distribution=distribution, instances=2, seed=seed, operator=operator
        ),
        timing=CostModelTiming(profile),
        backend=backend_name,
        keep_audit=False,
    ).tune()
    report, failures = _run_both_ways(plan, operator, distribution, seed, repeats)
    report["tuned_backends"] = report.pop("backends")
    return report, failures


def bench_vcycles(
    backend_name: str,
    operator: str,
    distribution: str,
    level: int,
    seed: int,
    repeats: int,
    cycles: int = 3,
) -> tuple[dict, list[str]]:
    """The ``--min-speedup`` gate workload: pure V-cycles at ``level``.

    A recurse-to-the-bottom plan (SOR smoothing at the coarsest level,
    every level on the accelerated backend) isolates the stencil
    kernels this bench exists to measure — a DP-tuned plan's wall-clock
    is diluted by its direct solves, whose SciPy per-call overhead is
    identical on every backend.
    """
    from repro.tuner.choices import RecurseChoice, SORChoice

    # Level 1 never runs (recursion bottoms out at level 2) but the
    # plan table must cover every level >= 1 to validate.
    table = {(1, 0): SORChoice(iterations=1), (2, 0): SORChoice(iterations=4)}
    for lvl in range(3, level + 1):
        table[(lvl, 0)] = RecurseChoice(iterations=cycles if lvl == level else 1,
                                        sub_accuracy=0)
    plan = TunedVPlan(
        accuracies=(1e1,),
        max_level=level,
        table=table,
        metadata={"operator": operator},
        backends={lvl: backend_name for lvl in range(2, level + 1)},
    )
    report, failures = _run_both_ways(plan, operator, distribution, seed, repeats)
    report["cycles"] = cycles
    return report, failures


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    level = 5 if args.smoke else args.level
    repeats = 2 if args.smoke else args.repeats
    requested = resolve_backend(args.backend)
    backend = requested
    if backend != "numpy" and not get_backend(backend).available():
        # An explicitly requested backend this host cannot run: report
        # the numpy fallback rather than dying in bind().
        print(f"backend {backend!r} is unavailable here (numpy-fallback)")
        backend = "numpy"
    provenance = backend_provenance(backend)

    report: dict = {
        "operator": args.operator,
        "level": level,
        "machine": args.machine,
        "smoke": args.smoke,
        "backend": backend if backend == requested else "numpy-fallback",
        "requested_backend": requested,
        "provenance": provenance,
    }
    failures: list[str] = []

    print(
        f"kernel bench: operator={args.operator}, level {level} "
        f"(n={size_of_level(level)}), backend={backend} "
        f"[{provenance.get('detail', '')}]"
    )

    if backend == "numpy":
        # No accelerated backend on this host: provenance-only report.
        print("no accelerated backend available (numpy-fallback)")
        if args.min_speedup is not None:
            failures.append(
                f"--min-speedup {args.min_speedup:g} requires an accelerated "
                "backend, but none is available on this host"
            )
    else:
        rows, kernel_failures = bench_primitives(
            backend, args.operator, level, args.seed, repeats
        )
        failures.extend(kernel_failures)
        report["kernels"] = rows
        for row in rows:
            print(
                f"  {row['kernel']:<12} numpy={row['numpy_s'] * 1e6:8.1f}us  "
                f"{backend}={row[f'{backend}_s'] * 1e6:8.1f}us  "
                f"ratio={row['ratio']:.2f}x  "
                f"identical={row['byte_identical']}"
            )

        plan_report, plan_failures = bench_tuned_plan(
            backend, args.operator, args.distribution, level,
            args.machine, args.seed, repeats,
        )
        failures.extend(plan_failures)
        report["plan"] = plan_report
        print(
            f"tuned plan (backends {plan_report['tuned_backends'] or '{}'}): "
            f"numpy={plan_report['numpy_wall_s'] * 1e3:.2f}ms  "
            f"{backend}={plan_report['accelerated_wall_s'] * 1e3:.2f}ms  "
            f"speedup={plan_report['speedup']:.2f}x"
        )

        vcycle_report, vcycle_failures = bench_vcycles(
            backend, args.operator, args.distribution, level,
            args.seed, repeats,
        )
        failures.extend(vcycle_failures)
        report["vcycles"] = vcycle_report
        print(
            f"V-cycles at level {level} (x{vcycle_report['cycles']}): "
            f"numpy={vcycle_report['numpy_wall_s'] * 1e3:.2f}ms  "
            f"{backend}={vcycle_report['accelerated_wall_s'] * 1e3:.2f}ms  "
            f"speedup={vcycle_report['speedup']:.2f}x"
        )

        if args.min_speedup is not None:
            if not plan_report["tuned_backends"]:
                failures.append(
                    f"tuner did not select backend {backend!r} on any level "
                    f"at level {level}"
                )
            if vcycle_report["speedup"] < args.min_speedup:
                failures.append(
                    f"V-cycle speedup {vcycle_report['speedup']:.2f}x is below "
                    f"the --min-speedup bar {args.min_speedup:g}x"
                )

    out_path = Path(args.json) if args.json else OUT_DIR / "kernels.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
