"""Micro-benchmarks of the numerical substrates.

Not a paper figure, but the foundation every experiment rests on: the
wall-clock cost of each primitive kernel at representative sizes.  Useful
for validating the host-calibrated cost model and spotting regressions.
"""

import numpy as np
import pytest

from repro.grids.poisson import residual
from repro.grids.transfer import interpolate_bilinear, restrict_full_weighting
from repro.linalg.blocktri import BlockTridiagonalCholesky
from repro.linalg.direct import DirectSolver
from repro.multigrid.cycles import vcycle
from repro.relax.sor import sor_redblack
from repro.workloads.distributions import make_problem


@pytest.fixture(scope="module")
def grids129():
    problem = make_problem("unbiased", 129, seed=1)
    return problem.initial_guess(), problem.b


def test_sor_sweep_129(benchmark, grids129):
    u, b = grids129
    benchmark(sor_redblack, u, b, 1.15, 1)


def test_residual_129(benchmark, grids129):
    u, b = grids129
    out = np.zeros_like(u)
    benchmark(residual, u, b, out)


def test_restrict_129(benchmark, grids129):
    u, _ = grids129
    benchmark(restrict_full_weighting, u)


def test_interpolate_65_to_129(benchmark):
    coarse = make_problem("unbiased", 65, seed=2).initial_guess()
    benchmark(interpolate_bilinear, coarse)


def test_direct_solve_33_block(benchmark):
    problem = make_problem("unbiased", 33, seed=3)
    solver = DirectSolver(backend="block", cache_factorization=False)
    benchmark(lambda: solver.solve(problem.initial_guess(), problem.b))


def test_direct_solve_33_lapack(benchmark):
    problem = make_problem("unbiased", 33, seed=3)
    solver = DirectSolver(backend="lapack", cache_factorization=False)
    benchmark(lambda: solver.solve(problem.initial_guess(), problem.b))


def test_direct_solve_33_cached_factor(benchmark):
    problem = make_problem("unbiased", 33, seed=3)
    solver = DirectSolver(backend="lapack", cache_factorization=True)
    solver.solve(problem.initial_guess(), problem.b)  # warm the cache
    benchmark(lambda: solver.solve(problem.initial_guess(), problem.b))


def test_block_factorization_65(benchmark):
    benchmark(BlockTridiagonalCholesky, 65)


def test_vcycle_129(benchmark, grids129):
    u, b = grids129
    benchmark(vcycle, u, b)
