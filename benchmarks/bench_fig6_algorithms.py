"""Figure 6: autotuned vs Direct / SOR / simple multigrid, accuracy 10^9.

Paper: unbiased data, 8-core Intel, sizes to N = 16385.  Shape to
reproduce: direct is fastest at small N (and the autotuned algorithm
matches it by taking the shortcut), multigrid wins at large N with the
autotuned algorithm competitive or better, SOR and direct blow up
super-linearly.  Scaled here to N = 129.
"""

import pytest

from repro.bench.experiments import fig6_algorithm_comparison


@pytest.fixture(scope="module")
def result():
    return fig6_algorithm_comparison(max_level=7, machine="intel", instances=2)


def test_fig6_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig6_algorithm_comparison(max_level=5, instances=1),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig6_algorithms", result.format())


def _series(result, name):
    return next(s for s in result.series if s.name == name)


def test_autotuned_matches_direct_at_small_sizes(result):
    auto = _series(result, "Autotuned")
    direct = _series(result, "Direct")
    assert auto.values[0] == pytest.approx(direct.values[0], rel=0.01)


def test_autotuned_wins_at_large_sizes(result):
    auto = _series(result, "Autotuned")
    for name in ("Direct", "SOR"):
        assert auto.values[-1] < _series(result, name).values[-1]


def test_multigrid_scales_best_among_basics(result):
    mg = _series(result, "Multigrid")
    sor = _series(result, "SOR")
    direct = _series(result, "Direct")
    growth = lambda s: s.values[-1] / s.values[2]
    assert growth(mg) < growth(sor) < growth(direct)


def test_everything_reached_target(result):
    for name in ("SOR", "Multigrid", "Autotuned"):
        assert all(a >= 0.5e9 for a in result.achieved[name])
