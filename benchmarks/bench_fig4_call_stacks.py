"""Figure 4: call stacks of tuned MULTIGRID-V4 (unbiased and biased).

Paper: Intel Xeon, N = 4097, ladder (10, 10^3, 10^5, 10^7, 10^9); the
tuned V4 chains down through *different* accuracy variants per level.
Scaled here to N = 129.
"""

import pytest

from repro.bench.experiments import fig4_call_stacks


@pytest.fixture(scope="module")
def result():
    return fig4_call_stacks(max_level=7, machine="intel")


def test_fig4_regenerate(benchmark, result, write_artifact):
    benchmark.pedantic(
        lambda: fig4_call_stacks(max_level=5, machine="intel"),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig4_call_stacks", result.format())


def test_stacks_use_sub_accuracies(result):
    # The tuned chain must actually recurse (not solve everything direct)
    # at this size, and reference tuned sub-variants by accuracy.
    for name, text in result.renders.items():
        assert "MULTIGRID-V4" in text
        assert "RECURSE" in text, f"{name} never recursed"


def test_distributions_differ_or_document(result):
    # Unbiased vs biased training may produce different stacks; record
    # both artifacts either way (the paper's Fig 4a vs 4b differ).
    assert len(result.renders) == 2
