"""Extension bench: per-operator kernel and tuning costs, cycle-shape diversity.

Times the operator-layer kernels (apply / residual / red-black SOR sweep /
direct solve) for each built-in operator family, runs an end-to-end DP
tune per operator, and reports the tuned top-level cycle shapes — the
scenario-diversity result: the anisotropic operator tunes to a different
cycle shape than the isotropic Poisson one, on the same machine model and
input distribution.

Runnable standalone (CI's bench-smoke job uses ``--smoke``)::

    python benchmarks/bench_operators.py --smoke --json out.json
    python benchmarks/bench_operators.py --max-level 7 --repeats 20
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.api import autotune
from repro.operators import make_operator
from repro.store.sink import plan_cycle_shape
from repro.util.validation import size_of_level

OUT_DIR = Path(__file__).parent / "out"

OPERATORS = ("poisson", "varcoeff", "anisotropic(epsilon=0.01)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--operators", nargs="+", default=list(OPERATORS), metavar="OP",
        help="operator specs to benchmark",
    )
    parser.add_argument(
        "--max-level", type=int, default=6,
        help="tuning level and kernel grid level (smoke: 5)",
    )
    parser.add_argument("--repeats", type=int, default=10, help="kernel timing repeats")
    parser.add_argument("--machine", default="amd")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small level and few repeats (CI gate: runs + shape diversity)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write results as JSON (default: {OUT_DIR}/operators.json)",
    )
    return parser


def _time_kernel(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def bench_kernels(name: str, n: int, repeats: int) -> dict:
    """Median kernel times for one operator at grid size ``n``."""
    op = make_operator(name, n)
    rng = np.random.default_rng(0)
    u = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    scratch = np.zeros_like(u)
    x = np.zeros_like(u)
    op.direct_solve(x.copy(), b)  # warm the factorization cache
    return {
        "apply_s": _time_kernel(lambda: op.apply(u, out=scratch), repeats),
        "residual_s": _time_kernel(lambda: op.residual(u, b, out=scratch), repeats),
        "sor_sweep_s": _time_kernel(lambda: op.sor_sweeps(x, b, 1.15, 1), repeats),
        "direct_solve_s": _time_kernel(lambda: op.direct_solve(x, b), repeats),
    }


def bench_tuning(name: str, args: argparse.Namespace, level: int) -> dict:
    start = time.perf_counter()
    plan = autotune(
        max_level=level,
        machine=args.machine,
        distribution="unbiased",
        instances=args.instances,
        seed=args.seed,
        operator=name,
    )
    wall = time.perf_counter() - start
    return {"tune_wall_s": wall, "cycle_shape": plan_cycle_shape(plan)}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    level = 5 if args.smoke else args.max_level
    repeats = 3 if args.smoke else args.repeats
    n = size_of_level(level)

    print(
        f"operator bench: {len(args.operators)} operators, level {level} "
        f"(n={n}), machine={args.machine}"
    )
    results = []
    for name in args.operators:
        kernels = bench_kernels(name, n, repeats)
        tuning = bench_tuning(name, args, level)
        results.append({"operator": name, "kernels": kernels, **tuning})
        print(
            f"  {name:<28} sor={kernels['sor_sweep_s'] * 1e6:8.1f}us  "
            f"residual={kernels['residual_s'] * 1e6:8.1f}us  "
            f"tune={tuning['tune_wall_s']:6.2f}s"
        )
        print(f"  {'':<28} shape: {tuning['cycle_shape']}")

    shapes = {r["operator"]: r["cycle_shape"] for r in results}
    distinct = len(set(shapes.values()))
    print(f"distinct tuned cycle shapes: {distinct}/{len(results)}")

    report = {
        "level": level,
        "n": n,
        "machine": args.machine,
        "seed": args.seed,
        "instances": args.instances,
        "smoke": args.smoke,
        "results": results,
        "distinct_cycle_shapes": distinct,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "operators.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    # Gate: with the default operator list, anisotropic strong coupling
    # must tune to a different cycle shape than isotropic Poisson.
    failures = []
    if "poisson" in shapes:
        for name, shape in shapes.items():
            if name.startswith("anisotropic") and shape == shapes["poisson"]:
                failures.append(
                    f"{name} tuned to the same cycle shape as poisson: {shape}"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
