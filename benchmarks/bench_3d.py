"""3-D workloads bench: tuned plans vs the paper's fixed heuristic.

Runs the dimension-general stack end-to-end on 3-D Poisson (and
anisotropic 3-D) workloads:

* measures the V(1,1) residual convergence factor at the bench level
  (the acceptance bar is <= 0.25 per cycle at level >= 5);
* DP-tunes a 3-D plan and trains the paper's strongest fixed heuristic
  (Strategy 10^final) on identical training data;
* prices both on the machine cost model at every ladder accuracy and
  wall-clocks real solves with each plan.

Gate (CI runs ``--smoke``): the tuned plan must never price worse than
the heuristic at any accuracy, and the convergence factor bar must
hold.  The DP searches a superset of the heuristic's candidate space on
the same cost model, so a violation means the 3-D op pricing or the DP
threading broke — exactly what this bench exists to catch.

Runnable standalone::

    python benchmarks/bench_3d.py --smoke --json out.json
    python benchmarks/bench_3d.py --max-level 5 --operator anisotropic3d(epsx=0.01)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.api import autotune, solve
from repro.grids.norms import residual_norm
from repro.machines.presets import get_preset
from repro.multigrid.cycles import vcycle
from repro.operators import shared_operator
from repro.store.sink import plan_cycle_shape
from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

OUT_DIR = Path(__file__).parent / "out"

#: Acceptance bar: measured residual contraction per V(1,1) cycle.
CONVERGENCE_FACTOR_BAR = 0.25


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--operator", default="poisson3d",
        help="3-D operator spec to tune (default poisson3d)",
    )
    parser.add_argument(
        "--max-level", type=int, default=5,
        help="tuning/bench grid level (smoke: 4; acceptance factor: >= 5)",
    )
    parser.add_argument("--machine", default="intel")
    parser.add_argument("--distribution", default="unbiased")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument("--solves", type=int, default=5, help="wall-clock solve repeats")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small level / few solves (CI gate: tuned <= heuristic cost, "
        "convergence factor bar at the smoke level)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write results as JSON (default: {OUT_DIR}/bench_3d.json)",
    )
    return parser


def measure_convergence_factor(operator: str, level: int, seed: int) -> list[float]:
    """Residual contraction factors of successive V(1,1) cycles."""
    n = size_of_level(level)
    op = shared_operator(operator, n)
    rng = np.random.default_rng(seed)
    u = np.zeros((n,) * 3)
    b = rng.uniform(-1.0, 1.0, size=(n,) * 3)
    prev = residual_norm(op.residual(u, b))
    factors = []
    for _ in range(6):
        vcycle(u, b, operator=op)
        cur = residual_norm(op.residual(u, b))
        if cur == 0.0 or prev == 0.0:
            break
        factors.append(cur / prev)
        prev = cur
    return factors


def wallclock_solves(plan, operator: str, level: int, target: float,
                     seed: int, repeats: int) -> float:
    """Median wall-clock seconds of a full plan execution."""
    n = size_of_level(level)
    samples = []
    for i in range(repeats):
        problem = make_problem("unbiased", n, seed, index=i, operator=operator)
        start = time.perf_counter()
        solve(plan, problem, target)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    level = 4 if args.smoke else args.max_level
    repeats = 2 if args.smoke else args.solves
    n = size_of_level(level)
    profile = get_preset(args.machine)

    print(
        f"3-D bench: operator={args.operator}, level {level} (n={n}**3), "
        f"machine={args.machine}"
    )

    factors = measure_convergence_factor(args.operator, level, args.seed)
    worst_factor = max(factors) if factors else 0.0
    print(
        "V(1,1) residual factors: "
        + " ".join(f"{f:.3f}" for f in factors)
        + f"  (worst {worst_factor:.3f}, bar {CONVERGENCE_FACTOR_BAR})"
    )

    training = TrainingData(
        distribution=args.distribution, instances=args.instances,
        seed=args.seed, operator=args.operator,
    )
    start = time.perf_counter()
    tuned = autotune(
        max_level=level, machine=profile, distribution=args.distribution,
        instances=args.instances, seed=args.seed, operator=args.operator,
    )
    tune_wall = time.perf_counter() - start
    final = len(DEFAULT_ACCURACIES) - 1
    heuristic = tune_heuristic(
        HeuristicStrategy(sub_index=final, final_index=final),
        max_level=level,
        accuracies=DEFAULT_ACCURACIES,
        training=training,
        timing=CostModelTiming(profile),
    )
    print(f"tuned ({tune_wall:.1f}s): {plan_cycle_shape(tuned)}")
    print(f"heuristic 10^final:       {plan_cycle_shape(heuristic)}")

    ladder = []
    for i, accuracy in enumerate(DEFAULT_ACCURACIES):
        tuned_cost = tuned.time_on(profile, level, i)
        heuristic_cost = heuristic.time_on(profile, level, i)
        ladder.append(
            {
                "accuracy": accuracy,
                "tuned_cost_s": tuned_cost,
                "heuristic_cost_s": heuristic_cost,
                "speedup": heuristic_cost / tuned_cost if tuned_cost else 1.0,
            }
        )
        print(
            f"  p=1e{int(np.log10(accuracy)):<2d} tuned={tuned_cost:.3e}s  "
            f"heuristic={heuristic_cost:.3e}s  "
            f"speedup={ladder[-1]['speedup']:.2f}x"
        )

    target = DEFAULT_ACCURACIES[-1]
    tuned_wall = wallclock_solves(tuned, args.operator, level, target,
                                  args.seed, repeats)
    heuristic_wall = wallclock_solves(heuristic, args.operator, level, target,
                                      args.seed, repeats)
    print(
        f"wall-clock solve @1e{int(np.log10(target))}: tuned={tuned_wall * 1e3:.1f}ms  "
        f"heuristic={heuristic_wall * 1e3:.1f}ms"
    )

    from repro.kernels import backend_provenance, resolve_backend

    report = {
        "operator": args.operator,
        "level": level,
        "n": n,
        "machine": args.machine,
        "smoke": args.smoke,
        "provenance": backend_provenance(resolve_backend("auto")),
        "convergence_factors": factors,
        "worst_convergence_factor": worst_factor,
        "tune_wall_s": tune_wall,
        "tuned_cycle_shape": plan_cycle_shape(tuned),
        "heuristic_cycle_shape": plan_cycle_shape(heuristic),
        "ladder": ladder,
        "tuned_solve_wall_s": tuned_wall,
        "heuristic_solve_wall_s": heuristic_wall,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "bench_3d.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if not factors or worst_factor > CONVERGENCE_FACTOR_BAR:
        failures.append(
            f"V-cycle convergence factor {worst_factor:.3f} exceeds "
            f"{CONVERGENCE_FACTOR_BAR}"
        )
    for row in ladder:
        if row["tuned_cost_s"] > row["heuristic_cost_s"] * (1.0 + 1e-9):
            failures.append(
                f"tuned plan prices worse than the fixed heuristic at "
                f"accuracy {row['accuracy']:g}: {row['tuned_cost_s']:.3e}s "
                f"vs {row['heuristic_cost_s']:.3e}s"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
