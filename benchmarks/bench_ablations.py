"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures: these probe the knobs the paper fixed, quantifying how
much each one matters to the headline results.
"""


from repro.bench.ablations import (
    ablation_accuracy_ladder,
    ablation_factor_caching,
    ablation_pareto_vs_discrete,
    ablation_smoother,
    ablation_training_distribution,
)


def test_ablation_accuracy_ladder(benchmark, write_artifact):
    res = benchmark.pedantic(
        lambda: ablation_accuracy_ladder(max_level=6), rounds=1, iterations=1
    )
    write_artifact("ablation_accuracy_ladder", res.format())
    assert "m=5" in res.table


def test_ablation_training_distribution(benchmark, write_artifact):
    res = benchmark.pedantic(
        lambda: ablation_training_distribution(max_level=6),
        rounds=1,
        iterations=1,
    )
    write_artifact("ablation_training_distribution", res.format())
    # Every train/test pairing must be reported.
    assert res.table.count("unbiased") >= 4


def test_ablation_smoother(benchmark, write_artifact):
    res = benchmark.pedantic(
        lambda: ablation_smoother(level=6, target=1e3), rounds=1, iterations=1
    )
    write_artifact("ablation_smoother", res.format())
    # The paper's stated result: SOR needs fewer sweeps than Jacobi.
    lines = [l for l in res.table.splitlines() if "SOR" in l or "Jacobi" in l]
    sweeps = {line.split()[0]: int(line.split()[-2]) for line in lines}
    assert sweeps["SOR(w_opt)"] < sweeps["Jacobi(2/3)"]


def test_ablation_factor_caching(benchmark, write_artifact):
    res = benchmark.pedantic(
        lambda: ablation_factor_caching(max_level=6), rounds=1, iterations=1
    )
    write_artifact("ablation_factor_caching", res.format())


def test_ablation_pareto_vs_discrete(benchmark, write_artifact):
    res = benchmark.pedantic(
        lambda: ablation_pareto_vs_discrete(max_level=4), rounds=1, iterations=1
    )
    write_artifact("ablation_pareto_vs_discrete", res.format())
    assert "pareto" in res.table or "discrete" in res.title
