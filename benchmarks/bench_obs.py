"""Observability overhead gate: tracing must be free when off, cheap when on.

Times the acceptance workload — the DP-tuned level-7 V-cycle plan on
the 2-D Poisson operator, solved at its strictest trained accuracy —
through three identically-constructed executors.  The plan is the one
the tuner actually produces (cost-model timing, deterministic), not a
synthetic worst case: the paper's premise is that real tuned plans are
what production executes, and that is the wall-clock the 5% budget
protects.

* **disabled-a / disabled-b** — two default executors (no tracer, no
  profiler: the exact pre-observability hot path).  They form an A/A
  comparison: the observed spread is the measurement noise floor,
  demonstrating that a "disabled" run is statistically indistinguishable
  from the baseline.
* **enabled** — an executor with a live :class:`~repro.obs.Tracer`
  (production-default sink capacity, prefilled to steady state so
  samples pay the amortized trim cost a long-running server pays)
  recording per-level and per-op spans.  The gate requires its best
  sample within ``--max-overhead`` (default 5%) of the disabled best.

The gate statistic is the per-config **minimum**, per ``timeit``
practice: scheduler and frequency noise is one-sided (interruptions
only ever add time), so the minimum estimates the undisturbed cost and
converges far faster than the median on busy hosts; medians are still
reported for context.  The disabled baseline is the *mean* of the two
disabled minima — taking the lower would pool twice as many samples as
the enabled config gets and so be biased low under one-sided noise.
Samples run in short per-config **blocks** whose order rotates each
round: per-sample alternation would evict the tracer's working set
between every enabled sample (a state no traced production process is
ever in — servers trace solve after solve), while whole-config blocks
would let slow drift tax one config; short rotated blocks get both
steady-state caches and drift fairness.  Each sample starts from a
freshly-collected heap (``gc.collect()``) so GC pauses inherited from
earlier samples don't land on whichever config drew the short straw —
collections *triggered by* tracing allocations inside a sample still
count against the enabled config, as they should.

When the host is too noisy to certify a percentage (the A/A spread
exceeds ``--max-noise``), the relative gate is skipped with a note —
the same disposition ``bench_serve`` uses on CPU-starved hosts — and
the absolute gate still applies: a tight-loop measurement of the leaf
span start/finish pair must stay under ``--max-span-us``.  The enabled
run also asserts spans were actually recorded — a gate that passes
because tracing silently no-oped would be meaningless.

Environment overrides (for CI without editing workflows):
``$REPRO_MG_OBS_OVERHEAD`` (fraction, e.g. ``0.05``),
``$REPRO_MG_OBS_NOISE``, and ``$REPRO_MG_OBS_SPAN_US``.

Runnable standalone (CI's obs-smoke job uses ``--smoke``)::

    python benchmarks/bench_obs.py --smoke --json out.json
    python benchmarks/bench_obs.py --level 7 --repeats 30
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.machines.presets import INTEL_HARPERTOWN
from repro.obs import Tracer
from repro.obs.bench import write_bench_report
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

OUT_DIR = Path(__file__).parent / "out"

OVERHEAD_ENV = "REPRO_MG_OBS_OVERHEAD"
NOISE_ENV = "REPRO_MG_OBS_NOISE"
SPAN_US_ENV = "REPRO_MG_OBS_SPAN_US"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--level", type=int, default=7,
        help="bench grid level (default 7, the acceptance level)",
    )
    parser.add_argument("--operator", default="poisson")
    parser.add_argument("--distribution", default="unbiased")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed samples per configuration (the per-config minimum "
        "is the gate statistic)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None, metavar="FRAC",
        help="fail if enabled tracing exceeds the disabled minimum by more "
        f"than this fraction (default: ${OVERHEAD_ENV} or 0.05; 0 disables)",
    )
    parser.add_argument(
        "--max-noise", type=float, default=None, metavar="FRAC",
        help="skip the relative gate if the two disabled runs' minima "
        f"differ by more than this fraction (default: ${NOISE_ENV} or "
        "0.03 full, 0.08 smoke; 0 never skips)",
    )
    parser.add_argument(
        "--max-span-us", type=float, default=None, metavar="US",
        help="fail if the tight-loop leaf span start/finish pair costs "
        f"more than this many microseconds (default: ${SPAN_US_ENV} or "
        "10.0; 0 disables)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="looser noise-certification bar for CI runners (same level 7 "
        "workload and sample count: smaller grids have too little per-op "
        "work to gate a percentage against, and samples are ~11ms each "
        "so repeats are not where the time goes)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write results as JSON (default: {OUT_DIR}/obs.json)",
    )
    return parser


def _tuned_plan(level: int, seed: int) -> TunedVPlan:
    """The DP-tuned V-cycle plan for ``level`` (cost-model timing:
    deterministic across hosts, tunes in milliseconds)."""
    training = TrainingData(distribution="unbiased", instances=2, seed=seed)
    return VCycleTuner(
        max_level=level,
        training=training,
        timing=CostModelTiming(INTEL_HARPERTOWN),
        keep_audit=False,
    ).tune()


def _span_pair_cost_us(iterations: int = 20000) -> float:
    """Tight-loop cost of one leaf record (clock read + deferred emit), in µs.

    Measured under a live parent (the production shape: op records
    always hang off an mg.level span) against a production-default
    ring, timing exactly what the executor's shim does per kernel call:
    one clock read plus one :meth:`Tracer.leaf`.
    """
    tracer = Tracer()
    attrs = {"level": 7, "backend": "numpy"}
    with tracer.span("bench.parent") as parent:
        now, leaf = tracer.clock.now_fn, tracer.leaf
        for _ in range(200):  # warm
            leaf("op.bench", attrs, now(), parent)
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(iterations):
            leaf("op.bench", attrs, now(), parent)
        elapsed = time.perf_counter() - t0
    return elapsed / iterations * 1e6


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    level = args.level
    repeats = args.repeats
    max_overhead = args.max_overhead
    if max_overhead is None:
        env = os.environ.get(OVERHEAD_ENV)
        max_overhead = float(env) if env is not None else 0.05
    max_noise = args.max_noise
    if max_noise is None:
        env = os.environ.get(NOISE_ENV)
        max_noise = float(env) if env is not None else (0.08 if args.smoke else 0.03)
    max_span_us = args.max_span_us
    if max_span_us is None:
        env = os.environ.get(SPAN_US_ENV)
        max_span_us = float(env) if env is not None else 10.0

    plan = _tuned_plan(level, args.seed)
    acc_index = len(plan.accuracies) - 1  # strictest trained accuracy
    n = size_of_level(level)
    problem = make_problem(args.distribution, n, args.seed, operator=args.operator)
    tracer = Tracer()  # production-default ring capacity

    configs = {
        "disabled_a": PlanExecutor(operator=args.operator),
        "disabled_b": PlanExecutor(operator=args.operator),
        "enabled": PlanExecutor(operator=args.operator, tracer=tracer),
    }

    def one_run(executor: PlanExecutor) -> None:
        x = problem.initial_guess()
        executor.run_v(plan, x, problem.b, acc_index)

    print(
        f"obs overhead bench: tuned level-{level} plan (n={n}, acc index "
        f"{acc_index}), {repeats} samples x {len(configs)} configs"
    )
    for executor in configs.values():  # warm bindings outside the timed loop
        one_run(executor)
    # Prefill the sink past capacity so timed samples run at steady
    # state (paying the amortized trim, as a long-running server does)
    # instead of appending into a buffer that is still growing.
    while tracer.sink.emitted <= tracer.sink.capacity + tracer.sink.capacity // 4:
        one_run(configs["enabled"])
    spans_before = tracer.sink.emitted

    samples: dict[str, list[float]] = {name: [] for name in configs}
    order = list(configs)
    block = 5
    rounds = (repeats + block - 1) // block
    for i in range(rounds):
        # Rotate the block order each round so slow drift (thermal /
        # frequency scaling) doesn't systematically tax one config.
        for name in order[i % len(order):] + order[:i % len(order)]:
            for _ in range(min(block, repeats - len(samples[name]))):
                gc.collect()
                start = time.perf_counter()
                one_run(configs[name])
                samples[name].append(time.perf_counter() - start)

    minima = {name: min(vals) for name, vals in samples.items()}
    medians = {name: statistics.median(vals) for name, vals in samples.items()}
    disabled = (minima["disabled_a"] + minima["disabled_b"]) / 2.0
    noise = (
        abs(minima["disabled_a"] - minima["disabled_b"]) / disabled
        if disabled > 0 else float("inf")
    )
    overhead = (
        minima["enabled"] / disabled - 1.0 if disabled > 0 else float("inf")
    )
    spans_recorded = tracer.sink.emitted - spans_before
    span_us = _span_pair_cost_us()

    for name in configs:
        print(
            f"  {name:>10}: min {minima[name] * 1e3:8.3f}ms  "
            f"median {medians[name] * 1e3:8.3f}ms"
        )
    print(
        f"  A/A noise {noise * 100:.2f}% (certify below {max_noise * 100:.1f}%), "
        f"enabled overhead {overhead * 100:+.2f}% "
        f"(gate {max_overhead * 100:.1f}%), "
        f"leaf span pair {span_us:.2f}us (gate {max_span_us:.1f}us), "
        f"{spans_recorded} span(s) recorded in timed runs"
    )

    report = {
        "config": {
            "level": level,
            "operator": args.operator,
            "distribution": args.distribution,
            "acc_index": acc_index,
            "repeats": repeats,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "minima_s": minima,
        "medians_s": medians,
        "noise_fraction": noise,
        "overhead_fraction": overhead,
        "span_pair_us": span_us,
        "max_noise": max_noise,
        "max_overhead": max_overhead,
        "max_span_us": max_span_us,
        "spans_recorded": spans_recorded,
    }
    out_path = Path(args.json) if args.json else OUT_DIR / "obs.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    envelope_path = write_bench_report("obs", report, time.time(), OUT_DIR)
    print(f"wrote {out_path} and {envelope_path}")

    failures = []
    if spans_recorded <= 0:
        failures.append("enabled run recorded no spans — the gate is vacuous")
    noisy_host = max_noise > 0 and noise > max_noise
    if noisy_host:
        print(
            f"NOTE: disabled A/A minima differ by {noise * 100:.2f}%, above "
            f"the {max_noise * 100:.1f}% certification bar — the host is too "
            "noisy to certify a relative overhead; skipping that gate "
            "(the absolute per-span gate below still applies)"
        )
        report["overhead_gate"] = "skipped-noisy-host"
    elif max_overhead > 0 and overhead > max_overhead:
        failures.append(
            f"enabled tracing costs {overhead * 100:.2f}% over disabled, "
            f"above the {max_overhead * 100:.1f}% gate"
        )
    if max_span_us > 0 and span_us > max_span_us:
        failures.append(
            f"leaf span start/finish pair costs {span_us:.2f}us, above the "
            f"{max_span_us:.1f}us gate"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
