"""Figure 8: the same data as Figure 7 plotted as ratios vs the autotuner.

Paper shape: all heuristics >= 1.0x, curves fan out with size, with the
highest fixed accuracy (Strategy 10^9) worst at large N.
"""

import pytest

from repro.bench.experiments import fig7_heuristics


@pytest.fixture(scope="module")
def result():
    return fig7_heuristics(max_level=7, machine="intel", distribution="biased")


def test_fig8_regenerate(benchmark, result, write_artifact):
    out = benchmark.pedantic(lambda: result.format_ratios(), rounds=1, iterations=1)
    write_artifact("fig8_heuristic_ratios", out)
    assert "Autotuned" in out


def test_ratios_at_least_one(result):
    auto = result.series[-1]
    for s in result.series[:-1]:
        for i in range(len(result.sizes)):
            assert s.values[i] / auto.values[i] >= 0.999


def test_strategy_ordering_at_largest_size(result):
    # At the largest size, stricter per-level accuracy must cost more:
    # 10^9 >= 10^7/10^9 >= ... >= 10^1/10^9 (paper Fig 8's top-to-bottom
    # ordering at the right edge).
    last = [s.values[-1] for s in result.series[:-1]]
    assert all(a >= b * 0.999 for a, b in zip(last, last[1:]))
