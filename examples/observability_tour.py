"""End-to-end observability: trace one request, read its span tree.

Run:  python examples/observability_tour.py

What it does:
1. opens a traced solve server and warms one workload class,
2. solves a single request and walks its correlated span tree —
   serve.request -> serve.batch (plan-cache decision) -> serve.solve ->
   per-level mg.level -> per-op op.* spans with backend labels,
3. aggregates the same solve with the SolveProfiler (per level/op/
   backend cells — the rows a learned cost model trains on),
4. exports the spans as Chrome trace_event JSON (open in Perfetto or
   about:tracing) and the telemetry snapshot as Prometheus text.
"""

import json

from repro.obs import SolveProfiler, Tracer
from repro.obs.export import chrome_trace, prometheus_text
from repro.obs.trace import iter_children
from repro.serve import SolveServer
from repro.store.trialdb import TrialDB
from repro.core import poisson_problem

LEVEL = 6  # N = 65; raise for bigger runs
N = 2**LEVEL + 1


def print_tree(spans, span, depth=0):
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    print(f"  {'  ' * depth}{span.name}  {span.duration_s * 1e3:.3f}ms"
          + (f"  [{attrs}]" if attrs else ""))
    for child in sorted(iter_children(spans, span.span_id),
                        key=lambda s: s.start_s):
        print_tree(spans, child, depth + 1)


def main() -> None:
    tracer = Tracer()
    profiler = SolveProfiler()
    server = SolveServer(
        machine="intel", store=TrialDB(":memory:"), workers=1, instances=1,
        seed=3, tracer=tracer, profiler=profiler, op_span_min_points=0,
    )
    try:
        print("1) warm the cache, then solve one traced request:")
        server.warm("unbiased", LEVEL)
        result = server.solve(poisson_problem("unbiased", n=N, seed=1), 1e5)
        print(f"   solved: trace_id={result.trace_id}")

        print("\n2) the request's span tree:")
        spans = tracer.for_trace(result.trace_id)
        root = next(s for s in spans if s.parent_id is None)
        print_tree(spans, root)

        print("\n3) per-(level, op, backend) profile of the same solve:")
        for row in profiler.rows():
            print(f"   level={row['level']} {row['op']:<12} "
                  f"backend={row['backend']:<8} count={row['count']:<3} "
                  f"total={row['total_s'] * 1e3:.3f}ms")

        print("\n4) exports:")
        doc = chrome_trace(spans)
        print(f"   chrome trace_event: {len(doc['traceEvents'])} events "
              f"({len(json.dumps(doc))} bytes) — load in Perfetto")
        text = prometheus_text(server.stats())
        line = next(l for l in text.splitlines() if l.startswith("repro_"))
        print(f"   prometheus text: {len(text.splitlines())} lines, e.g. {line!r}")
    finally:
        server.shutdown(drain=True)


if __name__ == "__main__":
    main()
