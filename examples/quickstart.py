"""Quickstart: autotune a multigrid solver and solve a Poisson problem.

Run:  python examples/quickstart.py

What it does:
1. builds training data from the paper's unbiased distribution,
2. runs the accuracy-aware DP autotuner for the Intel testbed cost model,
3. solves an unseen problem to three different accuracy targets,
4. saves the tuned configuration file and loads it back (the PetaBricks
   workflow: tune once, reuse the config).
"""

import tempfile
from pathlib import Path

from repro.accuracy import AccuracyJudge, reference_solution
from repro.core import autotune, poisson_problem, solve
from repro.machines import INTEL_HARPERTOWN
from repro.tuner import load_plan, save_plan

MAX_LEVEL = 6  # N = 65; raise for bigger runs


def main() -> None:
    print("tuning MULTIGRID-V_i for the Intel cost model (unbiased data)...")
    plan = autotune(max_level=MAX_LEVEL, machine="intel", distribution="unbiased")
    print(f"accuracy ladder: {plan.accuracies}")
    for level in range(1, MAX_LEVEL + 1):
        choices = [plan.choice(level, i).describe() for i in range(plan.num_accuracies)]
        print(f"  level {level}: {choices}")

    problem = poisson_problem("unbiased", n=2**MAX_LEVEL + 1, seed=123)
    x_opt = reference_solution(problem)
    judge = AccuracyJudge(problem.initial_guess(), x_opt)
    print("\nsolving an unseen instance:")
    for target in (1e1, 1e5, 1e9):
        x, meter = solve(plan, problem, target)
        simulated = INTEL_HARPERTOWN.price(meter)
        print(
            f"  target {target:>7.0e}: achieved {judge.accuracy_of(x):.2e}, "
            f"simulated time {simulated:.2e}s"
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "poisson.cfg.json"
        save_plan(plan, path)
        reloaded = load_plan(path)
        assert reloaded.table == plan.table
        print(f"\nconfiguration round-trips through {path.name} "
              f"({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
