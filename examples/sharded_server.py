"""Horizontally scaled serving: the sharded front door, end to end.

Run:  python examples/sharded_server.py

What it does:
1. opens a 2-shard front door over a shared plan store and warms one
   workload class per shard (warming runs on the shard that will serve
   the class, so each worker's cache stays hot for its own traffic),
2. fires mixed 2D + 3D traffic through shared-memory slot pools — the
   grids never cross a pipe; workers solve in place into the slots,
3. kills one worker mid-stream to show the self-healing path: the
   front door respawns the shard and resubmits exactly the unanswered
   requests (none lost, none answered twice),
4. prints the aggregated stats: front-door counters (crashes, restarts,
   resubmits) plus every shard's own telemetry snapshot.
"""

import os
import signal

from repro.core import open_server, poisson_problem

LEVEL = 4  # N = 17; raise for bigger runs
N = 2**LEVEL + 1


def main() -> None:
    with open_server(shards=2, workers=1, instances=1, seed=3) as door:
        print("1) warm one class per shard (2D poisson, 3D poisson):")
        for operator in (None, "poisson3d"):
            reply = door.warm("unbiased", LEVEL, operator)
            print(f"   {operator or 'poisson':<10} -> {reply.get('source', '?')}")

        print("\n2) mixed 2D/3D traffic through shared memory:")
        problems = [
            poisson_problem("unbiased", n=N, seed=i, operator=op)
            for i in range(6)
            for op in (None, "poisson3d")
        ]
        for problem in problems[:4]:
            result = door.solve(problem, 1e5)
            print(
                f"   {problem.ndim}D  shard={result.shard}  "
                f"source={result.plan_source:<7} {result.latency_s * 1e3:6.1f}ms"
            )

        print("\n3) SIGKILL one worker mid-stream; the tier self-heals:")
        victim = door._workers[0].process
        futures = [door.submit(p, 1e5) for p in problems]
        os.kill(victim.pid, signal.SIGKILL)
        results = [f.result(timeout=120) for f in futures]
        print(f"   all {len(results)} requests answered exactly once")

        print("\n4) aggregated stats:")
        snapshot = door.stats()
        counters = snapshot["frontdoor"]["counters"]
        for key in (
            "requests_completed",
            "requests_resubmitted",
            "worker_crashes",
            "worker_restarts",
            "duplicate_responses",
        ):
            print(f"   {key:<22} {counters.get(key, 0)}")
        for index, shard in sorted(snapshot["shards"].items()):
            served = shard.get("counters", {}).get("requests_completed", 0)
            print(f"   shard {index}: served {served}")


if __name__ == "__main__":
    main()
