"""The mini-PetaBricks framework on the paper's motivating example: sort.

Run:  python examples/petabricks_sort.py

Section 1 of the paper motivates algorithmic choice with the STL sort's
merge-sort/insertion-sort cutoff.  Here the generic bottom-up genetic
autotuner (section 3.2.2) discovers a multi-level sort: it seeds the
population with each single algorithm, doubles the input size each round,
and grows new candidates by adding levels on top of the fastest members.
"""

import random

from repro.petabricks import BottomUpTuner, nary_search
from repro.petabricks.demos import make_sort_transform


def make_input(size: int, trial: int) -> list:
    rng = random.Random(size * 1000 + trial)
    return [rng.randint(0, 1_000_000) for _ in range(size)]


def main() -> None:
    transform = make_sort_transform()
    tuner = BottomUpTuner(
        transform=transform,
        make_input=make_input,
        start_size=16,
        max_size=2048,
        population_limit=6,
        trials=2,
    )
    config = tuner.tune()
    print("tuned multi-level sort:")
    for max_size, rule in config.get("sort.levels"):
        print(f"  size <= {max_size}: {rule}")

    print("\ntuning history (fastest candidate per input size):")
    for entry in tuner.history:
        desc, seconds = entry["population"][0]
        print(f"  size {entry['size']:>5}: {desc}  ({seconds * 1e3:.2f} ms)")

    data = make_input(3000, trial=99)
    out = transform.run(data, config)
    assert out == sorted(data)
    print("\ntuned sort validated against sorted() on an unseen input")

    # N-ary search on a single scalar cutoff, as PetaBricks does for
    # parallel-sequential cutoffs and block sizes.
    def objective(cutoff: int) -> float:
        # A synthetic unimodal cost surface with a minimum at 48.
        return (cutoff - 48) ** 2 / 1000.0 + 1.0

    best, value = nary_search(objective, lo=1, hi=1024, arity=4)
    print(f"n-ary search example: best cutoff {best} (objective {value:.3f})")


if __name__ == "__main__":
    main()
