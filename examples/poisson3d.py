"""3-D workloads, end to end.

Run:  python examples/poisson3d.py

What it does:
1. solves a 3-D Poisson problem with the standard V cycle and shows the
   per-cycle residual contraction (the dimension-general kernels: 7-point
   stencils, 27-point full weighting, trilinear interpolation),
2. autotunes 3-D plans — isotropic and per-axis anisotropic — and
   compares the tuned cycle shapes and costs against the paper's fixed
   heuristic on the same cost model,
3. serves 3-D traffic through the registry-backed service path, so the
   tuned 3-D plans are stored under their own ``ndim=3`` keys next to
   the 2-D ones (`repro-mg store tune --ndim 3` is the CLI spelling).
"""

import tempfile
from pathlib import Path

from repro.core import autotune, poisson_problem, solve, solve_service
from repro.grids.norms import residual_norm
from repro.multigrid.cycles import vcycle
from repro.operators import shared_operator
from repro.store.sink import plan_cycle_shape
from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.machines.presets import get_preset

MAX_LEVEL = 4  # N = 17 per side (17**3 unknowns); raise for bigger runs
OPERATORS = ("poisson3d", "anisotropic3d(epsx=0.01)")


def main() -> None:
    n = 2**MAX_LEVEL + 1

    print("1) standard V(1,1) cycles on 3-D Poisson:")
    problem = poisson_problem("unbiased", n=n, seed=7, ndim=3)
    op = shared_operator("poisson3d", n)
    x = problem.initial_guess()
    prev = residual_norm(op.residual(x, problem.b))
    for cycle in range(1, 5):
        vcycle(x, problem.b, operator=op)
        cur = residual_norm(op.residual(x, problem.b))
        print(f"   cycle {cycle}: residual {cur:.3e}  (factor {cur / prev:.3f})")
        prev = cur

    print("\n2) tuned 3-D plans vs the fixed heuristic (cost model):")
    profile = get_preset("intel")
    final = len(DEFAULT_ACCURACIES) - 1
    for name in OPERATORS:
        plan = autotune(
            max_level=MAX_LEVEL, machine=profile, instances=2, seed=0, operator=name
        )
        heuristic = tune_heuristic(
            HeuristicStrategy(sub_index=final, final_index=final),
            max_level=MAX_LEVEL,
            accuracies=DEFAULT_ACCURACIES,
            training=TrainingData(instances=2, seed=0, operator=name),
            timing=CostModelTiming(profile),
        )
        tuned_cost = plan.time_on(profile, MAX_LEVEL, final)
        heur_cost = heuristic.time_on(profile, MAX_LEVEL, final)
        print(f"   {name:<26} shape: {plan_cycle_shape(plan)}")
        print(
            f"   {'':<26} tuned {tuned_cost:.3e}s vs heuristic {heur_cost:.3e}s "
            f"({heur_cost / tuned_cost:.2f}x)"
        )
        prob = poisson_problem("unbiased", n=n, seed=7, operator=name)
        solution, meter = solve(plan, prob, 1e5)
        print(
            f"   {'':<26} solve @1e5 ops: "
            + ", ".join(f"{op_}x{c}" for (op_, _), c in sorted(meter.items()))
        )

    print("\n3) registry-backed 3-D serving (plans stored under ndim=3 keys):")
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store.sqlite"
        prob = poisson_problem("unbiased", n=n, seed=1, ndim=3)
        for call in (1, 2):
            _, _, hit = solve_service(prob, 1e5, instances=2, store=store)
            print(f"   call {call}: plan source = {hit.source}")


if __name__ == "__main__":
    main()
