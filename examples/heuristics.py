"""The autotuner vs fixed heuristic strategies (Figures 7 and 8).

Run:  python examples/heuristics.py

Trains the five fixed strategies (10^9 at every level; 10^x at lower
levels for x = 1, 3, 5, 7) plus the full autotuner on biased data, then
prints absolute times and ratios against the autotuned algorithm.  The
paper's observation: the best heuristic changes with problem size, and the
autotuner beats them all because it tunes accuracy per level.
"""

from repro.bench import fig7_heuristics

MAX_LEVEL = 7


def main() -> None:
    result = fig7_heuristics(max_level=MAX_LEVEL, machine="intel", distribution="biased")
    print("time to accuracy 1e9 (simulated seconds, Intel cost model):\n")
    print(result.format())
    print("\nratio vs autotuned (Figure 8; 1.0 = as fast as the autotuner):\n")
    print(result.format_ratios())
    # Which heuristic wins at each size?
    print("\nbest heuristic per size:")
    for i, size in enumerate(result.sizes):
        best = min(result.series[:-1], key=lambda s: s.values[i])
        print(f"  N={size}: {best.name}")


if __name__ == "__main__":
    main()
