"""Kernel backends as a tuning dimension.

Run:  python examples/kernel_backends.py

Lists the backends this host can run, tunes a level-6 plan with the
backend axis enabled (``backend="auto"``), and shows what the DP did
with it: accelerated fine levels — where per-call dispatch overhead
amortizes over n² work — over NumPy coarse levels.  Then executes the
tuned plan twice, accelerated and all-NumPy, to demonstrate the
byte-identity contract: backend choice changes wall-clock only, never
numerics.
"""

import time

import numpy as np

from repro.core.api import autotune
from repro.kernels import available_backends, backend_provenance, resolve_backend
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedVPlan
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

MAX_LEVEL = 6


def main() -> None:
    print("registered backends on this host:")
    for record in backend_provenance()["backends"]:
        marker = "*" if record["available"] else " "
        print(f"  [{marker}] {record['backend']:<8} {record['detail']}")
    chosen = resolve_backend("auto")
    print(f"auto resolves to: {chosen}\n")

    plan = autotune(max_level=MAX_LEVEL, machine="intel",
                    distribution="unbiased", instances=2, seed=0,
                    backend="auto")
    print(f"tuned level-{MAX_LEVEL} plan, per-level backend placement:")
    for level in range(1, MAX_LEVEL + 1):
        n = size_of_level(level)
        print(f"  level {level} (n={n:>3}): {plan.backend_at(level)}")
    if not plan.backends:
        print("  (every level priced cheaper on numpy — no accelerated "
              "backend available, or all grids below the crossover)")

    # The all-NumPy twin: identical table, accelerated levels stripped.
    twin = TunedVPlan(
        accuracies=plan.accuracies,
        max_level=plan.max_level,
        table=plan.table,
        metadata={k: v for k, v in plan.metadata.items() if k != "backend"},
        ndim=plan.ndim,
    )
    problem = make_problem("unbiased", size_of_level(MAX_LEVEL), seed=1)
    top = plan.num_accuracies - 1

    solutions = {}
    for name, p in [("accelerated", plan), ("numpy", twin)]:
        executor = PlanExecutor()
        x = problem.initial_guess()
        executor.run_v(p, x, problem.b, top)  # warm (compile, factorize)
        start = time.perf_counter()
        for _ in range(5):
            x = problem.initial_guess()
            executor.run_v(p, x, problem.b, top)
        wall = (time.perf_counter() - start) / 5
        solutions[name] = x
        print(f"{name:>12}: {wall * 1e3:6.2f} ms per solve")

    identical = np.array_equal(solutions["accelerated"], solutions["numpy"])
    print(f"solutions byte-identical: {identical}")
    assert identical, "byte-identity contract violated"


if __name__ == "__main__":
    main()
