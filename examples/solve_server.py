"""The solve server, end to end.

Run:  python examples/solve_server.py

What it does:
1. opens a solve server and warms the cache for one workload class,
2. fires mixed-operator traffic at it (poisson unbiased + biased +
   anisotropic) — the warmed class serves its tuned plan while the cold
   classes answer instantly from the heuristic fallback and tune in the
   background (stale-while-tune),
3. waits for the background swaps and shows the same keys now serving
   hot-swapped tuned plans,
4. prints the telemetry snapshot: latency percentiles, cache counters,
   queue depth, and the swap events themselves.
"""

import json

from repro.core import open_server, poisson_problem

LEVEL = 4  # N = 17; raise for bigger runs
N = 2**LEVEL + 1


def main() -> None:
    with open_server(machine="intel", workers=2, instances=1, seed=3) as server:
        print("1) warm the cache for (intel, poisson, unbiased):")
        entry = server.warm("unbiased", LEVEL)
        print(f"   warmed: source={entry.source}")

        print("\n2) mixed-operator traffic (warm + two cold classes):")
        workloads = [
            ("unbiased", None),
            ("biased", None),
            ("unbiased", "anisotropic(epsilon=0.01)"),
        ]
        futures = []
        for i in range(18):
            dist, operator = workloads[i % len(workloads)]
            problem = poisson_problem(dist, n=N, seed=i, operator=operator)
            futures.append(server.submit(problem, 1e5))
        for i, future in enumerate(futures):
            result = future.result(timeout=120)
            dist, operator = workloads[i % len(workloads)]
            print(
                f"   {dist:>8}/{operator or 'poisson':<25} "
                f"source={result.plan_source:<8} "
                f"batch={result.batch_size}  {result.latency_s * 1e3:6.1f}ms"
            )

        print("\n3) after the background tunes land, the same keys hot-swap:")
        server.wait_for_swaps(timeout=300)
        for dist, operator in workloads:
            problem = poisson_problem(dist, n=N, seed=99, operator=operator)
            result = server.solve(problem, 1e5)
            print(
                f"   {dist:>8}/{operator or 'poisson':<25} "
                f"source={result.plan_source:<8} generation={result.generation}"
            )

        print("\n4) telemetry snapshot:")
        print(json.dumps(server.stats(), indent=2))


if __name__ == "__main__":
    main()
