"""The persistent tuning store, end to end.

Run:  python examples/plan_registry.py

What it does:
1. runs a small resumable campaign over (machine x level), pre-warming
   the plan registry with tuned plans (each trial logged in SQLite),
2. shows a cold tune vs a registry exact-hit (tune once, reuse forever),
3. shows the nearest-profile fallback serving an un-tuned machine from
   its closest known neighbour (cross-architecture reuse, Fig. 14),
4. exports the keyfields/resultfields run table.
"""

import tempfile
import time
from pathlib import Path

from repro.core import poisson_problem, solve_service
from repro.machines import AMD_BARCELONA
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB, TuneKey

MAX_LEVEL = 5  # N = 33; raise for bigger runs


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "plans.sqlite"

        print("1) campaign sweep (machine x level), resumable:")
        spec = CampaignSpec(
            name="demo",
            machines=("intel", "sun"),
            distributions=("unbiased",),
            levels=(4, MAX_LEVEL),
            instances=2,
        )
        campaign = Campaign(spec, TrialDB(db_path))
        campaign.run(max_cells=2)  # pretend we were interrupted here...
        print(f"   after interruption: {campaign.status()}")
        campaign.run()  # ...resume: completed cells are skipped
        print(campaign.run_table())

        print("\n2) cold tune vs registry hit:")
        problem = poisson_problem("unbiased", n=2**MAX_LEVEL + 1, seed=123)
        for attempt in ("first", "second"):
            start = time.perf_counter()
            _, _, hit = solve_service(problem, 1e5, machine="intel", store=db_path)
            wall = time.perf_counter() - start
            print(f"   {attempt} solve_service: source={hit.source:<6} {wall:.3f}s")

        print("\n3) nearest-profile fallback (AMD was never tuned here):")
        registry = PlanRegistry(TrialDB(db_path))
        hit = registry.get_or_tune(AMD_BARCELONA, TuneKey(max_level=MAX_LEVEL, instances=2))
        print(
            f"   served from {hit.machine_name} "
            f"(source={hit.source}, profile distance={hit.distance:.3f})"
        )

        print("\n4) the trial run table:")
        print(TrialDB(db_path).format_run_table())


if __name__ == "__main__":
    main()
