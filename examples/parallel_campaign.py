"""Parallel tuning, end to end.

Run:  python examples/parallel_campaign.py

What it does:
1. runs the same campaign grid serially and with a 4-worker process
   pool, and shows the two registries are byte-for-byte equivalent
   (same plan keys, same plan JSON) — parallelism changes wall-clock,
   never results,
2. interrupts a parallel campaign and resumes it: completed cells are
   never re-tuned, exactly like the serial resumability contract,
3. parallelizes a single big tune *inside* the DP via
   ``autotune_cached(jobs=...)`` (candidate trials fan out to worker
   processes; the plan is identical to a serial tune).

The same knobs on the CLI:  repro-mg store tune --jobs 4 --db plans.sqlite
"""

import tempfile
import time
from pathlib import Path

from repro.core import autotune_cached
from repro.store import Campaign, CampaignSpec, TrialDB
from repro.tuner.config import plan_to_dict

JOBS = 4


def main() -> None:
    spec = CampaignSpec(
        name="demo-parallel",
        machines=("intel", "amd"),
        distributions=("unbiased", "biased"),
        levels=(4, 5),
        instances=2,
    )
    with tempfile.TemporaryDirectory() as tmp:
        print(f"1) {len(spec.cells())}-cell campaign, serial vs {JOBS} workers:")
        walls = {}
        campaigns = {}
        for jobs in (1, JOBS):
            campaign = Campaign(spec, TrialDB(Path(tmp) / f"plans-j{jobs}.sqlite"))
            start = time.perf_counter()
            campaign.run(jobs=jobs)
            walls[jobs] = time.perf_counter() - start
            campaigns[jobs] = campaign
        identical = campaigns[1].registry.contents() == campaigns[JOBS].registry.contents()
        print(f"   jobs=1: {walls[1]:.2f}s   jobs={JOBS}: {walls[JOBS]:.2f}s")
        print(f"   registries byte-for-byte equivalent: {identical}")

        print(f"\n2) interrupted parallel campaign resumes ({JOBS} workers):")
        db_path = Path(tmp) / "resume.sqlite"
        first = Campaign(spec, TrialDB(db_path))
        first.run(jobs=JOBS, max_cells=3)  # pretend we were killed here...
        print(f"   after interruption: {first.status()}")
        first.db.close()
        resumed = Campaign(spec, TrialDB(db_path))
        results = resumed.run(jobs=JOBS)  # ...resume: done cells are skipped
        skipped = sum(1 for r in results if r.source == "skipped")
        print(f"   resumed: {resumed.status()} ({skipped} cells skipped, "
              f"{resumed.db.count_trials()} tuning trials total)")

        print("\n3) one big tune with parallel candidate evaluation:")
        plans = {}
        for jobs in (1, JOBS):
            start = time.perf_counter()
            plans[jobs] = autotune_cached(
                max_level=6, machine="sun", store=TrialDB(":memory:"), jobs=jobs
            )
            print(f"   jobs={jobs}: {time.perf_counter() - start:.2f}s")
        print(
            "   identical plans: "
            f"{plan_to_dict(plans[1]) == plan_to_dict(plans[JOBS])}"
        )


if __name__ == "__main__":
    main()
