"""Tuned cycle shapes across accuracy targets and machines (Figures 5/14).

Run:  python examples/cycle_shapes.py

Renders the V-type and full-multigrid cycles the autotuner produces for
the AMD Barcelona cost model at four accuracy targets, then compares the
full-MG cycle across the three testbed architectures — the paper's
evidence that optimal cycle shape is machine-dependent.
"""

from repro.bench import fig14_architectures, fig5_cycle_shapes
from repro.cycles.stats import CycleStats

MAX_LEVEL = 6


def main() -> None:
    print("=== Figure 5: tuned cycles on AMD Barcelona (unbiased & biased) ===\n")
    res = fig5_cycle_shapes(max_level=MAX_LEVEL, machine="amd", targets=(1e1, 1e5))
    print(res.format())

    print("\n\n=== Figure 14: tuned full-MG cycles across architectures ===\n")
    arch = fig14_architectures(max_level=MAX_LEVEL, target=1e5)
    print(arch.format())

    print("\nshape statistics (per machine):")
    for name, stats in arch.stats.items():
        assert isinstance(stats, CycleStats)
        print(
            f"  {name}: bottoms out at level {stats.bottom_level}, "
            f"direct call at level {stats.direct_level}, "
            f"relaxations per level {stats.relaxations}"
        )


if __name__ == "__main__":
    main()
