"""Model-based tuning: learned cost models + budgeted BO search.

Run:  python examples/model_tuner.py

What it does:
1. runs a few DP tunes into a shared store — the "fleet history" a cost
   model learns from,
2. fits a CostModel from that accumulated evidence and persists it as a
   schema-v6 model artifact (fit once, every worker warm-starts),
3. simulates a *cold machine*: tunes a never-seen key three ways —
   the model-guided BO search, the Strategy 10^final heuristic a serving
   fallback would use, and the full exhaustive DP — and compares
   simulated plan cost and trial budget,
4. shows the serving integration: a PlanCache with ``model_fallback=True``
   serves a model-predicted plan (not the heuristic) on a cold key.
"""

import tempfile
from pathlib import Path

from repro.machines import INTEL_HARPERTOWN
from repro.modeltuner import BOSearch, dp_trial_budget, model_for_profile
from repro.serve.cache import PlanCache
from repro.store import ModelStore, PlanRegistry, TrialDB, TuneKey
from repro.tuner.dp import VCycleTuner
from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData

MAX_LEVEL = 5  # N = 33; raise for bigger runs


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        registry = PlanRegistry(TrialDB(Path(tmp) / "plans.sqlite"))
        profile = INTEL_HARPERTOWN

        print("1) accumulate fleet history (a few exhaustive DP tunes):")
        for level in (3, 4):
            registry.get_or_tune(
                profile, TuneKey(max_level=level, instances=1, seed=0)
            )
        print(f"   {registry.db.count_trials()} trials in the store")

        print("\n2) fit + persist the cost model from that evidence:")
        model = model_for_profile(registry, profile)
        print(f"   fitted {model.fingerprint()} ({len(model.laws)} op laws)")
        print(f"   artifacts stored: {len(ModelStore(registry.db))}")

        print(f"\n3) cold key (level {MAX_LEVEL}): model search vs fallbacks:")
        training = TrainingData(distribution="unbiased", instances=1, seed=0)
        timing = CostModelTiming(profile)
        final = len(DEFAULT_ACCURACIES) - 1

        model_plan = BOSearch(
            max_level=MAX_LEVEL, training=training, profile=profile,
            model=model, seed=0,
        ).tune()
        heuristic_plan = tune_heuristic(
            HeuristicStrategy(sub_index=final, final_index=final),
            max_level=MAX_LEVEL, accuracies=DEFAULT_ACCURACIES,
            training=training, timing=timing,
        )
        dp_plan = VCycleTuner(
            max_level=MAX_LEVEL, training=training, timing=timing,
            keep_audit=False,
        ).tune()

        def cost(plan) -> float:
            return plan.time_on(profile, MAX_LEVEL, plan.num_accuracies - 1)

        budget = dp_trial_budget(MAX_LEVEL, len(DEFAULT_ACCURACIES))
        used = model_plan.metadata["trials_used"]
        print(f"   model search   : {cost(model_plan):.3e}s simulated "
              f"({used}/{budget} trials = {used / budget:.0%} of the DP budget)")
        print(f"   heuristic 10^9 : {cost(heuristic_plan):.3e}s simulated")
        print(f"   exhaustive DP  : {cost(dp_plan):.3e}s simulated "
              f"({budget} trials)")

        print("\n4) serving: model-predicted fallback on a cold key:")
        cache = PlanCache(registry, instances=1, seed=0, model_fallback=True)
        key = cache.key_for(profile, None, MAX_LEVEL, "unbiased")
        entry = cache.get_or_fallback(profile, key)
        print(f"   cold entry source={entry.source}, "
              f"tuner={entry.plan.metadata.get('tuner', 'heuristic')}, "
              f"stale={entry.stale} (background DP swap still owed)")


if __name__ == "__main__":
    main()
