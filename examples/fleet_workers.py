"""A distributed tuning fleet, end to end.

Run:  python examples/fleet_workers.py

What it does:
1. enqueues one campaign grid into a shared SQLite store and drains it
   with 3 local fleet workers (threads here, so one process demos the
   protocol; `repro-mg fleet work` runs the same loop per machine),
   then shows the merged registry is byte-for-byte equal to a
   single-worker run — many workers, one registry, same plans,
2. kills a worker mid-run (simulated: a claimed lease that is never
   completed) and shows survivors re-claim its cells after the lease
   expires — no cell lost, no cell tuned twice,
3. prints the coordinator's view: queue counts, per-worker heartbeats,
   and the per-cell provenance run table (which worker, how many
   attempts, how much wall-clock).

The same workflow on the CLI:

    repro-mg fleet enqueue --db plans.sqlite --campaign prod \\
        --machine intel --machine amd --max-level 5
    repro-mg fleet work   --db plans.sqlite --campaign prod   # per machine
    repro-mg fleet status --db plans.sqlite --campaign prod
    repro-mg fleet export --db plans.sqlite --campaign prod --csv run_table.csv
"""

import tempfile
import threading
from pathlib import Path

from repro.fleet import FleetCoordinator, FleetWorker, WorkQueue
from repro.store import Campaign, CampaignSpec, PlanRegistry, TrialDB

WORKERS = 3

SPEC = CampaignSpec(
    name="demo-fleet",
    machines=("intel", "amd", "sun"),
    distributions=("unbiased",),
    levels=(4, 5),
    instances=1,
)


def drain(db_path: Path, worker_id: str, results: dict) -> None:
    """One worker's whole life: open the store, pull until settled."""
    db = TrialDB(db_path)
    worker = FleetWorker(db, SPEC.name, worker_id=worker_id, lease_ttl=10.0)
    results[worker_id] = worker.run()
    db.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        print(f"1) {len(SPEC.cells())}-cell campaign, {WORKERS} workers vs 1:")
        fleet_db_path = tmp_path / "fleet.sqlite"
        db = TrialDB(fleet_db_path)
        coordinator = FleetCoordinator(db, SPEC.name)
        open_cells = coordinator.enqueue(SPEC)
        print(f"   enqueued: {open_cells} open cells")
        results: dict = {}
        threads = [
            threading.Thread(target=drain, args=(fleet_db_path, f"w{i}", results))
            for i in range(WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for worker_id in sorted(results):
            print(f"   {worker_id}: completed {len(results[worker_id])} cells")

        single_db = TrialDB(tmp_path / "single.sqlite")
        Campaign(SPEC, single_db).run()
        identical = (
            PlanRegistry(db).contents() == PlanRegistry(single_db).contents()
        )
        single_db.close()
        print(f"   fleet registry == single-worker registry: {identical}")

        print("\n2) a worker dies mid-run; survivors re-claim its cells:")
        crash_db_path = tmp_path / "crash.sqlite"
        crash_db = TrialDB(crash_db_path)
        FleetCoordinator(crash_db, SPEC.name).enqueue(SPEC)
        # The "dead" worker claims 2 cells and never comes back.
        doomed = WorkQueue(crash_db, SPEC.name, lease_ttl=2.0)
        stranded = doomed.claim("doomed-worker", limit=2)
        print(f"   doomed-worker claimed {len(stranded)} cells, then died")
        survivors: dict = {}
        threads = [
            threading.Thread(
                target=drain, args=(crash_db_path, f"survivor-{i}", survivors)
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cells = WorkQueue(crash_db, SPEC.name).cells()
        reclaimed = [c for c in cells if c["attempts"] > 1]
        print(
            f"   survivors completed {sum(len(r) for r in survivors.values())} "
            f"cells ({len(reclaimed)} re-claimed from the dead worker); "
            f"every cell done exactly once: "
            f"{all(c['status'] == 'done' for c in cells)}"
        )
        crash_db.close()

        print("\n3) the coordinator's view of the first run:")
        print(coordinator.format_status())
        csv_path = tmp_path / "run_table.csv"
        rows = coordinator.export_run_table(csv_path)
        print(f"\n   run_table.csv ({rows} rows, first 3):")
        for line in csv_path.read_text().splitlines()[:4]:
            print(f"   {line}")
        db.close()


if __name__ == "__main__":
    main()
