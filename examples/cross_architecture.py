"""Portability study: what tuning on the wrong machine costs (section 4.3).

Run:  python examples/cross_architecture.py

Tunes full-multigrid plans natively for the Intel Xeon and Sun Niagara
cost models, then runs each plan on the other machine.  The paper measured
a 29% slowdown for the Niagara-trained cycle on the Xeon and 79% for the
Xeon-trained cycle on the Niagara — the motivation for portable
autotuning.
"""

from repro.bench import cross_architecture, tune_pair
from repro.cycles.render import render_call_stack
from repro.machines import get_preset

MAX_LEVEL = 6
TARGET = 1e5


def main() -> None:
    result = cross_architecture(
        max_level=MAX_LEVEL, machines=("intel", "sun"), target=TARGET
    )
    print(result.format())
    print("\npaper reference points: sun->intel +29%, intel->sun +79% "
          "(N=2049 testbeds; ours is a scaled cost-model analogue)\n")

    print("why the plans differ — tuned call stacks at the top accuracy:")
    for name in ("intel", "sun"):
        profile = get_preset(name)
        _, fplan = tune_pair(MAX_LEVEL, profile, "unbiased", seed=0)
        print(f"\n[{profile.name}]")
        print(render_call_stack(fplan, MAX_LEVEL, fplan.accuracy_index(TARGET)))


if __name__ == "__main__":
    main()
