"""The pluggable operator layer, end to end.

Run:  python examples/variable_coefficient.py

What it does:
1. builds variable-coefficient diffusion and anisotropic Poisson
   operators next to the classic constant-coefficient one, and shows
   their stencils acting on the same problem data,
2. autotunes a plan per operator on the same machine model and compares
   the tuned cycle shapes — the paper's "best cycle depends on the
   problem" result extended across problem *families*,
3. runs a registry-backed campaign over the operator axis, so every
   family gets its own stored plan (`repro-mg store tune --operator ...`
   is the CLI spelling of the same sweep).
"""

import tempfile
from pathlib import Path

from repro.core import autotune, poisson_problem, solve
from repro.grids.norms import residual_norm
from repro.operators import make_operator
from repro.store import Campaign, CampaignSpec, TrialDB
from repro.store.sink import plan_cycle_shape

MAX_LEVEL = 5  # N = 33; raise for bigger runs
OPERATORS = ("poisson", "varcoeff", "anisotropic(epsilon=0.01)")


def main() -> None:
    n = 2**MAX_LEVEL + 1

    print("1) one problem, three operators:")
    problem = poisson_problem("unbiased", n=n, seed=7)
    for name in OPERATORS:
        op = make_operator(name, n)
        x = problem.initial_guess()
        r0 = residual_norm(op.residual(x, problem.b))
        op.sor_sweeps(x, problem.b, 1.15, 5)
        r5 = residual_norm(op.residual(x, problem.b))
        print(f"   {name:<28} 5 SOR sweeps: residual {r0:.2e} -> {r5:.2e}")

    print("\n2) the tuned cycle shape depends on the operator:")
    for name in OPERATORS:
        plan = autotune(
            max_level=MAX_LEVEL, machine="amd", instances=2, seed=0, operator=name
        )
        prob = poisson_problem("unbiased", n=n, seed=7, operator=name)
        x, _ = solve(plan, prob, 1e5)
        op = make_operator(name, n)
        print(f"   {name:<28} {plan_cycle_shape(plan)}")
        print(
            f"   {'':<28} solved to residual "
            f"{residual_norm(op.residual(x, prob.b)):.2e}"
        )

    print("\n3) campaign over the operator axis (one registry entry each):")
    with tempfile.TemporaryDirectory() as tmp:
        spec = CampaignSpec(
            name="operator-demo",
            machines=("amd",),
            distributions=("unbiased",),
            levels=(MAX_LEVEL,),
            operators=OPERATORS,
            instances=2,
        )
        campaign = Campaign(spec, TrialDB(Path(tmp) / "ops.sqlite"))
        campaign.run()
        print(campaign.run_table())


if __name__ == "__main__":
    main()
