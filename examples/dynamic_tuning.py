"""Dynamic tuning: input-adaptive plan dispatch (paper section 6).

Run:  python examples/dynamic_tuning.py

The paper's future-work section proposes algorithms that "classify inputs
... into different distribution classes and then switch between tuned
versions of itself."  This example tunes one plan per input family
(unbiased / biased), builds a DynamicSolver that sniffs each incoming
problem's distribution from its right-hand side, and runs a mixed stream
of problems through it — every instance is routed to the plan trained for
its class and still meets the accuracy target.
"""

from repro.accuracy import AccuracyJudge, reference_solution
from repro.machines import INTEL_HARPERTOWN
from repro.tuner import DynamicSolver
from repro.core import autotune, poisson_problem

MAX_LEVEL = 6
TARGET = 1e5


def main() -> None:
    print("tuning one plan per input distribution...")
    plans = {
        dist: autotune(max_level=MAX_LEVEL, machine="intel", distribution=dist)
        for dist in ("unbiased", "biased")
    }
    solver = DynamicSolver(plans=plans)
    print(f"classes: {solver.classes}")

    print("\nmixed workload through the dynamic solver:")
    stream = [
        ("unbiased", 21), ("biased", 22), ("biased", 23),
        ("unbiased", 24), ("biased", 25), ("unbiased", 26),
    ]
    correct = 0
    for dist, seed in stream:
        problem = poisson_problem(dist, n=2**MAX_LEVEL + 1, seed=seed)
        judge = AccuracyJudge(problem.initial_guess(), reference_solution(problem))
        from repro.machines import OpMeter

        meter = OpMeter()
        x, label = solver.solve(problem, TARGET, meter)
        achieved = judge.accuracy_of(x)
        ok = label == dist
        correct += ok
        print(
            f"  true={dist:<9} classified={label:<9} "
            f"accuracy={achieved:9.2e} (target {TARGET:.0e}) "
            f"simulated={INTEL_HARPERTOWN.price(meter):.2e}s "
            f"{'OK' if ok else 'MISROUTED'}"
        )
    print(f"\nrouting accuracy: {correct}/{len(stream)}")


if __name__ == "__main__":
    main()
