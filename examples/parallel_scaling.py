"""Parallel scalability of the tuned solver (Figure 9).

Run:  python examples/parallel_scaling.py

Executes the tuned plan once to capture its operation trace, converts the
trace into a task graph (row-block data parallelism with colour barriers,
serial direct solves), and replays it on 1..8 virtual workers with the
work-stealing simulator.  Also demonstrates the *real* thread-pool
work-stealing scheduler on a block-decomposed SOR sweep — correctness on
any machine; wall-clock speedup needs real cores.
"""

import numpy as np

from repro.bench import fig9_parallel_scaling
from repro.relax.sor import sor_redblack
from repro.runtime import WorkStealingScheduler, sweep_task_graph
from repro.workloads import make_problem

MAX_LEVEL = 7


def main() -> None:
    print("=== simulated speedup of the tuned algorithm (Intel model) ===\n")
    result = fig9_parallel_scaling(max_level=MAX_LEVEL, machine="intel")
    print(result.format())

    print("\n=== real work-stealing scheduler: block-parallel SOR sweep ===")
    problem = make_problem("unbiased", 65, seed=3)
    serial = problem.initial_guess()
    sor_redblack(serial, problem.b, 1.15, 1)
    parallel = problem.initial_guess()
    graph = sweep_task_graph(parallel, problem.b, omega=1.15, blocks=8)
    order = WorkStealingScheduler(workers=4).run(graph)
    err = float(np.abs(serial - parallel).max())
    print(f"executed {len(order)} tasks on 4 workers; "
          f"max deviation from the serial sweep: {err:.2e}")


if __name__ == "__main__":
    main()
