"""repro — reproduction of "Autotuning Multigrid with PetaBricks" (SC'09).

The package builds every system the paper relies on, in Python:

* numerical substrates: grids, band-Cholesky direct solver, red-black SOR,
  reference multigrid (:mod:`repro.grids`, :mod:`repro.linalg`,
  :mod:`repro.relax`, :mod:`repro.multigrid`);
* the accuracy metric and training machinery (:mod:`repro.accuracy`,
  :mod:`repro.workloads`);
* pluggable problem operators — constant/variable-coefficient and
  anisotropic stencils behind one protocol (:mod:`repro.operators`);
* the paper's contribution — the accuracy-aware DP autotuner
  (:mod:`repro.tuner`), with cycle-shape rendering (:mod:`repro.cycles`);
* machine cost models and a work-stealing runtime (:mod:`repro.machines`,
  :mod:`repro.runtime`);
* a batched, cache-warmed solve server with stale-while-tune background
  tuning and telemetry (:mod:`repro.serve`);
* a mini-PetaBricks choice framework (:mod:`repro.petabricks`);
* the experiment harness regenerating every table/figure
  (:mod:`repro.bench`).

Quickstart::

    from repro import core
    plan = core.autotune(max_level=5)
    x, seconds = core.solve(plan, core.poisson_problem("unbiased", n=33), 1e5)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
