"""Command-line interface: ``repro-mg <experiment> [options]``.

Runs any paper experiment or ablation and prints its table/diagram.  This
is the operational entry point EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.bench import (
    ablation_accuracy_ladder,
    ablation_factor_caching,
    ablation_pareto_vs_discrete,
    ablation_smoother,
    ablation_training_distribution,
    cross_architecture,
    fig10_13_reference_comparison,
    fig14_architectures,
    fig4_call_stacks,
    fig5_cycle_shapes,
    fig6_algorithm_comparison,
    fig7_heuristics,
    fig9_parallel_scaling,
    table1_complexity,
)

__all__ = ["main"]


def _fig7(args: argparse.Namespace) -> str:
    res = fig7_heuristics(max_level=args.max_level, machine=args.machine, seed=args.seed)
    return res.format() + "\n\nratios vs autotuned (Figure 8):\n" + res.format_ratios()


def _fig10_13(args: argparse.Namespace) -> str:
    parts = []
    for machine in ("intel", "amd", "sun"):
        for dist in ("unbiased", "biased"):
            for target in (1e5, 1e9):
                res = fig10_13_reference_comparison(
                    max_level=args.max_level,
                    machine=machine,
                    distribution=dist,
                    target=target,
                    seed=args.seed,
                )
                parts.append(res.format())
    return "\n\n".join(parts)


_EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": lambda a: table1_complexity(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig4": lambda a: fig4_call_stacks(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig5": lambda a: fig5_cycle_shapes(
        max_level=min(a.max_level, 6), machine="amd", seed=a.seed
    ).format(),
    "fig6": lambda a: fig6_algorithm_comparison(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig7": _fig7,
    "fig9": lambda a: fig9_parallel_scaling(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig10-13": _fig10_13,
    "fig14": lambda a: fig14_architectures(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "cross-arch": lambda a: cross_architecture(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-ladder": lambda a: ablation_accuracy_ladder(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-distribution": lambda a: ablation_training_distribution(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-smoother": lambda a: ablation_smoother(seed=a.seed).format(),
    "ablation-caching": lambda a: ablation_factor_caching(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-pareto": lambda a: ablation_pareto_vs_discrete(seed=a.seed).format(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg",
        description="Reproduction experiments for 'Autotuning Multigrid with "
        "PetaBricks' (SC'09)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--max-level",
        type=int,
        default=7,
        help="finest grid level (N = 2^level + 1); paper scale is 11-12",
    )
    parser.add_argument(
        "--machine",
        default="intel",
        help="machine preset: intel | amd | sun | host",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = _EXPERIMENTS[name](args)
        elapsed = time.perf_counter() - start
        print(f"==== {name} (generated in {elapsed:.1f}s) ====")
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
