"""Command-line interface.

Three entry styles share the ``repro-mg`` executable:

* ``repro-mg <experiment> [options]`` — regenerate any paper
  table/figure or ablation (the entry point EXPERIMENTS.md is
  generated from);
* ``repro-mg store <tune|ls|export|gc> [options]`` — operate the
  persistent tuning store (run resumable campaigns, list stored plans,
  export the trial run table, compact the database);
* ``repro-mg fleet <enqueue|work|status|export> [options]`` — run a
  distributed tuning fleet: seed the lease-based work queue with a
  campaign, start pull-based workers against the shared store, watch
  heartbeats, export the per-cell provenance run table;
* ``repro-mg serve [warm|bench] [options]`` — run the solve server:
  warm the plan cache for named workload classes, or drive it with the
  built-in closed-loop load generator and print telemetry (add
  ``--trace`` to record a span tree per request);
* ``repro-mg obs <report|trace|export> [options]`` — observability
  tooling: summarize schema-versioned bench reports, pretty-print
  recorded span trees, convert span logs to Chrome ``trace_event``
  JSON or telemetry snapshots to Prometheus text format.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.bench import (
    ablation_accuracy_ladder,
    ablation_factor_caching,
    ablation_pareto_vs_discrete,
    ablation_smoother,
    ablation_training_distribution,
    cross_architecture,
    fig10_13_reference_comparison,
    fig14_architectures,
    fig4_call_stacks,
    fig5_cycle_shapes,
    fig6_algorithm_comparison,
    fig7_heuristics,
    fig9_parallel_scaling,
    table1_complexity,
)

__all__ = ["main"]


def _fig7(args: argparse.Namespace) -> str:
    res = fig7_heuristics(max_level=args.max_level, machine=args.machine, seed=args.seed)
    return res.format() + "\n\nratios vs autotuned (Figure 8):\n" + res.format_ratios()


def _fig10_13(args: argparse.Namespace) -> str:
    parts = []
    for machine in ("intel", "amd", "sun"):
        for dist in ("unbiased", "biased"):
            for target in (1e5, 1e9):
                res = fig10_13_reference_comparison(
                    max_level=args.max_level,
                    machine=machine,
                    distribution=dist,
                    target=target,
                    seed=args.seed,
                )
                parts.append(res.format())
    return "\n\n".join(parts)


_EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": lambda a: table1_complexity(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig4": lambda a: fig4_call_stacks(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig5": lambda a: fig5_cycle_shapes(
        max_level=min(a.max_level, 6), machine="amd", seed=a.seed
    ).format(),
    "fig6": lambda a: fig6_algorithm_comparison(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig7": _fig7,
    "fig9": lambda a: fig9_parallel_scaling(
        max_level=a.max_level, machine=a.machine, seed=a.seed
    ).format(),
    "fig10-13": _fig10_13,
    "fig14": lambda a: fig14_architectures(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "cross-arch": lambda a: cross_architecture(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-ladder": lambda a: ablation_accuracy_ladder(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-distribution": lambda a: ablation_training_distribution(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-smoother": lambda a: ablation_smoother(seed=a.seed).format(),
    "ablation-caching": lambda a: ablation_factor_caching(
        max_level=min(a.max_level, 6), seed=a.seed
    ).format(),
    "ablation-pareto": lambda a: ablation_pareto_vs_discrete(seed=a.seed).format(),
}


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        from importlib.metadata import version

        return version("repro-mg")
    except Exception:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg",
        description="Reproduction experiments for 'Autotuning Multigrid with "
        "PetaBricks' (SC'09)",
        epilog="The persistent tuning store, the solve server, and the "
        "observability tooling have their own subcommands: `repro-mg "
        "store {tune,ls,export,gc}`, `repro-mg serve {warm,bench}`, and "
        "`repro-mg obs {report,trace,export}` (see their --help).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--max-level",
        type=int,
        default=7,
        help="finest grid level (N = 2^level + 1); paper scale is 11-12",
    )
    parser.add_argument(
        "--machine",
        default="intel",
        help="machine preset: intel | amd | sun | host",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _add_campaign_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-grid flags shared by ``store tune`` and ``fleet
    enqueue`` (one grid vocabulary, whichever engine runs the cells)."""
    parser.add_argument("--campaign", default="default", help="campaign name")
    parser.add_argument(
        "--machine",
        action="append",
        dest="machines",
        metavar="PRESET",
        help="machine preset (repeatable; default: intel amd sun)",
    )
    parser.add_argument(
        "--distribution",
        action="append",
        dest="distributions",
        metavar="DIST",
        help="input distribution (repeatable; default: unbiased)",
    )
    parser.add_argument(
        "--max-level",
        action="append",
        dest="levels",
        type=int,
        metavar="L",
        help="finest grid level (repeatable; default: 5)",
    )
    from repro.operators import operator_families

    parser.add_argument(
        "--operator",
        action="append",
        dest="operators",
        metavar="OP",
        help="operator spec (repeatable; default: poisson — or poisson3d "
        f"with --ndim 3; families: {', '.join(sorted(operator_families()))}; "
        "e.g. anisotropic(epsilon=0.01), anisotropic3d(epsx=0.01))",
    )
    parser.add_argument(
        "--ndim",
        type=int,
        choices=(2, 3),
        default=None,
        help="grid dimensionality of the campaign (default: derived from "
        "--operator, 2 when neither is given; picks the default operator "
        "family and validates explicit --operator specs)",
    )
    parser.add_argument(
        "--kind", choices=["multigrid-v", "full-multigrid"], default="multigrid-v"
    )
    parser.add_argument(
        "--backend",
        default="numpy",
        metavar="NAME",
        help="kernel backend the tuner may place on fine levels: numpy "
        "(default, the reference), cnative, numba, or auto (best backend "
        "available on the tuning host; each fleet worker resolves it "
        "against its own availability)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument(
        "--tuner",
        choices=["dp", "model"],
        default="dp",
        help="search used for cold cells: dp (exhaustive, the paper's "
        "tuner) or model (learned-cost-model Bayesian optimization at a "
        "fraction of the trial budget, warm-started from the store)",
    )


def _campaign_spec_from_args(args: argparse.Namespace, error) -> "CampaignSpec":  # type: ignore[name-defined]  # noqa: F821
    """Build the CampaignSpec the grid flags describe (usage errors via
    ``error``, mirroring argparse semantics)."""
    from repro.operators.spec import default_operator_spec, parse_operator
    from repro.store import CampaignSpec

    operators = tuple(
        args.operators
        or (default_operator_spec(args.ndim if args.ndim else 2).canonical(),)
    )
    # An unspecified --ndim derives from the operators (core API
    # semantics); an explicit one must match every spec.
    if args.ndim is not None:
        for op in operators:
            spec_ndim = parse_operator(op).ndim
            if spec_ndim != args.ndim:
                error(
                    f"--operator {op!r} is a {spec_ndim}-D family but "
                    f"--ndim is {args.ndim}"
                )
    return CampaignSpec(
        name=args.campaign,
        machines=tuple(args.machines or ("intel", "amd", "sun")),
        distributions=tuple(args.distributions or ("unbiased",)),
        levels=tuple(args.levels or (5,)),
        operators=operators,
        kind=args.kind,
        seed=args.seed,
        instances=args.instances,
        backend=args.backend,
        tuner=args.tuner,
    )


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg store",
        description="Operate the persistent tuning store (SQLite trial "
        "database + plan registry + resumable campaigns).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "--db",
        default=None,
        help="store database path (default: $REPRO_MG_STORE or "
        "./repro-mg-store.sqlite)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser(
        "tune",
        help="run (or resume) a tuning campaign over a machine x "
        "distribution x level grid",
    )
    _add_campaign_grid_arguments(tune)
    tune.add_argument(
        "--max-cells", type=int, default=None, help="stop after N pending cells"
    )
    tune.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="tune up to N campaign cells in parallel worker processes "
        "(requires a file-backed --db; results are identical to --jobs 1)",
    )

    ls = sub.add_parser("ls", help="list stored plans (or trials)")
    ls.add_argument("--trials", action="store_true", help="list the trial log instead")
    ls.add_argument(
        "--operator",
        metavar="OP",
        default=None,
        help="only rows for this operator spec (any spelling; symmetric "
        "with `store tune --operator`)",
    )

    export = sub.add_parser("export", help="export the trial run table")
    export.add_argument("--csv", metavar="PATH", help="write CSV here instead of stdout")

    sub.add_parser("gc", help="drop superseded trials and stale cells, VACUUM")
    return parser


def _store_main(argv: list[str]) -> int:
    import os

    from repro.core.api import STORE_ENV
    from repro.store import Campaign, PlanRegistry, TrialDB

    args = build_store_parser().parse_args(argv)
    db_path = args.db or os.environ.get(STORE_ENV, "repro-mg-store.sqlite")
    db = TrialDB(db_path)

    if args.command == "tune":
        spec = _campaign_spec_from_args(args, build_store_parser().error)
        campaign = Campaign(spec, db)
        pending_before = len(campaign.pending())
        campaign.run(
            max_cells=args.max_cells,
            jobs=args.jobs,
            on_cell=lambda cell: print(
                f"  {cell.machine:>16}  {cell.distribution:<9} "
                f"{cell.operator:<12} L{cell.max_level}  {cell.source:<7} "
                f"cost={cell.simulated_cost:.3e}  wall={cell.wall_seconds:.2f}s"
            ),
        )
        status = campaign.status()
        print(
            f"campaign {spec.name!r}: {status.get('done', 0)} done, "
            f"{status.get('pending', 0)} pending "
            f"({pending_before - len(campaign.pending())} cells this run)"
        )
        print(campaign.run_table())
        return 0

    if args.command == "ls":
        if args.trials:
            if args.operator is None:
                print(db.format_run_table())
            else:
                trials = db.trials(operator=args.operator)
                if not trials:
                    print(f"(no trials stored for operator {args.operator!r})")
                else:
                    from repro.bench.report import format_table

                    headers = ["kind", "distribution", "operator", "max_level",
                               "machine_name", "cycle_shape"]
                    rows = [[str(getattr(t, h)) for h in headers] for t in trials]
                    print(format_table(headers, rows))
        else:
            registry = PlanRegistry(db)
            plans = registry.plans(operator=args.operator)
            if not plans:
                suffix = (
                    f" for operator {args.operator!r}" if args.operator else ""
                )
                print(f"(no plans stored{suffix})")
            else:
                from repro.bench.report import format_table

                headers = list(plans[0])
                rows = [[str(p[h]) for h in headers] for p in plans]
                print(format_table(headers, rows))
        return 0

    if args.command == "export":
        if args.csv:
            count = db.export_csv(args.csv)
            print(f"wrote {count} trial rows to {args.csv}")
        else:
            print(db.format_run_table())
        return 0

    if args.command == "gc":
        removed = db.gc()
        print(
            f"removed {removed['trials']} superseded trial(s) and "
            f"{removed['campaign_cells']} stale campaign cell(s)"
        )
        return 0

    raise AssertionError(f"unhandled store command {args.command!r}")


def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg fleet",
        description="Operate a distributed tuning fleet: enqueue a campaign "
        "into the shared store's lease-based work queue, run pull-based "
        "workers against it, watch worker heartbeats, and export the "
        "per-cell provenance run table.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "--db",
        default=None,
        help="shared store database path (default: $REPRO_MG_STORE or "
        "./repro-mg-store.sqlite)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enqueue = sub.add_parser(
        "enqueue",
        help="seed the work queue with a campaign grid (idempotent) and "
        "persist its spec for workers",
    )
    _add_campaign_grid_arguments(enqueue)

    work = sub.add_parser(
        "work",
        help="run one pull-based worker until the campaign settles",
    )
    work.add_argument("--campaign", default="default", help="campaign name")
    work.add_argument(
        "--worker-id",
        default=None,
        help="unique worker identity (default: host:pid)",
    )
    work.add_argument(
        "--lease-ttl",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="lease duration per claimed cell; a worker dead longer than "
        "this has its cells re-claimed by survivors (default: 120)",
    )
    work.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="claims a cell gets before it is parked as poisoned (default: 3)",
    )
    work.add_argument(
        "--max-cells", type=int, default=None, help="stop after N completed cells"
    )
    work.add_argument(
        "--machine",
        action="append",
        dest="machines",
        metavar="PRESET",
        help="only claim cells for these machine presets (repeatable; "
        "default: any)",
    )
    work.add_argument(
        "--no-wait",
        action="store_true",
        help="exit as soon as no cell is claimable instead of waiting for "
        "other workers' leases to resolve",
    )

    status = sub.add_parser(
        "status", help="queue counts + worker heartbeats for a campaign"
    )
    status.add_argument("--campaign", default="default", help="campaign name")
    status.add_argument(
        "--json", action="store_true", help="print the snapshot as JSON"
    )

    export = sub.add_parser(
        "export", help="write the per-cell provenance run table"
    )
    export.add_argument("--campaign", default="default", help="campaign name")
    export.add_argument(
        "--csv", metavar="PATH", help="write run_table.csv here instead of stdout"
    )
    return parser


def _fleet_main(argv: list[str]) -> int:
    import json
    import os

    from repro.core.api import STORE_ENV
    from repro.fleet import FleetCoordinator, FleetWorker
    from repro.store import TrialDB

    args = build_fleet_parser().parse_args(argv)
    db_path = args.db or os.environ.get(STORE_ENV, "repro-mg-store.sqlite")
    db = TrialDB(db_path)

    if args.command == "enqueue":
        spec = _campaign_spec_from_args(args, build_fleet_parser().error)
        coordinator = FleetCoordinator(db, spec.name)
        open_cells = coordinator.enqueue(spec)
        print(
            f"campaign {spec.name!r}: {len(spec.cells())} cells in grid, "
            f"{open_cells} open for workers"
        )
        return 0

    if args.command == "work":
        worker = FleetWorker(
            db,
            args.campaign,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts,
            machines=tuple(args.machines) if args.machines else None,
        )
        print(f"worker {worker.worker_id!r} pulling from {args.campaign!r}")
        results = worker.run(
            max_cells=args.max_cells, wait_for_leased=not args.no_wait
        )
        for cell in results:
            print(
                f"  {cell.machine:>16}  {cell.distribution:<9} "
                f"{cell.operator:<12} L{cell.max_level}  {cell.source:<7} "
                f"cost={cell.simulated_cost:.3e}  wall={cell.wall_seconds:.2f}s"
            )
        snapshot = worker.telemetry.snapshot()
        print(
            f"worker {worker.worker_id!r}: "
            f"{snapshot['counters'].get('cells_done', 0)} done, "
            f"{snapshot['counters'].get('cells_failed', 0)} failed, "
            f"{snapshot['counters'].get('leases_lost', 0)} leases lost"
        )
        return 0

    if args.command == "status":
        coordinator = FleetCoordinator(db, args.campaign)
        if args.json:
            print(json.dumps(coordinator.status(), indent=2))
        else:
            print(coordinator.format_status())
        return 0

    if args.command == "export":
        coordinator = FleetCoordinator(db, args.campaign)
        if args.csv:
            count = coordinator.export_run_table(args.csv)
            print(f"wrote {count} cell rows to {args.csv}")
        else:
            from repro.bench.report import format_table

            headers, rows = coordinator.run_table_rows()
            if not rows:
                print(f"(no cells enqueued for campaign {args.campaign!r})")
            else:
                display = [
                    ["-" if v is None else str(v) for v in row] for row in rows
                ]
                print(format_table(headers, display))
        return 0

    raise AssertionError(f"unhandled fleet command {args.command!r}")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg serve",
        description="Run the batched, cache-warmed solve server: warm the "
        "plan cache for named workload classes, or drive it with the "
        "closed-loop load generator and print the telemetry snapshot.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "mode",
        nargs="?",
        choices=["warm", "bench"],
        default="warm",
        help="warm: tune-and-cache the --warm classes and print telemetry; "
        "bench: additionally fire a closed-loop request stream (default: warm)",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="store database path (default: $REPRO_MG_STORE or "
        "./repro-mg-store.sqlite)",
    )
    parser.add_argument("--machine", default="intel", help="machine preset")
    parser.add_argument(
        "--warm",
        action="append",
        dest="warm_specs",
        type=parse_warm_spec,
        metavar="DIST:LEVEL[:OPERATOR]",
        help="workload class to warm before serving (repeatable; e.g. "
        "unbiased:5 or biased:5:anisotropic(epsilon=0.01); "
        "default: unbiased:5)",
    )
    parser.add_argument(
        "--no-warm",
        action="store_true",
        help="skip warmup entirely (cold keys serve the heuristic fallback "
        "and tune in the background)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for warmup and background DP tunes",
    )
    parser.add_argument("--workers", type=int, default=2, help="serving threads")
    parser.add_argument("--queue-size", type=int, default=128)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kind", choices=["multigrid-v", "full-multigrid"], default="multigrid-v"
    )
    parser.add_argument(
        "--backend",
        default="numpy",
        metavar="NAME",
        help="kernel backend served plans are tuned against: numpy "
        "(default), cnative, numba, or auto (best available on this host)",
    )
    parser.add_argument(
        "--requests", type=int, default=64, help="bench mode: total requests"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="bench mode: closed-loop clients"
    )
    parser.add_argument(
        "--target", type=float, default=1e5, help="bench mode: target accuracy"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve through a sharded front door over N worker processes "
        "(zero-copy shared-memory payloads) instead of one in-process server",
    )
    parser.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-class p99 latency SLO in milliseconds; on a windowed "
        "breach the cached plan hot-swaps to a lower-accuracy variant "
        "until the window recovers (swaps land in the trial log)",
    )
    parser.add_argument(
        "--loadgen-seed",
        type=int,
        default=123,
        metavar="SEED",
        help="bench mode: RNG seed for the mixed-traffic schedule "
        "(same seed = byte-identical traffic)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the telemetry snapshot JSON here"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span tree per request (frontdoor/shard/batch/"
        "plan-cache/per-level executor ops); bench reports then carry "
        "per-request trace ids",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="with --trace: write the recorded spans as JSONL here "
        "(convert with `repro-mg obs export`)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="DIR",
        default="benchmarks/out",
        help="bench mode: directory for the schema-versioned BENCH_*.json "
        "envelope (default: benchmarks/out)",
    )
    return parser


def parse_warm_spec(text: str) -> tuple[str, int, str | None]:
    """``DIST:LEVEL[:OPERATOR]`` -> (distribution, level, operator).

    Used as the ``type=`` of ``serve --warm``, so malformed specs become
    argparse usage errors (exit code 2), not tracebacks.
    """
    parts = text.split(":", 2)
    if len(parts) < 2:
        raise ValueError(
            f"warm spec {text!r} must be DIST:LEVEL[:OPERATOR], e.g. unbiased:5"
        )
    dist, level = parts[0], int(parts[1])
    operator = parts[2] if len(parts) == 3 else None
    return dist, level, operator


def _serve_main(argv: list[str]) -> int:
    import json
    import os

    from repro.core.api import STORE_ENV
    from repro.serve import FrontDoor, SolveServer
    from repro.serve.loadgen import run_load
    from repro.store import TrialDB

    args = build_serve_parser().parse_args(argv)
    db_path = args.db or os.environ.get(STORE_ENV, "repro-mg-store.sqlite")
    specs = args.warm_specs or [parse_warm_spec("unbiased:5")]
    slo_p99_s = args.slo_p99_ms / 1e3 if args.slo_p99_ms is not None else None

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(capacity=65536)

    server: "FrontDoor | SolveServer"
    if args.shards is not None:
        server = FrontDoor(
            shards=args.shards,
            machine=args.machine,
            store_path=db_path,
            workers=args.workers,
            queue_size=args.queue_size,
            batch_size=args.batch_size,
            kind=args.kind,
            seed=args.seed,
            instances=args.instances,
            tune_jobs=args.jobs,
            backend=args.backend,
            slo_p99_s=slo_p99_s,
            tracer=tracer,
        )
    else:
        server = SolveServer(
            machine=args.machine,
            store=TrialDB(db_path),
            workers=args.workers,
            queue_size=args.queue_size,
            batch_size=args.batch_size,
            kind=args.kind,
            seed=args.seed,
            instances=args.instances,
            tune_jobs=args.jobs,
            backend=args.backend,
            slo_p99_s=slo_p99_s,
            tracer=tracer,
        )
    report = None
    with server:
        if not args.no_warm:
            for dist, level, operator in specs:
                start = time.perf_counter()
                entry = server.warm(dist, level, operator, jobs=args.jobs)
                source = (
                    entry.get("source", "?")
                    if isinstance(entry, dict)
                    else entry.source
                )
                print(
                    f"warmed {dist}:L{level}:{operator or 'poisson'}  "
                    f"source={source}  "
                    f"({time.perf_counter() - start:.2f}s)"
                )
        if args.mode == "bench":
            report = run_load(
                server,
                specs,
                requests=args.requests,
                clients=args.clients,
                target=args.target,
                seed=args.loadgen_seed,
            )
            print(
                f"served {report['completed']} requests "
                f"({report['rejected']} rejected) in "
                f"{report['wall_seconds']:.2f}s = "
                f"{report['throughput_rps']:.1f} req/s"
            )
            print(
                "latency p50/p95/p99: "
                + " / ".join(
                    f"{report[k] * 1e3:.2f}ms"
                    for k in ("p50_s", "p95_s", "p99_s")
                )
            )
        server.wait_for_swaps(timeout=1.0)
        snapshot = server.stats()
    print(json.dumps(snapshot, indent=2))
    if args.json:
        from pathlib import Path

        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {args.json}")
    if report is not None:
        from repro.obs.bench import write_bench_report

        envelope_path = write_bench_report(
            "serve_cli",
            {"load": report, "telemetry": snapshot},
            time.time(),
            args.bench_out,
        )
        print(f"wrote {envelope_path}")
    if tracer is not None:
        spans = tracer.spans()
        print(
            f"traced {len(spans)} span(s) across "
            f"{len(tracer.sink.trace_ids())} trace(s)"
        )
        if args.trace_out:
            from repro.obs import write_spans_jsonl

            count = write_spans_jsonl(spans, args.trace_out)
            print(f"wrote {count} span(s) to {args.trace_out}")
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mg obs",
        description="Observability tooling: summarize schema-versioned "
        "bench reports, pretty-print recorded span trees, and convert "
        "span logs / telemetry snapshots for external viewers.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="summarize BENCH_*.json envelopes in a directory"
    )
    report.add_argument(
        "--dir",
        default="benchmarks/out",
        help="directory holding BENCH_*.json envelopes (default: "
        "benchmarks/out)",
    )
    report.add_argument(
        "--json", action="store_true", help="print the envelopes as JSON"
    )

    trace = sub.add_parser(
        "trace", help="pretty-print span trees from a spans JSONL file"
    )
    trace.add_argument("spans", help="spans JSONL file (serve --trace-out)")
    trace.add_argument(
        "--trace-id", default=None, help="only this trace (default: all)"
    )

    export = sub.add_parser(
        "export",
        help="convert a spans JSONL file to Chrome trace_event JSON, or a "
        "telemetry snapshot to Prometheus text format",
    )
    export.add_argument(
        "--spans", default=None, help="spans JSONL file to convert"
    )
    export.add_argument(
        "--telemetry",
        default=None,
        help="telemetry snapshot JSON (serve --json) to convert",
    )
    export.add_argument(
        "--format",
        choices=["chrome", "prometheus"],
        default=None,
        help="output format (default: chrome for --spans, prometheus "
        "for --telemetry)",
    )
    export.add_argument(
        "--out", default=None, help="output path (default: stdout)"
    )
    return parser


def _print_span_tree(spans, trace_id: str) -> None:
    from repro.obs.trace import iter_children

    selected = [s for s in spans if s.trace_id == trace_id]
    by_id = {s.span_id: s for s in selected}

    def render(span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        print(
            f"  {'  ' * depth}{span.name}  {span.duration_s * 1e3:.3f}ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in sorted(
            iter_children(selected, span.span_id), key=lambda s: s.start_s
        ):
            render(child, depth + 1)

    print(f"trace {trace_id} ({len(selected)} span(s)):")
    roots = [
        s for s in selected
        if s.parent_id is None or s.parent_id not in by_id
    ]
    for root in sorted(roots, key=lambda s: s.start_s):
        render(root, 0)


def _obs_main(argv: list[str]) -> int:
    import json
    from pathlib import Path

    parser = build_obs_parser()
    args = parser.parse_args(argv)

    if args.command == "report":
        from repro.obs.bench import read_bench_report

        paths = sorted(Path(args.dir).glob("BENCH_*.json"))
        if not paths:
            print(f"(no BENCH_*.json envelopes under {args.dir})")
            return 0
        envelopes = []
        for path in paths:
            try:
                envelopes.append(read_bench_report(path))
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"skipping {path}: {exc}", file=sys.stderr)
        if args.json:
            print(json.dumps(envelopes, indent=2, sort_keys=True))
        else:
            for env in envelopes:
                created = time.strftime(
                    "%Y-%m-%d %H:%M:%S", time.localtime(env["created"])
                )
                keys = ", ".join(sorted(env["metrics"])[:8])
                print(f"  {env['bench']:<16} {created}  metrics: {keys}")
        return 0

    if args.command == "trace":
        from repro.obs import read_spans_jsonl

        spans = read_spans_jsonl(args.spans)
        trace_ids = (
            [args.trace_id]
            if args.trace_id
            else sorted({s.trace_id for s in spans})
        )
        for trace_id in trace_ids:
            _print_span_tree(spans, trace_id)
        return 0

    if args.command == "export":
        if (args.spans is None) == (args.telemetry is None):
            parser.error("pass exactly one of --spans or --telemetry")
        if args.spans is not None:
            fmt = args.format or "chrome"
            if fmt != "chrome":
                parser.error("--spans converts to --format chrome")
            from repro.obs import chrome_trace, read_spans_jsonl

            text = json.dumps(chrome_trace(read_spans_jsonl(args.spans)))
        else:
            fmt = args.format or "prometheus"
            if fmt != "prometheus":
                parser.error("--telemetry converts to --format prometheus")
            from repro.obs import prometheus_text

            text = prometheus_text(json.loads(Path(args.telemetry).read_text()))
        if args.out:
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text if text.endswith("\n") else text + "\n")
            print(f"wrote {out}")
        else:
            print(text)
        return 0

    raise AssertionError(f"unhandled obs command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["store"]:
        return _store_main(argv[1:])
    if argv[:1] == ["fleet"]:
        return _fleet_main(argv[1:])
    if argv[:1] == ["serve"]:
        return _serve_main(argv[1:])
    if argv[:1] == ["obs"]:
        return _obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = _EXPERIMENTS[name](args)
        elapsed = time.perf_counter() - start
        print(f"==== {name} (generated in {elapsed:.1f}s) ====")
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
