"""Weighted Jacobi relaxation.

The paper evaluated weighted Jacobi against red-black SOR on its training
data and restricted the search to SOR (section 2.3).  We keep Jacobi as a
selectable smoother so that decision is reproducible as an ablation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grids.grid import mesh_width
from repro.grids.poisson import residual, residual_axis_stencil
from repro.util.validation import check_cube_grid, check_square_grid

__all__ = [
    "jacobi_sweeps",
    "jacobi_sweeps_axes3d",
    "jacobi_sweeps_stencil",
    "jacobi_weighted",
]


def jacobi_weighted(
    u: np.ndarray,
    b: np.ndarray,
    omega: float = 2.0 / 3.0,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """One weighted-Jacobi sweep on ``u`` in place.

    u <- u + omega * D^{-1} (b - A u), with D = (2d/h^2) I for the
    d-dimensional constant Poisson operator (4/h^2 in 2-D, 6/h^2 in 3-D).
    ``scratch`` (same shape as ``u``) avoids reallocation across sweeps.
    """
    if u.ndim == 3:
        check_cube_grid(u, "u")
        if b.shape != u.shape:
            raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
        h = mesh_width(u.shape[0])
        r = residual(u, b, out=scratch)
        inner = (slice(1, -1),) * 3
        u[inner] += (omega * h * h / 6.0) * r[inner]
        return u
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    h = mesh_width(u.shape[0])
    r = residual(u, b, out=scratch)
    u[1:-1, 1:-1] += (omega * h * h * 0.25) * r[1:-1, 1:-1]
    return u


def jacobi_sweeps_axes3d(
    u: np.ndarray,
    b: np.ndarray,
    coeffs: Sequence[float],
    omega: float,
    sweeps: int,
) -> np.ndarray:
    """Weighted Jacobi for the 3-D per-axis-coefficient 7-point stencil."""
    check_cube_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    h = mesh_width(u.shape[0])
    factor = omega * h * h / (2.0 * float(sum(coeffs)))
    scratch = np.zeros_like(u)
    inner = (slice(1, -1),) * 3
    for _ in range(sweeps):
        r = residual_axis_stencil(u, b, coeffs, out=scratch)
        u[inner] += factor * r[inner]
    return u


def jacobi_sweeps(u: np.ndarray, b: np.ndarray, omega: float, sweeps: int) -> np.ndarray:
    """Run ``sweeps`` weighted-Jacobi sweeps on ``u`` in place."""
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    scratch = np.zeros_like(u)
    for _ in range(sweeps):
        jacobi_weighted(u, b, omega, scratch=scratch)
    return u


def jacobi_sweeps_stencil(
    u: np.ndarray,
    b: np.ndarray,
    diag: np.ndarray,
    residual_fn,
    omega: float,
    sweeps: int,
) -> np.ndarray:
    """Weighted Jacobi for a variable-coefficient stencil.

    u <- u + omega * D^{-1} (b - A u), with the true stencil diagonal
    ``diag`` (full-grid shaped, interior entries used) instead of the
    constant 4/h**2.  ``residual_fn(u, b, out=...)`` computes b - A u for
    the operator whose diagonal ``diag`` is.
    """
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if diag.shape != u.shape:
        raise ValueError(f"diag shape {diag.shape} != u shape {u.shape}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    scratch = np.zeros_like(u)
    for _ in range(sweeps):
        r = residual_fn(u, b, out=scratch)
        u[1:-1, 1:-1] += omega * r[1:-1, 1:-1] / diag[1:-1, 1:-1]
    return u
