"""Weighted Jacobi relaxation.

The paper evaluated weighted Jacobi against red-black SOR on its training
data and restricted the search to SOR (section 2.3).  We keep Jacobi as a
selectable smoother so that decision is reproducible as an ablation.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import mesh_width
from repro.grids.poisson import residual
from repro.util.validation import check_square_grid

__all__ = ["jacobi_sweeps", "jacobi_sweeps_stencil", "jacobi_weighted"]


def jacobi_weighted(
    u: np.ndarray,
    b: np.ndarray,
    omega: float = 2.0 / 3.0,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """One weighted-Jacobi sweep on ``u`` in place.

    u <- u + omega * D^{-1} (b - A u), with D = (4/h^2) I for the 5-point
    operator.  ``scratch`` (same shape as ``u``) avoids reallocation across
    sweeps.
    """
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    h = mesh_width(u.shape[0])
    r = residual(u, b, out=scratch)
    u[1:-1, 1:-1] += (omega * h * h * 0.25) * r[1:-1, 1:-1]
    return u


def jacobi_sweeps(u: np.ndarray, b: np.ndarray, omega: float, sweeps: int) -> np.ndarray:
    """Run ``sweeps`` weighted-Jacobi sweeps on ``u`` in place."""
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    scratch = np.zeros_like(u)
    for _ in range(sweeps):
        jacobi_weighted(u, b, omega, scratch=scratch)
    return u


def jacobi_sweeps_stencil(
    u: np.ndarray,
    b: np.ndarray,
    diag: np.ndarray,
    residual_fn,
    omega: float,
    sweeps: int,
) -> np.ndarray:
    """Weighted Jacobi for a variable-coefficient stencil.

    u <- u + omega * D^{-1} (b - A u), with the true stencil diagonal
    ``diag`` (full-grid shaped, interior entries used) instead of the
    constant 4/h**2.  ``residual_fn(u, b, out=...)`` computes b - A u for
    the operator whose diagonal ``diag`` is.
    """
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if diag.shape != u.shape:
        raise ValueError(f"diag shape {diag.shape} != u shape {u.shape}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    scratch = np.zeros_like(u)
    for _ in range(sweeps):
        r = residual_fn(u, b, out=scratch)
        u[1:-1, 1:-1] += omega * r[1:-1, 1:-1] / diag[1:-1, 1:-1]
    return u
