"""Relaxation weights for the 2D model problem."""

from __future__ import annotations

import math

from repro.grids.grid import mesh_width

__all__ = ["OMEGA_RECURSE", "omega_opt"]

#: Fixed SOR weight for relaxations inside RECURSE ("chosen by
#: experimentation to be a good parameter when used in multigrid",
#: paper section 2.3).
OMEGA_RECURSE = 1.15


def omega_opt(n: int) -> float:
    """Optimal SOR weight for the 2D discrete Poisson equation with fixed
    boundaries at grid size ``n``: 2 / (1 + sin(pi h)) with h = 1/(n-1).

    This is the weight the paper fixes for SOR when used as a standalone
    iterative solver (MULTIGRID-V_i step 3), citing Demmel, *Applied
    Numerical Linear Algebra*.
    """
    h = mesh_width(n)
    return 2.0 / (1.0 + math.sin(math.pi * h))
