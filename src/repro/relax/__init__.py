"""Iterative smoothers: Red-Black SOR and weighted Jacobi.

The paper's iterative building block is Red-Black Successive Over-Relaxation
(it "performed better than weighted Jacobi ... for similar computation cost
per iteration", section 2.3).  Two relaxation weights appear:

* ``omega_opt(n)`` = 2 / (1 + sin(pi h)) — the optimal SOR weight for the 2D
  model problem with fixed boundaries [Demmel 1997], used when SOR runs as a
  standalone solver (MULTIGRID-V step 3).
* ``OMEGA_RECURSE`` = 1.15 — the fixed weight the paper uses for the
  pre/post relaxations inside RECURSE.

Both a fully vectorized implementation and a scalar reference (for tests)
are provided; weighted Jacobi exists as the paper's considered-and-rejected
alternative and is exercised by an ablation benchmark.
"""

from repro.relax.weights import OMEGA_RECURSE, omega_opt
from repro.relax.sor import (
    sor_redblack,
    sor_redblack_axes3d,
    sor_redblack_reference,
    sor_redblack_stencil,
    sor_sweeps,
)
from repro.relax.jacobi import (
    jacobi_sweeps,
    jacobi_sweeps_axes3d,
    jacobi_sweeps_stencil,
    jacobi_weighted,
)
from repro.relax.iterate import iterate_until_residual

__all__ = [
    "OMEGA_RECURSE",
    "iterate_until_residual",
    "jacobi_sweeps",
    "jacobi_sweeps_axes3d",
    "jacobi_sweeps_stencil",
    "jacobi_weighted",
    "omega_opt",
    "sor_redblack",
    "sor_redblack_axes3d",
    "sor_redblack_reference",
    "sor_redblack_stencil",
    "sor_sweeps",
]
