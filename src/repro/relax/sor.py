"""Red-Black SOR sweeps, vectorized with slice arithmetic.

A sweep updates all red points (index-sum even over interior indices), then
all black points.  Within a colour, every neighbour of an updated point has
the other colour (the stencils couple only along axes), so the whole colour
updates as one vectorized expression while remaining a true
Gauss-Seidel-style sweep.  This holds in any dimension: the 2-D paths are
the historical kernels, and 3-D inputs branch into the per-axis-coefficient
7-point sweeps (:func:`sor_redblack_axes3d`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grids.grid import mesh_width
from repro.util.validation import check_cube_grid, check_square_grid

__all__ = [
    "sor_redblack",
    "sor_redblack_axes3d",
    "sor_redblack_reference",
    "sor_redblack_stencil",
    "sor_sweeps",
]


def _color_slices(n: int, parity: int):
    """Yield (rows, cols, north, south, west, east) index slices covering all
    interior points with (i + j) % 2 == parity."""
    for istart in (1, 2):
        # Pick jstart in {1, 2} so that (istart + jstart) % 2 == parity.
        jstart = 1 + ((istart + 1 + parity) % 2)
        if istart > n - 2 or jstart > n - 2:
            continue
        rows = slice(istart, n - 1, 2)
        cols = slice(jstart, n - 1, 2)
        north = slice(istart - 1, n - 2, 2)
        south = slice(istart + 1, n, 2)
        west = slice(jstart - 1, n - 2, 2)
        east = slice(jstart + 1, n, 2)
        yield rows, cols, north, south, west, east


def _sweep_color(u: np.ndarray, b: np.ndarray, h2: float, omega: float, parity: int) -> None:
    n = u.shape[0]
    quarter_omega = 0.25 * omega
    for rows, cols, north, south, west, east in _color_slices(n, parity):
        c = u[rows, cols]
        stencil = u[north, cols] + u[south, cols]
        stencil += u[rows, west]
        stencil += u[rows, east]
        stencil += h2 * b[rows, cols]
        c *= 1.0 - omega
        c += quarter_omega * stencil


def _color_blocks_3d(n: int, parity: int):
    """Yield interior slice blocks covering all points with
    (i + j + k) % 2 == parity, plus the six neighbour slices per block."""
    for istart in (1, 2):
        for jstart in (1, 2):
            kstart = 1 + ((istart + jstart + parity + 1) % 2)
            if istart > n - 2 or jstart > n - 2 or kstart > n - 2:
                continue
            ii = slice(istart, n - 1, 2)
            jj = slice(jstart, n - 1, 2)
            kk = slice(kstart, n - 1, 2)
            yield (
                ii, jj, kk,
                slice(istart - 1, n - 2, 2), slice(istart + 1, n, 2),
                slice(jstart - 1, n - 2, 2), slice(jstart + 1, n, 2),
                slice(kstart - 1, n - 2, 2), slice(kstart + 1, n, 2),
            )


def _sweep_color_axes_3d(
    u: np.ndarray,
    b: np.ndarray,
    coeffs: Sequence[float],
    h2: float,
    omega: float,
    parity: int,
) -> None:
    n = u.shape[0]
    c0, c1, c2 = coeffs
    inv_diag = 1.0 / (2.0 * (c0 + c1 + c2))
    for ii, jj, kk, im, ip, jm, jp, km, kp in _color_blocks_3d(n, parity):
        gs = c0 * (u[im, jj, kk] + u[ip, jj, kk])
        gs += c1 * (u[ii, jm, kk] + u[ii, jp, kk])
        gs += c2 * (u[ii, jj, km] + u[ii, jj, kp])
        gs += h2 * b[ii, jj, kk]
        gs *= inv_diag
        c = u[ii, jj, kk]
        c *= 1.0 - omega
        c += omega * gs


def sor_redblack_axes3d(
    u: np.ndarray,
    b: np.ndarray,
    coeffs: Sequence[float],
    omega: float,
    sweeps: int = 1,
) -> np.ndarray:
    """Red-black SOR for the 3-D per-axis-coefficient 7-point stencil.

    The operator is ``(A u) = [sum_a c_a (2u - u_a- - u_a+)] / h**2``;
    with unit coefficients this is the standard 7-point Poisson sweep.
    """
    check_cube_grid(u, "u")
    if u.ndim != 3:
        raise ValueError(f"u must be 3-D, got ndim={u.ndim}")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if len(coeffs) != 3:
        raise ValueError(f"need 3 coefficients, got {len(coeffs)}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    h = mesh_width(u.shape[0])
    h2 = h * h
    for _ in range(sweeps):
        _sweep_color_axes_3d(u, b, coeffs, h2, omega, parity=0)
        _sweep_color_axes_3d(u, b, coeffs, h2, omega, parity=1)
    return u


def sor_redblack(u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1) -> np.ndarray:
    """Run ``sweeps`` red-black SOR sweeps on ``u`` in place and return it.

    One sweep = red phase then black phase; each phase reads only values of
    the opposite colour, so this matches the sequential red-black ordering
    exactly regardless of vectorization.  3-D grids use the 7-point
    Poisson stencil.
    """
    if u.ndim == 3:
        return sor_redblack_axes3d(u, b, (1.0, 1.0, 1.0), omega, sweeps)
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    h = mesh_width(u.shape[0])
    h2 = h * h
    for _ in range(sweeps):
        _sweep_color(u, b, h2, omega, parity=0)
        _sweep_color(u, b, h2, omega, parity=1)
    return u


def sor_sweeps(u: np.ndarray, b: np.ndarray, omega: float, sweeps: int) -> np.ndarray:
    """Alias of :func:`sor_redblack` with a mandatory sweep count."""
    return sor_redblack(u, b, omega, sweeps)


def _sweep_color_stencil(
    u: np.ndarray,
    b: np.ndarray,
    north: np.ndarray,
    south: np.ndarray,
    west: np.ndarray,
    east: np.ndarray,
    diag: np.ndarray,
    omega: float,
    parity: int,
) -> None:
    n = u.shape[0]
    for rows, cols, nsl, ssl, wsl, esl in _color_slices(n, parity):
        gs = north[rows, cols] * u[nsl, cols]
        gs += south[rows, cols] * u[ssl, cols]
        gs += west[rows, cols] * u[rows, wsl]
        gs += east[rows, cols] * u[rows, esl]
        gs += b[rows, cols]
        gs /= diag[rows, cols]
        c = u[rows, cols]
        c *= 1.0 - omega
        c += omega * gs


def sor_redblack_stencil(
    u: np.ndarray,
    b: np.ndarray,
    north: np.ndarray,
    south: np.ndarray,
    west: np.ndarray,
    east: np.ndarray,
    diag: np.ndarray,
    omega: float,
    sweeps: int = 1,
) -> np.ndarray:
    """Red-black SOR sweeps for a variable-coefficient 5-point stencil.

    The operator is ``(A u)_ij = diag_ij u_ij - north_ij u_N - south_ij u_S
    - west_ij u_W - east_ij u_E``; the weight arrays are full-grid shaped
    (only interior entries are read).  With the constant Poisson weights
    this reduces to :func:`sor_redblack`'s update rule.
    """
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    for arr, name in ((north, "north"), (south, "south"), (west, "west"),
                      (east, "east"), (diag, "diag")):
        if arr.shape != u.shape:
            raise ValueError(f"{name} shape {arr.shape} != u shape {u.shape}")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    for _ in range(sweeps):
        _sweep_color_stencil(u, b, north, south, west, east, diag, omega, parity=0)
        _sweep_color_stencil(u, b, north, south, west, east, diag, omega, parity=1)
    return u


def _sor_reference_3d(
    u: np.ndarray, b: np.ndarray, omega: float, sweeps: int
) -> np.ndarray:
    n = u.shape[0]
    h = mesh_width(n)
    h2 = h * h
    for _ in range(sweeps):
        for parity in (0, 1):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    for k in range(1, n - 1):
                        if (i + j + k) % 2 != parity:
                            continue
                        gs = (
                            u[i - 1, j, k] + u[i + 1, j, k]
                            + u[i, j - 1, k] + u[i, j + 1, k]
                            + u[i, j, k - 1] + u[i, j, k + 1]
                            + h2 * b[i, j, k]
                        ) / 6.0
                        u[i, j, k] = (1.0 - omega) * u[i, j, k] + omega * gs
    return u


def sor_redblack_reference(
    u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
) -> np.ndarray:
    """Scalar-loop red-black SOR (executable specification for the tests)."""
    if u.ndim == 3:
        check_cube_grid(u, "u")
        return _sor_reference_3d(u, b, omega, sweeps)
    check_square_grid(u, "u")
    n = u.shape[0]
    h = mesh_width(n)
    h2 = h * h
    for _ in range(sweeps):
        for parity in (0, 1):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    if (i + j) % 2 != parity:
                        continue
                    gs = 0.25 * (
                        u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1] + h2 * b[i, j]
                    )
                    u[i, j] = (1.0 - omega) * u[i, j] + omega * gs
    return u
