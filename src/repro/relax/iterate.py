"""Residual-driven iteration loops shared by the reference solvers."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.grids.norms import residual_norm
from repro.grids.poisson import residual

__all__ = ["iterate_until_residual"]


def iterate_until_residual(
    step: Callable[[np.ndarray, np.ndarray], None],
    u: np.ndarray,
    b: np.ndarray,
    target: float,
    max_iters: int = 100_000,
) -> int:
    """Apply ``step(u, b)`` until ||b - A u|| <= target; return the count.

    Raises :class:`RuntimeError` if ``max_iters`` is exhausted — reference
    solvers are expected to converge on the SPD model problem, so hitting
    the cap indicates a configuration error rather than slow progress.
    """
    if target < 0:
        raise ValueError("target must be >= 0")
    scratch = np.zeros_like(u)
    for it in range(1, max_iters + 1):
        step(u, b)
        if residual_norm(residual(u, b, out=scratch)) <= target:
            return it
    raise RuntimeError(
        f"iteration did not reach residual {target:g} within {max_iters} steps"
    )
