"""Deterministic model-guided Bayesian-optimization search over cycle shapes.

The exhaustive DP trains *every* candidate at every (level, accuracy)
slot — ``(max_level - 1) * m * (m + 1)`` iteration-training runs for an
``m``-accuracy ladder.  :class:`BOSearch` runs the same bottom-up sweep
but spends training runs selectively, the way the surrogate-driven
autotuners in Wu et al. (arXiv:2010.08040) spend benchmark evaluations:

* a **surrogate** predicts each candidate's cost as (predicted seconds
  per unit cycle) x (predicted iterations).  Seconds come from the
  learned :class:`~repro.modeltuner.costmodel.CostModel` when one is
  supplied (the cold-machine path), otherwise from the machine profile;
  iteration counts come from convergence priors (``ceil(ln p_i / ln
  p_j)`` for RECURSE_j, an SOR spectral estimate) refined by every
  trained candidate observed so far;
* a **lower-confidence acquisition** ranks candidates per slot —
  unobserved candidates get an optimism bonus so the search keeps
  exploring — and only the top few are actually trained (all-but-one
  exploration happens at the cheapest level, exploitation above), plus a
  seeded epsilon-greedy exploration draw;
* the DIRECT candidate is exact and needs no iteration training, so it
  is always evaluated free and every slot is guaranteed feasible.

Every candidate evaluation — serial or parallel — routes through the
picklable :class:`~repro.parallel.model_tasks.ModelCandidateTask`
worker with an infinite pruning budget, so a given seed selects a
byte-identical plan at any ``jobs`` count.  The returned plan carries
``tuner="model"`` metadata with the trial budget actually spent.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.machines.meter import OpMeter, backend_op, dim_op
from repro.machines.profile import MachineProfile
from repro.modeltuner.costmodel import CostModel, ModelTiming
from repro.tuner.choices import Choice, DirectChoice
from repro.tuner.dp import VCycleTuner, tuning_metadata
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedVPlan, recurse_wrapper_meter
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = ["BOSearch", "dp_trial_budget"]

#: Optimism (lower-confidence) multipliers by observation state: an
#: unobserved arm prices below its mean prediction so the acquisition
#: keeps exploring; an arm observed at a lower level is nearly trusted.
_SIGMA_UNOBSERVED = 0.3
_SIGMA_TRANSFERRED = 0.1


def dp_trial_budget(max_level: int, num_accuracies: int) -> int:
    """Iteration-training runs the exhaustive DP spends on the same space
    (per slot: m RECURSE candidates + 1 SOR; DIRECT trains nothing)."""
    return max(0, max_level - 1) * num_accuracies * (num_accuracies + 1)


@dataclass
class BOSearch:
    """Budgeted model-guided tuner for the MULTIGRID-V_i family.

    Drop-in alternative to :class:`~repro.tuner.dp.VCycleTuner`:
    same ``tune() -> TunedVPlan`` surface, same training data and
    executor protocol, a fraction of the trial budget.  Supply
    ``profile`` to evaluate candidates with the analytic cost model
    (the surrogate only steers *which* candidates train), or ``model``
    alone to price everything with the learned model (the cold-machine
    path, where no trusted profile exists).
    """

    max_level: int
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES
    training: TrainingData = field(default_factory=TrainingData)
    #: evaluation pricing; ``None`` requires ``model``
    profile: MachineProfile | None = None
    #: learned surrogate; also the evaluation pricing when no profile
    model: CostModel | None = None
    seed: int | None = 0
    #: trained candidates per slot at the base level (exploration)
    explore: int = 2
    #: trained candidates per slot above the base level (exploitation)
    exploit: int = 1
    #: seeded chance of training one extra unobserved candidate per slot
    epsilon: float = 0.1
    max_sor_iters: int = 400
    max_recurse_iters: int = 64
    aggregate: str = "max"
    backend: str = "numpy"
    threads: int | None = None
    #: optional :class:`repro.store.sink.TrialSink` (same hook as the DP)
    sink: Any | None = None
    #: optional :class:`repro.parallel.TrialExecutor`
    trial_executor: Any | None = None

    def __post_init__(self) -> None:
        if self.profile is None and self.model is None:
            raise ValueError("BOSearch needs a profile, a model, or both")
        if self.max_level < 2:
            raise ValueError("BOSearch tunes levels >= 2")
        if self.explore < 1 or self.exploit < 1:
            raise ValueError("explore and exploit must be >= 1")
        if self.profile is not None:
            self._timing: CostModelTiming = CostModelTiming(self.profile, self.threads)
        else:
            self._timing = ModelTiming(self.model, self.threads)
        # Acquisition pricing: the learned model when available (its
        # predictions are the point of the exercise), else the profile.
        if self.model is not None:
            self._acq: CostModelTiming = ModelTiming(self.model, self.threads)
        else:
            self._acq = self._timing
        # Parent-side tuner: owns meters, backend placement, and plan
        # metadata.  Workers rebuild an identical one from task data.
        self._tuner = VCycleTuner(
            max_level=self.max_level,
            accuracies=self.accuracies,
            training=self.training,
            timing=self._timing,
            max_sor_iters=self.max_sor_iters,
            max_recurse_iters=self.max_recurse_iters,
            aggregate=self.aggregate,  # type: ignore[arg-type]
            keep_audit=False,
            backend=self.backend,
        )
        #: (kind, acc_index, sub_j) -> (level, iterations) observations;
        #: iterations is math.inf for trained-but-infeasible arms
        self._observed: dict[tuple[str, int, int | None], tuple[int, float]] = {}
        self.trials_used = 0

    # -- public API -------------------------------------------------------

    def tune(self) -> TunedVPlan:
        """Run the budgeted bottom-up search and return the tuned plan."""
        from repro.obs.runtime import get_tracer
        from repro.parallel.executor import SerialExecutor

        start = time.perf_counter()
        executor = self.trial_executor or SerialExecutor()
        rng = random.Random(f"{self.seed}|model-bo")
        m = len(self.accuracies)
        table: dict[tuple[int, int], Choice] = {}
        for i in range(m):
            table[(1, i)] = DirectChoice()
        tracer = get_tracer()
        with tracer.span(
            "modeltuner.tune",
            max_level=self.max_level,
            operator=self.training.operator_name,
            backend=self._tuner.backend,
            surrogate="model" if self.model is not None else "profile",
        ):
            for level in range(2, self.max_level + 1):
                with tracer.span("modeltuner.level", level=level):
                    self._tune_level(level, table, executor, rng)
        plan = self._build_plan(table, time.perf_counter() - start)
        return plan

    # -- per-level search -------------------------------------------------

    def _tune_level(
        self,
        level: int,
        table: dict[tuple[int, int], Choice],
        executor: Any,
        rng: random.Random,
    ) -> None:
        from repro.obs.runtime import get_tracer

        m = len(self.accuracies)
        n = size_of_level(level)
        sub_meters = [self._tuner._meter_below(table, level, j) for j in range(m)]
        # Acquisition: pick which trained candidates each slot evaluates.
        # Decided for the whole level before any evaluation runs, so the
        # task batch (and with it the seeded rng stream) is independent
        # of executor parallelism.
        chosen: list[list[tuple[str, int | None]]] = []
        for i in range(m):
            picks = self._acquire_slot(level, i, n, sub_meters, rng)
            # DIRECT is exact (no iteration training) so it always
            # evaluates: free feasibility floor for every slot.
            chosen.append([("direct", None), *picks])
            get_tracer().event(
                "modeltuner.acquire",
                level=level,
                acc_index=i,
                picks=",".join(self._label(kind, j) for kind, j in picks),
            )
        outcomes = self._evaluate(level, table, chosen, executor)
        # Second chance: a slot whose trained picks all came back
        # infeasible retrains the remaining candidates rather than
        # falling back to DIRECT at whatever price.
        retry: list[list[tuple[str, int | None]]] = []
        for i in range(m):
            trained = [
                (cand, out)
                for cand, out in outcomes[i]
                if cand[0] != "direct"
            ]
            if trained and not any(out.feasible for _, out in trained):
                evaluated = {cand for cand, _ in outcomes[i]}
                retry.append(
                    [c for c in self._slot_candidates() if c not in evaluated]
                )
            else:
                retry.append([])
        if any(retry):
            extra = self._evaluate(level, table, retry, executor)
            for i in range(m):
                outcomes[i].extend(extra[i])
        for i in range(m):
            self._record_observations(level, i, outcomes[i])
            table[(level, i)] = self._select(level, i, outcomes[i])

    def _slot_candidates(self) -> list[tuple[str, int | None]]:
        """Trained candidates in the DP's enumeration order (no DIRECT)."""
        m = len(self.accuracies)
        out: list[tuple[str, int | None]] = [("recurse", j) for j in range(m - 1, -1, -1)]
        out.append(("sor", None))
        return out

    def _acquire_slot(
        self,
        level: int,
        acc_index: int,
        n: int,
        sub_meters: list[OpMeter],
        rng: random.Random,
    ) -> list[tuple[str, int | None]]:
        """The trained candidates this slot will actually evaluate."""
        scored: list[tuple[float, int, tuple[str, int | None]]] = []
        unobserved: list[tuple[float, int, tuple[str, int | None]]] = []
        for idx, (kind, j) in enumerate(self._slot_candidates()):
            cost, state = self._predict(level, acc_index, kind, j, n, sub_meters)
            entry = (cost, idx, (kind, j))
            if math.isfinite(cost):
                scored.append(entry)
            if state == "unobserved" and math.isfinite(cost):
                unobserved.append(entry)
        scored.sort()
        budget = self.explore if level == 2 else self.exploit
        picks = [cand for _, _, cand in scored[:budget]]
        if not picks:
            # Every arm was observed infeasible at a lower level; those
            # observations may not transfer, so probe in candidate order
            # (the second-round fallback covers the rest if need be).
            picks = self._slot_candidates()[:budget]
        # Seeded epsilon-greedy exploration above the base level: one
        # deterministic draw per slot, consumed whether or not it fires.
        if level > 2:
            draw = rng.random()
            if draw < self.epsilon:
                for _, _, cand in sorted(unobserved):
                    if cand not in picks:
                        picks.append(cand)
                        break
        return picks

    def _predict(
        self,
        level: int,
        acc_index: int,
        kind: str,
        j: int | None,
        n: int,
        sub_meters: list[OpMeter],
    ) -> tuple[float, str]:
        """(acquisition cost, observation state) for one candidate arm."""
        iters, state = self._predicted_iters(level, acc_index, kind, j, n)
        if not math.isfinite(iters):
            return math.inf, state
        if kind == "recurse":
            assert j is not None
            unit = OpMeter()
            unit.merge(
                recurse_wrapper_meter(
                    n, self.training.ndim, self._tuner._backend_at(level)
                )
            )
            unit.merge(sub_meters[j])
            unit_cost = sum(
                count * self._acq.op_seconds(op, size)
                for (op, size), count in unit.items()
            )
        else:
            relax = backend_op(
                dim_op("relax", self.training.ndim), self._tuner._backend_at(level)
            )
            unit_cost = self._acq.op_seconds(relax, n)
        sigma = {
            "observed": 0.0,
            "transferred": _SIGMA_TRANSFERRED,
            "unobserved": _SIGMA_UNOBSERVED,
        }[state]
        return unit_cost * iters * math.exp(-sigma), state

    def _predicted_iters(
        self, level: int, acc_index: int, kind: str, j: int | None, n: int
    ) -> tuple[float, str]:
        obs = self._observed.get((kind, acc_index, j))
        if obs is not None:
            obs_level, iters = obs
            if not math.isfinite(iters):
                return math.inf, "observed"
            if kind == "sor" and obs_level != level:
                # SOR iteration counts grow ~linearly with side length.
                iters = min(
                    float(self.max_sor_iters), iters * 2.0 ** (level - obs_level)
                )
            state = "observed" if obs_level == level else "transferred"
            return float(iters), state
        target = self.accuracies[acc_index]
        if kind == "recurse":
            assert j is not None
            sub = self.accuracies[j]
            if sub >= target or sub <= 1.0:
                prior = 1.0
            else:
                prior = math.ceil(math.log(target) / math.log(sub))
            return min(float(self.max_recurse_iters), max(prior, 1.0)), "unobserved"
        # SOR with optimal omega: convergence factor ~ 1 - 2*pi/n, so
        # reaching an error reduction of ``target`` takes ~ n*ln(p)/(2*pi).
        prior = n * math.log(max(target, math.e)) / (2.0 * math.pi)
        return min(float(self.max_sor_iters), max(prior, 1.0)), "unobserved"

    # -- evaluation (single code path, serial == parallel) ----------------

    def _evaluate(
        self,
        level: int,
        table: dict[tuple[int, int], Choice],
        picks: list[list[tuple[str, int | None]]],
        executor: Any,
    ) -> list[list[tuple[tuple[str, int | None], Any]]]:
        """Evaluate per-slot candidate picks (plus DIRECT on the first
        round) through the picklable worker path, in deterministic order."""
        from repro.parallel.model_tasks import (
            ModelCandidateTask,
            evaluate_model_candidate,
        )

        frozen_table = tuple(sorted(table.items()))
        payload = self.model.to_json() if self.model is not None else None
        task_profile = (
            self.profile if self.profile is not None else self.model.base
        )
        tasks: list[ModelCandidateTask] = []
        slots: list[tuple[int, tuple[str, int | None]]] = []
        m = len(self.accuracies)
        for i in range(m):
            for kind, j in picks[i]:
                tasks.append(
                    ModelCandidateTask(
                        profile=task_profile,
                        threads=self.threads,
                        distribution=self.training.distribution,
                        instances=self.training.instances,
                        seed=self.training.seed,
                        accuracies=self.accuracies,
                        aggregate=str(self.aggregate),
                        max_sor_iters=self.max_sor_iters,
                        max_recurse_iters=self.max_recurse_iters,
                        level=level,
                        table=frozen_table,
                        acc_index=i,
                        kind=kind,
                        sub_accuracy=j,
                        operator=self.training.operator_name,
                        backend=self._tuner.backend,
                        model_payload=payload,
                    )
                )
                slots.append((i, (kind, j)))
                if kind != "direct":
                    self.trials_used += 1
        outcomes = executor.map(evaluate_model_candidate, tasks)
        per_slot: list[list[tuple[tuple[str, int | None], Any]]] = [
            [] for _ in range(m)
        ]
        for (i, cand), outcome in zip(slots, outcomes):
            per_slot[i].append((cand, outcome))
        return per_slot

    def _record_observations(
        self,
        level: int,
        acc_index: int,
        outcomes: list[tuple[tuple[str, int | None], Any]],
    ) -> None:
        for (kind, j), outcome in outcomes:
            if kind == "direct":
                continue
            if outcome.feasible and outcome.choice is not None:
                iters = float(getattr(outcome.choice, "iterations", 1))
            else:
                iters = math.inf
            self._observed[(kind, acc_index, j)] = (level, iters)

    def _select(
        self,
        level: int,
        acc_index: int,
        outcomes: list[tuple[tuple[str, int | None], Any]],
    ) -> Choice:
        """Fold evaluated outcomes with a strict ``<`` in the DP's
        candidate enumeration order (direct, recurse m-1..0, sor)."""
        order = {("direct", None): -1}
        for idx, cand in enumerate(self._slot_candidates()):
            order[cand] = idx
        best_choice: Choice | None = None
        best_time = math.inf
        for cand, outcome in sorted(outcomes, key=lambda pair: order[pair[0]]):
            if outcome.feasible and outcome.seconds < best_time:
                best_choice, best_time = outcome.choice, outcome.seconds
        if best_choice is None:
            raise RuntimeError(
                f"no feasible candidate at level {level}, "
                f"accuracy index {acc_index}"
            )
        return best_choice

    # -- plan assembly ----------------------------------------------------

    def _build_plan(
        self, table: dict[tuple[int, int], Choice], wall_seconds: float
    ) -> TunedVPlan:
        m = len(self.accuracies)
        budget = dp_trial_budget(self.max_level, m)
        metadata = tuning_metadata(
            "multigrid-v", self.training, self._timing, self.aggregate
        )
        if self._tuner.backend != "numpy":
            metadata["backend"] = self._tuner.backend
        metadata.update(
            {
                "tuner": "model",
                "search_seed": self.seed,
                "trials_used": self.trials_used,
                "trial_budget_dp": budget,
                "budget_fraction": (
                    round(self.trials_used / budget, 4) if budget else 0.0
                ),
            }
        )
        if self.model is not None:
            metadata["model_fingerprint"] = self.model.fingerprint()
        plan = TunedVPlan(
            accuracies=self.accuracies,
            max_level=self.max_level,
            table=table,
            metadata=metadata,
            ndim=self.training.ndim,
            backends=self._tuner._backends_through(self.max_level),
        )
        if self.sink is not None:
            from repro.store.sink import emit_tuning_trial

            emit_tuning_trial(
                self.sink, plan, self._timing, self.training, wall_seconds
            )
        return plan

    @staticmethod
    def _label(kind: str, j: int | None) -> str:
        return kind if j is None else f"{kind}_{j}"
