"""Learned per-op cost models fitted from measured solve profiles.

The analytic :class:`~repro.machines.profile.MachineProfile` prices ops
from first principles; this module learns the same (op, n) -> seconds
mapping from *evidence*: the per-(level, op, backend) cells a
:class:`~repro.obs.profile.SolveProfiler` aggregates during real solves
(via :meth:`~repro.obs.profile.SolveProfiler.to_training_rows`) and the
plan-level costs accumulated in the trial store.  A fitted
:class:`CostModel` then re-prices the existing DP — or the budgeted
:class:`~repro.modeltuner.bo.BOSearch` — for a machine with zero local
trials, upgrading the registry's nearest-profile warm-start to an actual
prediction.

Each op gets a power law ``seconds = coeff * points**exponent`` (points
= n**2 or n**3 by op dimensionality) fitted by weighted least squares in
log-log space — the functional family the roofline model itself lives
in, so two or three measured sizes pin an op down well.  Ops with no
measurements fall back to the base profile's analytic price scaled by a
global calibration factor (the geometric-mean measured/analytic ratio),
so the model always prices the full vocabulary.  Predictions are clamped
finite and positive for *any* well-formed input — the property the
hypothesis suite pins.

Everything here is pure data: a model serializes to JSON (laws + base
profile + calibration + provenance) and round-trips through
:meth:`CostModel.from_dict`, which is how fitted artifacts travel
through the schema-v6 store to fleet workers and serving caches.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.machines.meter import OPS, OpMeter, backend_op, base_op
from repro.machines.profile import MachineProfile
from repro.tuner.timing import CostModelTiming

__all__ = ["CostModel", "ModelTiming", "OpLaw", "points_of"]

#: Exponent bounds for fitted power laws.  Real op costs scale between
#: roughly linear in points (bandwidth-bound stencils) and quadratic
#: (2-D band-Cholesky is O(n^4) = points^2); anything outside is a
#: degenerate fit on noisy data and gets clamped.
_MIN_EXPONENT = 0.25
_MAX_EXPONENT = 3.0

#: Floor for any predicted op time: strictly positive keeps budget-cap
#: arithmetic (``best_time / unit_cost``) and log-space math finite.
_MIN_SECONDS = 1e-12
_MAX_SECONDS = 1e12


def points_of(op: str, n: int) -> float:
    """Grid points one occurrence of ``op`` touches at side length n."""
    base = base_op(op)
    if base.endswith("3d"):
        return float(n) ** 3
    return float(n) * float(n)


def _clamp_seconds(value: float) -> float:
    if not math.isfinite(value) or value < _MIN_SECONDS:
        return _MIN_SECONDS
    return min(value, _MAX_SECONDS)


@dataclass(frozen=True)
class OpLaw:
    """Fitted power law for one op: ``seconds = coeff * points**exponent``."""

    coeff: float
    exponent: float
    #: how many measurement rows the fit saw (provenance / diagnostics)
    observations: int = 0

    def predict(self, points: float) -> float:
        return _clamp_seconds(self.coeff * points**self.exponent)

    def to_dict(self) -> dict[str, Any]:
        return {
            "coeff": self.coeff,
            "exponent": self.exponent,
            "observations": self.observations,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OpLaw":
        return cls(
            coeff=float(data["coeff"]),
            exponent=float(data["exponent"]),
            observations=int(data.get("observations", 0)),
        )


def _reference_exponent(base: MachineProfile, op: str, threads: int | None) -> float:
    """The base profile's own cost-vs-points exponent for ``op``.

    Anchors single-size fits: with one measured size the data cannot
    determine a slope, so the analytic model's shape is borrowed and
    only the level is learned.
    """
    try:
        lo, hi = 17, 65
        t_lo = base.op_time(op, lo, threads)
        t_hi = base.op_time(op, hi, threads)
        if t_lo <= 0.0 or t_hi <= 0.0:
            return 1.0
        slope = math.log(t_hi / t_lo) / math.log(points_of(op, hi) / points_of(op, lo))
    except (KeyError, ValueError, ZeroDivisionError, OverflowError):
        return 1.0
    if not math.isfinite(slope):
        return 1.0
    return min(max(slope, _MIN_EXPONENT), _MAX_EXPONENT)


def _fit_law(
    samples: list[tuple[float, float, float]],
    fallback_exponent: float,
) -> OpLaw:
    """Weighted log-log least squares over (points, seconds, weight)."""
    logp = np.array([math.log(p) for p, _, _ in samples])
    logt = np.array([math.log(t) for _, t, _ in samples])
    w = np.array([wt for _, _, wt in samples])
    w = w / w.sum()
    mean_p = float(w @ logp)
    mean_t = float(w @ logt)
    var_p = float(w @ (logp - mean_p) ** 2)
    if var_p < 1e-12:
        exponent = fallback_exponent
    else:
        exponent = float(w @ ((logp - mean_p) * (logt - mean_t))) / var_p
        exponent = min(max(exponent, _MIN_EXPONENT), _MAX_EXPONENT)
    coeff = math.exp(mean_t - exponent * mean_p)
    if not math.isfinite(coeff) or coeff <= 0.0:
        coeff = _MIN_SECONDS
    return OpLaw(coeff=coeff, exponent=exponent, observations=len(samples))


@dataclass(frozen=True)
class CostModel:
    """Learned (op, n) -> seconds pricing over a base analytic profile."""

    base: MachineProfile
    laws: dict[str, OpLaw] = field(default_factory=dict)
    #: measured/analytic ratio applied to ops with no fitted law
    calibration: float = 1.0
    threads: int | None = None
    provenance: dict[str, Any] = field(default_factory=dict)

    # -- pricing ----------------------------------------------------------

    def op_seconds(self, op: str, n: int) -> float:
        """Predicted seconds for one occurrence of ``op`` at size ``n``.

        Always finite and strictly positive: fitted laws are clamped,
        and the analytic fallback is scaled by the global calibration.
        """
        law = self.laws.get(op)
        if law is not None:
            return law.predict(points_of(op, n))
        try:
            analytic = self.base.op_time(op, n, self.threads)
        except (KeyError, ValueError):
            analytic = _MIN_SECONDS
        return _clamp_seconds(analytic * self.calibration)

    def price(self, meter: OpMeter) -> float:
        """Total predicted seconds for all ops recorded in ``meter``."""
        return sum(count * self.op_seconds(op, n) for (op, n), count in meter.items())

    # -- fitting ----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        rows: Iterable[dict[str, Any]],
        base_profile: MachineProfile,
        trials: Sequence[Any] = (),
        threads: int | None = None,
        provenance: dict[str, Any] | None = None,
    ) -> "CostModel":
        """Fit per-op laws from measurement rows (+ stored trial evidence).

        ``rows`` are :meth:`SolveProfiler.to_training_rows` dicts
        (``{op, n, seconds, weight}``); malformed or non-positive rows
        are skipped, never fatal.  ``trials`` are
        :class:`~repro.store.trialdb.TrialRecord`-shaped objects whose
        ``plan_json`` + ``simulated_cost`` pairs contribute low-weight
        per-op pseudo-rows: the stored plan's unit meter is priced on
        the base profile and each op's analytic time is scaled so the
        total matches the recorded cost — plan-level evidence spread
        consistently over the ops it exercised.
        """
        from repro.obs.runtime import get_tracer

        samples: dict[str, list[tuple[float, float, float]]] = {}
        ratios: list[tuple[float, float]] = []
        n_rows = 0
        for row in rows:
            try:
                op = str(row["op"])
                n = int(row["n"])
                seconds = float(row["seconds"])
                weight = float(row.get("weight", 1.0))
            except (KeyError, TypeError, ValueError):
                continue
            if n < 3 or seconds <= 0.0 or weight <= 0.0 or not math.isfinite(seconds):
                continue
            samples.setdefault(op, []).append((points_of(op, n), seconds, weight))
            n_rows += 1
            try:
                analytic = base_profile.op_time(op, n, threads)
            except (KeyError, ValueError):
                analytic = 0.0
            if analytic > 0.0:
                ratios.append((seconds / analytic, weight))
        n_trials = cls._fold_trials(trials, base_profile, threads, samples, ratios)
        with get_tracer().span(
            "modeltuner.fit",
            base=base_profile.name,
            rows=n_rows,
            trials=n_trials,
            ops=len(samples),
        ):
            laws = {
                op: _fit_law(pts, _reference_exponent(base_profile, op, threads))
                for op, pts in sorted(samples.items())
            }
            calibration = _geometric_mean(ratios)
        meta = dict(provenance or {})
        meta.setdefault("rows", n_rows)
        meta.setdefault("trials", n_trials)
        meta.setdefault("base_fingerprint", base_profile.fingerprint())
        return cls(
            base=base_profile,
            laws=laws,
            calibration=calibration,
            threads=threads,
            provenance=meta,
        )

    @staticmethod
    def _fold_trials(
        trials: Sequence[Any],
        base_profile: MachineProfile,
        threads: int | None,
        samples: dict[str, list[tuple[float, float, float]]],
        ratios: list[tuple[float, float]],
    ) -> int:
        from repro.tuner.config import plan_from_dict

        folded = 0
        for trial in trials:
            plan_json = getattr(trial, "plan_json", None)
            cost = getattr(trial, "simulated_cost", None)
            if not plan_json or not cost or cost <= 0.0:
                continue
            try:
                plan = plan_from_dict(json.loads(plan_json))
                meter = plan.unit_meter(plan.max_level, plan.num_accuracies - 1)
                analytic_total = base_profile.price(meter, threads)
            except Exception:
                continue
            if analytic_total <= 0.0:
                continue
            scale = cost / analytic_total
            ratios.append((scale, 0.25))
            for (op, n), count in meter.items():
                try:
                    analytic = base_profile.op_time(op, n, threads)
                except (KeyError, ValueError):
                    continue
                if analytic <= 0.0:
                    continue
                samples.setdefault(op, []).append(
                    (points_of(op, n), analytic * scale, 0.25 * count)
                )
            folded += 1
        return folded

    # -- identity / serialization ----------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "base_profile": self.base.to_dict(),
            "base_name": self.base.name,
            "laws": {op: law.to_dict() for op, law in sorted(self.laws.items())},
            "calibration": self.calibration,
            "threads": self.threads,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CostModel":
        base = MachineProfile.from_dict(
            data["base_profile"], name=str(data.get("base_name", "profile"))
        )
        return cls(
            base=base,
            laws={
                op: OpLaw.from_dict(law) for op, law in data.get("laws", {}).items()
            },
            calibration=float(data.get("calibration", 1.0)),
            threads=data.get("threads"),
            provenance=dict(data.get("provenance", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "CostModel":
        return cls.from_dict(json.loads(payload))

    def fingerprint(self) -> str:
        """Stable content hash of the fitted model (artifact identity)."""
        payload = json.dumps(
            {k: v for k, v in self.to_dict().items() if k != "provenance"},
            sort_keys=True,
            separators=(",", ":"),
        )
        return "cm-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def known_ops(self) -> tuple[str, ...]:
        """The full op vocabulary this model prices (fitted + fallback)."""
        extra = tuple(op for op in self.laws if op not in OPS)
        return OPS + extra

    @staticmethod
    def vocabulary(ndim: int = 2, backend: str = "numpy") -> tuple[str, ...]:
        """The qualified op names a (ndim, backend) tune prices."""
        ops = tuple(op for op in OPS if op.endswith("3d") == (ndim == 3))
        return tuple(backend_op(op, backend) for op in ops)


def _geometric_mean(ratios: list[tuple[float, float]]) -> float:
    usable = [
        (r, w) for r, w in ratios if r > 0.0 and math.isfinite(r) and w > 0.0
    ]
    if not usable:
        return 1.0
    total_w = sum(w for _, w in usable)
    mean_log = sum(w * math.log(r) for r, w in usable) / total_w
    try:
        value = math.exp(mean_log)
    except OverflowError:
        return 1.0
    if not math.isfinite(value) or value <= 0.0:
        return 1.0
    return value


class ModelTiming(CostModelTiming):
    """A :class:`TimingStrategy` pricing candidates with a learned model.

    Subclasses :class:`CostModelTiming` (keeping ``.profile`` = the
    model's base profile) so the DP's deterministic-pricing checks —
    backend placement in :meth:`VCycleTuner._backend_at`, the parallel
    path's ``_require_cost_model`` — accept it, while every price comes
    from the fitted model instead of the analytic profile.
    """

    def __init__(self, model: CostModel, threads: int | None = None) -> None:
        super().__init__(model.base, threads)
        self.model = model

    def time_candidate(self, unit_meter, run, starts) -> float:
        return self.model.price(unit_meter)

    def op_seconds(self, op: str, n: int) -> float:
        return self.model.op_seconds(op, n)
