"""Model-based tuning: learned cost models + budgeted BO plan search.

The exhaustive DP tuner trains every candidate at every slot; this
package reaches comparable plans at a fraction of that trial budget by
(1) learning per-op cost models from the evidence the store and the
solve profiler already accumulate (:mod:`costmodel`), (2) running a
deterministic, seedable Bayesian-optimization search that only trains
the candidates a lower-confidence acquisition rates as promising
(:mod:`bo`), and (3) persisting fitted models as schema-v6 store
artifacts so cold machines and fleet workers start from predictions
instead of from scratch (:mod:`warmstart`).

Entry points: ``core.autotune(..., tuner="model")``,
``PlanRegistry.get_or_tune(..., tuner="model")``, and
``repro-mg store tune --tuner model``.
"""

from repro.modeltuner.bo import BOSearch, dp_trial_budget
from repro.modeltuner.costmodel import CostModel, ModelTiming, OpLaw, points_of
from repro.modeltuner.warmstart import (
    fit_model_from_store,
    model_for_profile,
    model_plan_for_key,
)

__all__ = [
    "BOSearch",
    "CostModel",
    "ModelTiming",
    "OpLaw",
    "dp_trial_budget",
    "fit_model_from_store",
    "model_for_profile",
    "model_plan_for_key",
    "points_of",
]
