"""Warm-starting the model tuner from the shared trial store.

The pieces in :mod:`costmodel` and :mod:`bo` are machine-local; this
module connects them to the store so the whole fleet benefits:

* :func:`fit_model_from_store` assembles a :class:`CostModel` from the
  evidence a store has already accumulated — trial rows for the pricing
  context (operator / ndim / backend) plus, optionally, measured
  :class:`~repro.obs.profile.SolveProfiler` cells from live solves;
* :func:`model_for_profile` adds persistence: serve the current
  schema-v6 ``model_artifacts`` row when one exists, otherwise fit and
  store it, so one worker's fit becomes every worker's warm start;
* :func:`model_plan_for_key` is what ``PlanRegistry.get_or_tune(...,
  tuner="model")`` runs on a cold key: fetch-or-fit the model, run the
  budgeted :class:`~repro.modeltuner.bo.BOSearch` instead of the
  exhaustive DP, and (for full-multigrid keys) finish with the standard
  full-MG pass on top of the model-selected V plans.

Cold-machine behaviour is graceful by construction: with an empty store
and no profiler, the fitted model has no laws and calibration 1.0, so
it prices exactly like the analytic profile — the search still runs,
just without learned corrections.
"""

from __future__ import annotations

from typing import Any

from repro.machines.profile import MachineProfile
from repro.modeltuner.bo import BOSearch
from repro.modeltuner.costmodel import CostModel

__all__ = [
    "fit_model_from_store",
    "model_for_profile",
    "model_plan_for_key",
]


def fit_model_from_store(
    db: Any,
    base_profile: MachineProfile,
    operator: str = "poisson",
    ndim: int = 2,
    backend: str = "numpy",
    profiler: Any | None = None,
    threads: int | None = None,
) -> CostModel:
    """Fit a :class:`CostModel` from a store's accumulated evidence.

    ``db`` is a :class:`~repro.store.trialdb.TrialDB`; its trial rows
    for the (operator, ndim, backend) pricing context become plan-level
    pseudo-observations.  ``profiler`` (a ``SolveProfiler``) contributes
    measured per-op rows when given — the higher-quality signal.
    """
    rows = profiler.to_training_rows(ndim) if profiler is not None else []
    trials = db.trials(operator=operator, ndim=ndim, backend=backend)
    return CostModel.fit(
        rows,
        base_profile,
        trials=trials,
        threads=threads,
        provenance={
            "source": "store",
            "operator": operator,
            "ndim": ndim,
            "backend": backend,
        },
    )


def model_for_profile(
    registry: Any,
    profile: MachineProfile,
    operator: str = "poisson",
    ndim: int = 2,
    backend: str = "numpy",
    profiler: Any | None = None,
    refit: bool = False,
) -> CostModel:
    """The current fitted model for (profile, pricing context).

    Serves the persisted ``model_artifacts`` row when present (unless
    ``refit``), otherwise fits from the registry's store and persists
    the artifact so other workers skip the fit.
    """
    from repro.store.models import ModelStore

    store = ModelStore(registry.db)
    if not refit:
        cached = store.get_cost_model(profile.fingerprint(), operator, ndim, backend)
        if cached is not None:
            return cached
    model = fit_model_from_store(
        registry.db, profile, operator, ndim, backend, profiler=profiler
    )
    store.put_model(model, operator, ndim, backend)
    return model


def model_plan_for_key(
    registry: Any,
    profile: MachineProfile,
    key: Any,
    jobs: int | None = None,
    model: CostModel | None = None,
    seed: int = 0,
) -> Any:
    """Tune ``key`` with the model-guided BO search (the ``tuner="model"``
    cold path of :meth:`PlanRegistry.get_or_tune`).

    ``seed`` is the *search* seed (candidate-selection randomness),
    independent of ``key.seed`` (the training-data seed that is part of
    plan identity).  Returns a plan whose metadata carries
    ``tuner="model"`` plus the trial budget actually spent.
    """
    from repro.tuner.training import TrainingData

    if model is None:
        model = model_for_profile(
            registry, profile, key.operator, key.ndim, key.backend
        )
    executor = None
    if jobs is not None and jobs > 1:
        from repro.parallel import resolve_executor

        executor = resolve_executor(jobs)
    try:
        training = TrainingData(
            distribution=key.distribution,
            instances=key.instances,
            seed=key.seed,
            operator=key.operator,
        )
        search = BOSearch(
            max_level=key.max_level,
            accuracies=tuple(key.accuracies),
            training=training,
            profile=profile,
            model=model,
            seed=seed,
            backend=key.backend,
            trial_executor=executor,
        )
        vplan = search.tune()
        if key.kind == "multigrid-v":
            return vplan
        from repro.tuner.full_mg import FullMGTuner
        from repro.tuner.timing import CostModelTiming

        plan = FullMGTuner(
            vplan=vplan,
            training=training,
            timing=CostModelTiming(profile),
            keep_audit=False,
            trial_executor=executor,
        ).tune(key.max_level)
        # The full-MG pass stamps its own metadata; keep the model
        # tuner's identity and budget accounting on the composite plan.
        plan.metadata["tuner"] = "model"
        plan.metadata["search_seed"] = seed
        plan.metadata["trials_used"] = search.trials_used
        if "model_fingerprint" in vplan.metadata:
            plan.metadata["model_fingerprint"] = vplan.metadata["model_fingerprint"]
        return plan
    finally:
        if executor is not None:
            executor.close()
