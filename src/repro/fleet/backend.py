"""Store backends: where the fleet's shared state actually lives.

The work queue and coordinator never touch SQLite directly — they speak
to a :class:`StoreBackend`, whose contract is deliberately tiny: run a
read, run a write transaction that is atomic *across processes*.  Today
the only implementation is :class:`SQLiteBackend` over the existing
WAL-mode :class:`~repro.store.trialdb.TrialDB` (``BEGIN IMMEDIATE``
takes the database write lock, so a claim decided inside one
transaction is decided for every worker on every host that shares the
file).  A networked backend (Postgres/MySQL in the py_experimenter
style) slots in behind the same two methods without touching the queue
protocol.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Sequence, TypeVar

from repro.store.trialdb import TrialDB

__all__ = ["SQLiteBackend", "StoreBackend"]

T = TypeVar("T")


class StoreBackend:
    """Interface: atomic reads and exclusive write transactions.

    ``rows`` runs one read statement and returns mapping-style rows.
    ``transact`` runs ``fn(conn)`` inside a transaction holding the
    backend's *exclusive* write lock — concurrent ``transact`` calls
    from other threads, processes, or hosts serialize against it — and
    commits on return (rolls back on exception).  Both absorb transient
    contention via the store's retry policy.
    """

    def rows(self, sql: str, params: Sequence[Any] = ()) -> list[Any]:
        raise NotImplementedError

    def transact(self, fn: Callable[[Any], T]) -> T:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SQLiteBackend(StoreBackend):
    """The current backend: one shared SQLite-WAL file via ``TrialDB``.

    ``BEGIN IMMEDIATE`` acquires the database's single write lock up
    front, so everything ``fn`` reads inside :meth:`transact` is stable
    until its commit — the property the lease protocol's
    check-then-claim sequences rely on.  Lock contention (another
    worker mid-transaction past ``busy_timeout``) is retried with the
    TrialDB's exponential-backoff policy.
    """

    def __init__(self, db: TrialDB) -> None:
        self.db = db

    def rows(self, sql: str, params: Sequence[Any] = ()) -> list[sqlite3.Row]:
        with self.db.lock:
            return self.db.conn.execute(sql, params).fetchall()

    def transact(self, fn: Callable[[sqlite3.Connection], T]) -> T:
        def begin_and_run(conn: sqlite3.Connection) -> T:
            conn.execute("BEGIN IMMEDIATE")
            try:
                result = fn(conn)
            except BaseException:
                conn.rollback()
                raise
            conn.commit()
            return result

        return self.db.write(begin_and_run)

    def close(self) -> None:
        self.db.close()
