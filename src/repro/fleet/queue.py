"""Lease-based work queue over campaign cells.

The py_experimenter model adapted to tuning campaigns: the campaign
grid is the run table, each (machine x distribution x operator x ndim x
level) cell is one open row, and workers *pull* — a worker claims a
lease on a cell, tunes it, and writes the result back.  Leases make the
protocol crash-safe:

* a claim atomically flips a cell to ``leased`` with a wall-clock
  expiry and an incremented attempt counter, inside one exclusive
  backend transaction — two workers can never hold the same cell;
* a worker that dies simply stops renewing; once the lease expires the
  cell is claimable again by any survivor (the dead worker's attempt
  stays counted);
* a cell that keeps failing is *parked*: after ``max_attempts`` claims
  it moves to ``poisoned`` with its last error preserved, so one bad
  cell cannot starve the fleet.

Time comes from an injectable :class:`~repro.util.clock.Clock`
(wall-clock by default — lease expiries must be comparable across
processes); tests drive expiry with a ``ManualClock``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.fleet.backend import SQLiteBackend, StoreBackend
from repro.store.trialdb import TrialDB
from repro.util.clock import WALL_CLOCK, Clock

__all__ = ["CELL_STATUSES", "Lease", "WorkQueue"]

#: Every state a campaign cell can be in under the fleet protocol.
CELL_STATUSES = ("pending", "leased", "done", "poisoned")

#: Cell identity columns, in campaign_cells primary-key order.
_CELL_KEY = ("campaign", "machine", "distribution", "operator", "max_level")


@dataclass(frozen=True)
class Lease:
    """One claimed cell: identity, holder, and expiry."""

    campaign: str
    machine: str
    distribution: str
    operator: str
    ndim: int
    max_level: int
    worker_id: str
    attempt: int
    expires_at: float

    @property
    def cell(self) -> tuple[str, str, str, int]:
        """The (machine, distribution, operator, level) campaign cell."""
        return (self.machine, self.distribution, self.operator, self.max_level)

    def _where(self) -> tuple[str, tuple[Any, ...]]:
        clause = " AND ".join(f"{col} = ?" for col in _CELL_KEY)
        return clause, (
            self.campaign,
            self.machine,
            self.distribution,
            self.operator,
            self.max_level,
        )


class WorkQueue:
    """Claim/renew/complete/fail over one campaign's cells.

    All mutations run inside exclusive backend transactions, so the
    queue is safe for any number of concurrent workers — threads,
    processes, or machines sharing the store.  ``max_attempts`` bounds
    how many claims a cell gets before it is parked as ``poisoned``.
    """

    def __init__(
        self,
        backend: StoreBackend | TrialDB,
        campaign: str,
        clock: Clock = WALL_CLOCK,
        lease_ttl: float = 120.0,
        max_attempts: int = 3,
    ) -> None:
        if isinstance(backend, TrialDB):
            backend = SQLiteBackend(backend)
        self.backend = backend
        self.campaign = campaign
        self.clock = clock
        self.lease_ttl = float(lease_ttl)
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, not {max_attempts}")
        self.max_attempts = int(max_attempts)

    # -- claiming ---------------------------------------------------------

    def claim(
        self,
        worker_id: str,
        lease_ttl: float | None = None,
        limit: int = 1,
        machines: tuple[str, ...] | None = None,
    ) -> list[Lease]:
        """Atomically lease up to ``limit`` open cells to ``worker_id``.

        Open means ``pending``, or ``leased`` with an expired lease (a
        crashed worker's cells come back here).  Expired cells that have
        exhausted their attempts are parked as ``poisoned`` instead of
        handed out again.  ``machines`` restricts claims to cells whose
        machine axis is in the tuple (a heterogeneous fleet's workers
        claim only cells they can run).  Returns fewer than ``limit``
        leases — possibly none — when the queue is drained.
        """
        ttl = self.lease_ttl if lease_ttl is None else float(lease_ttl)
        now = self.clock.now()
        expires = now + ttl

        def txn(conn: Any) -> list[Lease]:
            # Park expired cells that are out of attempts before
            # selecting, so they can never be claimed again.
            conn.execute(
                """
                UPDATE campaign_cells
                SET status = 'poisoned', lease_owner = NULL,
                    lease_expires_at = NULL,
                    last_error = COALESCE(last_error, 'lease expired')
                WHERE campaign = ? AND status = 'leased'
                  AND lease_expires_at <= ? AND attempts >= ?
                """,
                (self.campaign, now, self.max_attempts),
            )
            machine_clause = ""
            machine_params: tuple[str, ...] = ()
            if machines is not None:
                machine_clause = (
                    f" AND machine IN ({', '.join('?' * len(machines))})"
                )
                machine_params = tuple(machines)
            rows = conn.execute(
                f"""
                SELECT machine, distribution, operator, ndim, max_level,
                       status, attempts
                FROM campaign_cells
                WHERE campaign = ?
                  AND (status = 'pending'
                       OR (status = 'leased' AND lease_expires_at <= ?))
                  AND attempts < ?{machine_clause}
                ORDER BY machine, distribution, operator, max_level
                LIMIT ?
                """,
                (self.campaign, now, self.max_attempts, *machine_params, limit),
            ).fetchall()
            leases = []
            for row in rows:
                conn.execute(
                    """
                    UPDATE campaign_cells
                    SET status = 'leased', lease_owner = ?,
                        lease_expires_at = ?, attempts = attempts + 1
                    WHERE campaign = ? AND machine = ? AND distribution = ?
                      AND operator = ? AND max_level = ?
                    """,
                    (
                        worker_id,
                        expires,
                        self.campaign,
                        row["machine"],
                        row["distribution"],
                        row["operator"],
                        row["max_level"],
                    ),
                )
                leases.append(
                    Lease(
                        campaign=self.campaign,
                        machine=row["machine"],
                        distribution=row["distribution"],
                        operator=row["operator"],
                        ndim=int(row["ndim"]),
                        max_level=int(row["max_level"]),
                        worker_id=worker_id,
                        attempt=int(row["attempts"]) + 1,
                        expires_at=expires,
                    )
                )
            return leases

        return self.backend.transact(txn)

    def renew(self, lease: Lease, lease_ttl: float | None = None) -> bool:
        """Extend a held lease; ``False`` means the lease was lost.

        A lease is lost when it expired and another worker re-claimed
        (or the queue parked) the cell — the caller should abandon the
        cell, not write results for it.
        """
        ttl = self.lease_ttl if lease_ttl is None else float(lease_ttl)
        expires = self.clock.now() + ttl
        where, params = lease._where()

        def txn(conn: Any) -> bool:
            cur = conn.execute(
                f"""
                UPDATE campaign_cells SET lease_expires_at = ?
                WHERE {where} AND status = 'leased' AND lease_owner = ?
                """,
                (expires, *params, lease.worker_id),
            )
            return cur.rowcount == 1

        return self.backend.transact(txn)

    # -- finishing --------------------------------------------------------

    def complete(
        self,
        lease: Lease,
        source: str,
        simulated_cost: float | None = None,
        wall_seconds: float | None = None,
    ) -> bool:
        """Mark a leased cell done, guarded by lease ownership.

        Returns ``False`` when the lease was lost before completion (an
        expired lease re-claimed by a survivor): the cell's single
        ``done`` transition belongs to whoever holds the live lease, so
        no cell is ever completed twice.
        """
        where, params = lease._where()

        def txn(conn: Any) -> bool:
            cur = conn.execute(
                f"""
                UPDATE campaign_cells
                SET status = 'done', source = ?, simulated_cost = ?,
                    wall_seconds = ?, worker_id = ?, lease_owner = NULL,
                    lease_expires_at = NULL,
                    completed_at = strftime('%Y-%m-%dT%H:%M:%fZ', 'now')
                WHERE {where} AND status = 'leased' AND lease_owner = ?
                """,
                (
                    source,
                    simulated_cost,
                    wall_seconds,
                    lease.worker_id,
                    *params,
                    lease.worker_id,
                ),
            )
            return cur.rowcount == 1

        return self.backend.transact(txn)

    def fail(self, lease: Lease, error: str, requeue: bool = True) -> str:
        """Report a failed attempt; returns the cell's new disposition.

        ``'requeued'`` — the cell went back to ``pending`` for another
        attempt; ``'poisoned'`` — it exhausted ``max_attempts`` (or
        ``requeue=False``) and is parked with the error preserved;
        ``'lost'`` — the lease had already expired and someone else owns
        the cell now.
        """
        where, params = lease._where()

        def txn(conn: Any) -> str:
            row = conn.execute(
                f"""
                SELECT attempts FROM campaign_cells
                WHERE {where} AND status = 'leased' AND lease_owner = ?
                """,
                (*params, lease.worker_id),
            ).fetchone()
            if row is None:
                return "lost"
            park = not requeue or int(row["attempts"]) >= self.max_attempts
            status = "poisoned" if park else "pending"
            conn.execute(
                f"""
                UPDATE campaign_cells
                SET status = ?, lease_owner = NULL, lease_expires_at = NULL,
                    last_error = ?
                WHERE {where}
                """,
                (status, error, *params),
            )
            return "poisoned" if park else "requeued"

        return self.backend.transact(txn)

    # -- maintenance / introspection --------------------------------------

    def release_expired(self) -> int:
        """Return expired leases to ``pending`` (park exhausted ones).

        Claims do this lazily for the cells they touch; coordinators
        call this eagerly so ``status()`` reflects reality even while
        no worker is claiming.  Returns the number of cells released.
        """
        now = self.clock.now()

        def txn(conn: Any) -> int:
            conn.execute(
                """
                UPDATE campaign_cells
                SET status = 'poisoned', lease_owner = NULL,
                    lease_expires_at = NULL,
                    last_error = COALESCE(last_error, 'lease expired')
                WHERE campaign = ? AND status = 'leased'
                  AND lease_expires_at <= ? AND attempts >= ?
                """,
                (self.campaign, now, self.max_attempts),
            )
            cur = conn.execute(
                """
                UPDATE campaign_cells
                SET status = 'pending', lease_owner = NULL,
                    lease_expires_at = NULL
                WHERE campaign = ? AND status = 'leased'
                  AND lease_expires_at <= ?
                """,
                (self.campaign, now),
            )
            return int(cur.rowcount)

        return self.backend.transact(txn)

    def counts(self) -> dict[str, int]:
        """``status -> cell count`` (every status present, 0 included)."""
        rows = self.backend.rows(
            """
            SELECT status, COUNT(*) AS n FROM campaign_cells
            WHERE campaign = ? GROUP BY status
            """,
            (self.campaign,),
        )
        out = {status: 0 for status in CELL_STATUSES}
        for row in rows:
            out[row["status"]] = int(row["n"])
        return out

    def cells(self) -> list[dict[str, Any]]:
        """Every cell row of this campaign, in deterministic order."""
        rows = self.backend.rows(
            """
            SELECT machine, distribution, operator, ndim, max_level, status,
                   source, simulated_cost, wall_seconds, completed_at,
                   lease_owner, lease_expires_at, attempts, last_error,
                   worker_id
            FROM campaign_cells WHERE campaign = ?
            ORDER BY machine, distribution, operator, max_level
            """,
            (self.campaign,),
        )
        return [dict(row) for row in rows]
