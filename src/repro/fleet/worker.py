"""The fleet worker: pull a cell, tune it locally, push the result.

One ``FleetWorker`` is one machine's tuning capacity.  Its loop is the
py_experimenter worker loop over the campaign run table: claim an open
cell from the shared :class:`~repro.fleet.queue.WorkQueue`, run the
trial locally through the existing registry/tuner/executor stack
(``tune_cell`` — the same code path serial and parallel campaigns use,
so the resulting registry is byte-identical), and complete the lease.
Failures requeue the cell; the worker keeps going.

Workers are observable two ways: an in-process
:class:`~repro.serve.telemetry.Telemetry` (latency histograms for cell
wall time, counters for completions/renewals/requeues) for whoever owns
the worker object, and a heartbeat row in the shared store's
``fleet_workers`` table for the coordinator watching from outside.
"""

from __future__ import annotations

import json
import os
import socket
import traceback
from typing import Any

from repro.fleet.queue import Lease, WorkQueue
from repro.machines.profile import MachineProfile
from repro.obs.runtime import get_tracer
from repro.serve.telemetry import Telemetry
from repro.store.campaign import CampaignSpec, CellResult, tune_cell
from repro.store.registry import PlanRegistry
from repro.store.trialdb import TrialDB
from repro.util.clock import WALL_CLOCK, Clock

__all__ = ["FleetWorker", "format_worker_error", "load_campaign_spec"]

#: Cap on the persisted traceback, in characters.  The tail is kept —
#: the innermost frames are the ones that identify the failure.
TRACEBACK_LIMIT = 4000


def format_worker_error(exc: BaseException, limit: int = TRACEBACK_LIMIT) -> str:
    """A structured, bounded ``last_error`` payload for a failed cell.

    JSON with the exception type, its message, and the traceback tail —
    enough to diagnose a poisoned cell from the store alone, without the
    worker's stdout.  Bounded so one pathological repr can't bloat the
    cell row.  Stored as text in ``campaign_cells.last_error``; readers
    that expect the old ``"Type: message"`` form still get a readable
    string, and ``json.loads`` recovers the structure.
    """
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    if len(tb) > limit:
        tb = "...(truncated)...\n" + tb[-limit:]
    message = str(exc)
    if len(message) > 500:
        message = message[:500] + "..."
    return json.dumps(
        {"type": type(exc).__name__, "message": message, "traceback": tb}
    )


def load_campaign_spec(db: TrialDB, name: str) -> CampaignSpec:
    """The :class:`CampaignSpec` enqueued under ``name``.

    Fleet workers start with nothing but a store path and a campaign
    name; the spec (kind, accuracy ladder, seed, instances) needed to
    rebuild tuning keys from bare cell rows comes from the
    ``campaigns`` table the coordinator filled at enqueue time.
    """
    import json

    with db.lock:
        row = db.conn.execute(
            "SELECT spec_json FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
    if row is None:
        raise ValueError(
            f"campaign {name!r} has no stored spec — enqueue it first "
            "(FleetCoordinator.enqueue or `repro-mg fleet enqueue`)"
        )
    return CampaignSpec.from_dict(json.loads(row["spec_json"]))


class FleetWorker:
    """Pulls open cells from a shared store and tunes them locally.

    ``worker_id`` must be unique across the fleet (default:
    ``host:pid``).  ``machines`` restricts which machine-axis cells this
    worker claims; ``profile`` names the hardware the worker itself runs
    on (recorded in heartbeats/provenance — cells carry their *target*
    machine preset, which is what plans are keyed by, so heterogeneous
    workers still fill one registry consistently).
    """

    def __init__(
        self,
        db: TrialDB,
        campaign: str,
        worker_id: str | None = None,
        spec: CampaignSpec | None = None,
        lease_ttl: float = 120.0,
        max_attempts: int = 3,
        clock: Clock = WALL_CLOCK,
        machines: tuple[str, ...] | None = None,
        profile: MachineProfile | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.db = db
        self.registry = PlanRegistry(db)
        self.spec = spec if spec is not None else load_campaign_spec(db, campaign)
        self.queue = WorkQueue(
            db, campaign, clock=clock, lease_ttl=lease_ttl,
            max_attempts=max_attempts,
        )
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.clock = clock
        self.machines = machines
        self.profile = profile
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._stopped = False
        self._started_at: float | None = None

    # -- lifecycle --------------------------------------------------------

    def stop(self) -> None:
        """Ask the loop to exit after the in-flight cell."""
        self._stopped = True

    def run(
        self,
        max_cells: int | None = None,
        wait_for_leased: bool = True,
    ) -> list[CellResult]:
        """Claim-and-tune until the campaign settles (or ``max_cells``).

        Returns the results of cells this worker completed.  An empty
        claim means every open cell is done, poisoned, or leased
        elsewhere.  With ``wait_for_leased`` (the default), the worker
        then waits for those foreign leases to resolve — completed by
        their holder, or expired and re-claimable here — so a killed
        peer's cells are picked up by survivors instead of stranded
        until the next launch.  ``wait_for_leased=False`` exits
        immediately (process supervisors that re-launch workers on a
        schedule don't need the wait).
        """
        self._started_at = self.clock.now()
        self._heartbeat()
        results: list[CellResult] = []
        while not self._stopped:
            if max_cells is not None and len(results) >= max_cells:
                break
            tracer = get_tracer()
            with tracer.span(
                "fleet.claim", worker=self.worker_id, campaign=self.queue.campaign
            ) as claim_span:
                leases = self.queue.claim(
                    self.worker_id, machines=self.machines
                )
                claim_span.set(claimed=len(leases))
            if not leases:
                if not wait_for_leased or not self._wait_for_foreign_leases():
                    break
                continue
            lease = leases[0]
            if lease.attempt > 1:
                self.telemetry.incr("cells_reclaimed")
            result = self._run_cell(lease)
            if result is not None:
                results.append(result)
            self._heartbeat()
        return results

    # -- one cell ---------------------------------------------------------

    def _run_cell(self, lease: Lease) -> CellResult | None:
        start = self.clock.now()
        tracer = get_tracer()
        cell_attrs = {
            "worker": self.worker_id,
            "campaign": self.queue.campaign,
            "machine": lease.machine,
            "distribution": lease.distribution,
            "operator": lease.operator,
            "max_level": lease.max_level,
            "attempt": lease.attempt,
        }
        try:
            with tracer.span("fleet.tune", **cell_attrs):
                result = tune_cell(
                    self.registry,
                    self.spec,
                    lease.machine,
                    lease.distribution,
                    lease.operator,
                    lease.max_level,
                    worker_id=self.worker_id,
                    attempt=lease.attempt,
                )
        except Exception as exc:  # noqa: BLE001 - a bad cell must not kill the loop
            disposition = self.queue.fail(lease, format_worker_error(exc))
            self.telemetry.incr("cells_failed")
            self.telemetry.incr(f"cells_{disposition}")
            if tracer.enabled:
                tracer.event(
                    "fleet.fail",
                    error=type(exc).__name__,
                    disposition=disposition,
                    **cell_attrs,
                )
            return None
        # The tune may have outlived the lease; renew before writing the
        # completion so a lost lease is detected instead of double-done.
        if not self.queue.renew(lease):
            self.telemetry.incr("leases_lost")
            return None
        self.telemetry.incr("lease_renewals")
        wall = self.clock.now() - start
        with tracer.span("fleet.commit", **cell_attrs) as commit_span:
            committed = self.queue.complete(
                lease, result.source, result.simulated_cost, result.wall_seconds
            )
            commit_span.set(committed=committed)
        if not committed:
            self.telemetry.incr("leases_lost")
            return None
        self.telemetry.incr("cells_done")
        self.telemetry.observe("cell_seconds", max(wall, 0.0))
        elapsed = max(self.clock.now() - (self._started_at or start), 1e-9)
        self.telemetry.set_gauge(
            "cells_per_second", self.telemetry.counter("cells_done") / elapsed
        )
        return result

    def _wait_for_foreign_leases(self) -> bool:
        """Sleep until another worker's lease can resolve; False = done.

        Called when a claim came back empty: if any cells are still
        leased to someone else, sleep until the earliest expiry (capped
        so completions are noticed promptly) and tell the loop to try
        again.  Returns ``False`` once nothing is leased — the campaign
        has settled and the loop can exit.
        """
        rows = self.queue.backend.rows(
            """
            SELECT MIN(lease_expires_at) AS next_expiry FROM campaign_cells
            WHERE campaign = ? AND status = 'leased'
            """,
            (self.queue.campaign,),
        )
        next_expiry = rows[0]["next_expiry"] if rows else None
        if next_expiry is None:
            return False
        self.telemetry.incr("idle_waits")
        wait = max(0.05, min(next_expiry - self.clock.now(), 1.0))
        self.clock.sleep(wait)
        return True

    # -- heartbeats -------------------------------------------------------

    def _heartbeat(self) -> None:
        """Upsert this worker's liveness row in the shared store."""
        fingerprint = self.profile.fingerprint() if self.profile else None
        payload = (
            self.queue.campaign,
            socket.gethostname(),
            os.getpid(),
            fingerprint,
            self._started_at,
            self.clock.now(),
            self.telemetry.counter("cells_done"),
            self.telemetry.counter("cells_failed"),
            self.telemetry.counter("lease_renewals"),
            self.telemetry.counter("cells_reclaimed"),
        )

        def upsert(conn: Any) -> None:
            conn.execute(
                """
                INSERT INTO fleet_workers
                    (worker_id, campaign, host, pid, machine_fingerprint,
                     started_at, last_heartbeat, cells_done, cells_failed,
                     lease_renewals, requeues_claimed)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (worker_id) DO UPDATE SET
                    campaign = excluded.campaign,
                    last_heartbeat = excluded.last_heartbeat,
                    cells_done = excluded.cells_done,
                    cells_failed = excluded.cells_failed,
                    lease_renewals = excluded.lease_renewals,
                    requeues_claimed = excluded.requeues_claimed
                """,
                (self.worker_id, *payload),
            )
            conn.commit()

        self.db.write(upsert)
