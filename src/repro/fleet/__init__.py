"""Distributed tuning fleet: many workers, one plan registry.

The paper's premise is that tuned plans are per-architecture (section
3.2.1, Figure 14) — so a production registry is filled by a *fleet* of
heterogeneous machines, not one box.  This subsystem turns the campaign
grid into a shared work queue in the py_experimenter style (workers
pull open keyfield rows, write resultfields back):

* :class:`~repro.fleet.queue.WorkQueue` — lease-based claim / renew /
  complete / fail over campaign cells, crash-safe: expired leases are
  re-claimable, attempts are counted, poison cells are parked;
* :class:`~repro.fleet.worker.FleetWorker` — the pull loop: claim a
  cell, tune it through the existing registry/executor stack, push the
  plan + trial (with structured provenance) back;
* :class:`~repro.fleet.coordinator.FleetCoordinator` — enqueue
  campaigns, watch worker heartbeats, export ``run_table.csv`` with
  per-cell provenance;
* :class:`~repro.fleet.backend.StoreBackend` — the storage seam: the
  SQLite-WAL :class:`~repro.store.trialdb.TrialDB` today, a networked
  database later, same queue protocol.

CLI: ``repro-mg fleet {enqueue,work,status,export}``.
"""

from repro.fleet.backend import SQLiteBackend, StoreBackend
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.queue import Lease, WorkQueue
from repro.fleet.worker import FleetWorker, load_campaign_spec

__all__ = [
    "FleetCoordinator",
    "FleetWorker",
    "Lease",
    "SQLiteBackend",
    "StoreBackend",
    "WorkQueue",
    "load_campaign_spec",
]
