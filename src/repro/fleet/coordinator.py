"""The fleet coordinator: enqueue campaigns, watch workers, export runs.

The coordinator is the control-plane view of one campaign: it seeds the
work queue (cells + the stored :class:`CampaignSpec` workers rebuild
tuning keys from), tracks worker heartbeats, aggregates fleet-wide
telemetry (cells/sec, renewals, requeues — the same counter/histogram
machinery the solve server reports with), and exports the campaign as a
``run_table.csv`` whose rows carry per-cell provenance: which worker
completed the cell, after how many attempts, in how much wall-clock.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.fleet.queue import WorkQueue
from repro.serve.telemetry import Telemetry
from repro.store.campaign import Campaign, CampaignSpec
from repro.store.trialdb import TrialDB
from repro.util.clock import WALL_CLOCK, Clock

__all__ = ["FleetCoordinator", "RUN_TABLE_COLUMNS"]

#: run_table.csv column order: keyfields, outcome, then provenance.
RUN_TABLE_COLUMNS = (
    "campaign",
    "machine",
    "distribution",
    "operator",
    "ndim",
    "max_level",
    "status",
    "source",
    "simulated_cost",
    "wall_seconds",
    "worker_id",
    "attempts",
    "last_error",
    "completed_at",
)

#: A worker whose last heartbeat is older than this many seconds is
#: reported as stale (its leases will expire and be re-claimed).
DEFAULT_STALE_AFTER = 300.0


class FleetCoordinator:
    """Control plane for one campaign's distributed tuning run."""

    def __init__(
        self,
        db: TrialDB,
        campaign: str,
        clock: Clock = WALL_CLOCK,
        lease_ttl: float = 120.0,
        max_attempts: int = 3,
    ) -> None:
        self.db = db
        self.campaign = campaign
        self.clock = clock
        self.queue = WorkQueue(
            db, campaign, clock=clock, lease_ttl=lease_ttl,
            max_attempts=max_attempts,
        )
        self.telemetry = Telemetry()

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, spec: CampaignSpec) -> int:
        """Seed the queue: insert the campaign's cells and persist its
        spec so bare ``fleet work`` invocations can reconstruct tuning
        keys.  Idempotent — existing cells keep their status.  Returns
        the number of open (claimable) cells."""
        if spec.name != self.campaign:
            raise ValueError(
                f"spec is for campaign {spec.name!r}, coordinator drives "
                f"{self.campaign!r}"
            )
        Campaign(spec, self.db)  # creates any missing cells
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)

        def upsert_spec(conn: Any) -> None:
            conn.execute(
                """
                INSERT INTO campaigns (name, spec_json) VALUES (?, ?)
                ON CONFLICT (name) DO UPDATE SET spec_json = excluded.spec_json
                """,
                (spec.name, spec_json),
            )
            conn.commit()

        self.db.write(upsert_spec)
        counts = self.queue.counts()
        return counts["pending"] + counts["leased"]

    # -- observation ------------------------------------------------------

    def workers(self, stale_after: float = DEFAULT_STALE_AFTER) -> list[dict[str, Any]]:
        """Heartbeat rows for this campaign's workers, freshest first."""
        with self.db.lock:
            rows = self.db.conn.execute(
                """
                SELECT worker_id, host, pid, machine_fingerprint, started_at,
                       last_heartbeat, cells_done, cells_failed,
                       lease_renewals, requeues_claimed
                FROM fleet_workers WHERE campaign = ?
                ORDER BY last_heartbeat DESC
                """,
                (self.campaign,),
            ).fetchall()
        now = self.clock.now()
        out = []
        for row in rows:
            worker = dict(row)
            age = now - row["last_heartbeat"]
            worker["heartbeat_age_s"] = age
            worker["stale"] = age > stale_after
            uptime = max(now - (row["started_at"] or now), 1e-9)
            worker["cells_per_second"] = row["cells_done"] / uptime
            out.append(worker)
        return out

    def status(self, stale_after: float = DEFAULT_STALE_AFTER) -> dict[str, Any]:
        """One JSON-ready snapshot: queue counts, workers, fleet totals.

        Expired leases are released first, so the counts reflect what a
        new worker would actually find claimable.
        """
        released = self.queue.release_expired()
        if released:
            self.telemetry.incr("leases_released", released)
        workers = self.workers(stale_after)
        totals = {
            "cells_done": sum(w["cells_done"] for w in workers),
            "cells_failed": sum(w["cells_failed"] for w in workers),
            "lease_renewals": sum(w["lease_renewals"] for w in workers),
            "requeues_claimed": sum(w["requeues_claimed"] for w in workers),
            "cells_per_second": sum(w["cells_per_second"] for w in workers),
        }
        for name, value in totals.items():
            if name != "cells_per_second":
                self.telemetry.set_gauge(f"fleet_{name}", value)
        return {
            "campaign": self.campaign,
            "cells": self.queue.counts(),
            "workers": workers,
            "fleet": totals,
        }

    def format_status(self) -> str:
        """The status snapshot as aligned text tables (CLI output)."""
        from repro.bench.report import format_table

        snap = self.status()
        cells = snap["cells"]
        lines = [
            f"campaign {self.campaign!r}: "
            + ", ".join(f"{n} {s}" for s, n in cells.items())
        ]
        if snap["workers"]:
            headers = [
                "worker_id", "host", "cells_done", "cells_failed",
                "renewals", "reclaims", "cells/s", "heartbeat",
            ]
            rows = [
                [
                    w["worker_id"],
                    w["host"] or "-",
                    w["cells_done"],
                    w["cells_failed"],
                    w["lease_renewals"],
                    w["requeues_claimed"],
                    f"{w['cells_per_second']:.3f}",
                    ("stale" if w["stale"] else f"{w['heartbeat_age_s']:.0f}s ago"),
                ]
                for w in snap["workers"]
            ]
            lines.append(format_table(headers, rows))
        else:
            lines.append("(no workers have heartbeat yet)")
        return "\n".join(lines)

    # -- export -----------------------------------------------------------

    def run_table_rows(self) -> tuple[list[str], list[list[Any]]]:
        """(headers, rows) of the per-cell provenance run table."""
        headers = list(RUN_TABLE_COLUMNS)
        rows = []
        for cell in self.queue.cells():
            cell["campaign"] = self.campaign
            rows.append([cell[h] for h in headers])
        return headers, rows

    def export_run_table(self, path: str | Path) -> int:
        """Write ``run_table.csv`` — one row per cell with provenance
        (worker id, attempts, wall-clock, errors); returns the number of
        data rows."""
        headers, rows = self.run_table_rows()
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        return len(rows)
