"""Shard workers: one :class:`SolveServer` per process, JSON control bus.

The horizontally scaled serving tier splits traffic by **shard key** —
``(operator, level, ndim)``, the identity of a payload class — across N
worker processes.  Each worker runs today's in-process
:class:`~repro.serve.server.SolveServer` loop unchanged: bounded queue,
micro-batching, stale-while-tune, SLO-driven plan selection, telemetry.
What this module adds is the process boundary:

* :func:`shard_worker_main` — the child-process entry point: attach to
  the front door's shared-memory pools, rebuild each request as
  zero-copy views (:func:`repro.serve.shm.attach_problem`), solve **in
  place** into the slot, and answer with a slot token;
* the control-bus codec — messages are UTF-8 JSON over
  ``Connection.send_bytes``.  JSON cannot encode an ``ndarray``, so the
  hot path is *pickle-free by construction*: an array reaching
  :func:`encode_message` raises ``TypeError`` instead of silently
  serializing (tested);
* :class:`Autoscaler` — the pure policy deciding how many workers the
  front door should run, from queue depth and windowed tail latency,
  with bounds and a cooldown.  Deterministic under a
  :class:`~repro.util.clock.ManualClock`.

Workers are spawned (not forked): the front door holds threads, SQLite
handles and shared memory at spawn time, none of which survive a fork
safely.
"""

from __future__ import annotations

import hashlib
import json
import threading
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.util.clock import MONOTONIC_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = [
    "Autoscaler",
    "ShardWorkerConfig",
    "decode_message",
    "encode_message",
    "shard_index",
    "shard_key",
    "shard_worker_main",
]


def shard_key(operator: str, level: int, ndim: int) -> str:
    """Canonical routing identity of one payload class."""
    return f"{operator}|L{level}|{ndim}d"


def shard_index(key: str, shards: int) -> int:
    """Stable shard assignment for ``key`` across ``shards`` workers.

    Uses a keyed-nowhere BLAKE2 digest, not ``hash()`` — Python string
    hashing is salted per process, and the front door and its tests
    must agree on routing across restarts.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, not {shards}")
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def encode_message(msg: Mapping[str, Any]) -> bytes:
    """Control-bus encoding: compact UTF-8 JSON.

    Deliberately *not* pickle: JSON rejects ``ndarray`` (and any other
    rich object) with ``TypeError``, which turns "someone put an array
    on the hot path" from a silent performance cliff into a test
    failure.  Payload arrays travel through shared memory only.
    """
    return json.dumps(msg, separators=(",", ":")).encode()


def decode_message(data: bytes) -> dict[str, Any]:
    return json.loads(data.decode())


@dataclass(frozen=True)
class ShardWorkerConfig:
    """Everything a spawned shard worker needs (plain picklable data;
    pickled once at spawn — never on the request path)."""

    index: int
    machine: str = "intel"
    #: store database path; None gives each worker a private in-memory
    #: registry (plans still tune per worker, the bench's cold path)
    store_path: str | None = None
    workers: int = 2
    queue_size: int = 128
    batch_size: int = 8
    kind: str = "multigrid-v"
    seed: int | None = 0
    instances: int = 3
    tune_jobs: int | None = None
    backend: str = "numpy"
    slo_p99_s: float | None = None
    slo_window_s: float = 5.0
    slo_min_samples: int = 8
    slo_recovery_fraction: float = 0.8
    slo_degrade_rungs: int = 1
    #: enable tracing inside this worker; solve replies then carry the
    #: worker-side span tree (as JSON dicts) back to the front door
    trace: bool = False
    #: ring-buffer capacity of the worker's span sink when tracing
    trace_capacity: int = 4096
    #: executor op-span floor (None keeps the library default; 0 records
    #: every op — the tiny-grid test/demo setting)
    op_span_min_points: int | None = None

    def server_kwargs(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "workers": self.workers,
            "queue_size": self.queue_size,
            "batch_size": self.batch_size,
            "kind": self.kind,
            "seed": self.seed,
            "instances": self.instances,
            "tune_jobs": self.tune_jobs,
            "backend": self.backend,
            "slo_p99_s": self.slo_p99_s,
            "slo_window_s": self.slo_window_s,
            "slo_min_samples": self.slo_min_samples,
            "slo_recovery_fraction": self.slo_recovery_fraction,
            "slo_degrade_rungs": self.slo_degrade_rungs,
            "op_span_min_points": self.op_span_min_points,
        }


def shard_worker_main(config: ShardWorkerConfig, conn: "Connection") -> None:
    """Child-process entry point: serve until shutdown or EOF.

    Protocol (all JSON over ``send_bytes``/``recv_bytes``):

    * ``{"type": "solve", "id", "pool", "slot", "shape", "operator",
      "distribution", "target"}`` — rebuild the problem from the slot
      (zero-copy views), submit to the inner server with ``out=`` the
      slot's solution region, reply ``{"type": "result", ...}`` when
      the future resolves (or ``"error"`` with the traceback).
    * ``{"type": "warm", "id", "distribution", "level", "operator",
      "jobs"}`` — synchronous tune-and-cache, replies ``"warmed"``.
    * ``{"type": "stats", "id"}`` — telemetry snapshot reply.
    * ``{"type": "wait_swaps", "id", "timeout"}`` — block until no
      background tune is in flight.
    * ``{"type": "shutdown"}`` — drain, reply ``{"type": "bye"}``, exit.

    Responses are sent from whichever server thread resolves the
    request, serialized by a send lock; the loop itself only ever
    blocks in ``recv_bytes``.
    """
    from repro.obs.export import span_to_dict
    from repro.obs.trace import SpanContext, Tracer
    from repro.serve.server import ServeResult, SolveServer
    from repro.serve.shm import ShmAttachments, attach_problem
    from repro.store.registry import PlanRegistry

    # Explicit in-memory registry when no store path was shared: each
    # worker then tunes privately instead of inheriting $REPRO_MG_STORE.
    store: Any = (
        config.store_path if config.store_path is not None else PlanRegistry(":memory:")
    )
    tracer = Tracer(capacity=config.trace_capacity) if config.trace else None
    server = SolveServer(store=store, tracer=tracer, **config.server_kwargs())
    attachments = ShmAttachments()
    send_lock = threading.Lock()

    def reply(msg: Mapping[str, Any]) -> None:
        payload = encode_message(msg)
        with send_lock:
            try:
                conn.send_bytes(payload)
            except (BrokenPipeError, OSError):  # front door is gone
                pass

    def on_done(request_id: int, slot_token: dict[str, Any], fut: Any) -> None:
        try:
            result: ServeResult = fut.result()
        except Exception as exc:
            reply(
                {
                    "type": "error",
                    "id": request_id,
                    **slot_token,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
            return
        response: dict[str, Any] = {
            "type": "result",
            "id": request_id,
            **slot_token,
            "plan_source": result.plan_source,
            "generation": result.generation,
            "stale": result.stale,
            "batch_size": result.batch_size,
            "solve_latency_s": result.latency_s,
        }
        if tracer is not None and result.trace_id is not None:
            # Ship this request's span tree home as plain JSON dicts —
            # still pickle-free — so the front door can merge every
            # worker's spans into one correlated trace.
            response["trace_id"] = result.trace_id
            response["spans"] = [
                span_to_dict(s) for s in tracer.for_trace(result.trace_id)
            ]
        reply(response)

    def handle_solve(msg: dict[str, Any]) -> None:
        # Isolated in its own frame on purpose: the shm views built here
        # must not stay referenced by the long-lived message loop, or
        # the attachments can never close cleanly at shutdown.
        slot_token = {"pool": msg["pool"], "slot": msg["slot"]}
        try:
            problem, x = attach_problem(
                attachments.buffer(msg["pool"]),
                msg["slot"],
                tuple(msg["shape"]),
                msg["operator"],
                msg["distribution"],
            )
            trace_ctx = msg.get("trace")
            future = server.submit(
                problem,
                msg["target"],
                distribution=msg["distribution"],
                out=x,
                trace_parent=(
                    SpanContext.from_dict(trace_ctx) if trace_ctx is not None else None
                ),
            )
        except Exception as exc:
            reply(
                {
                    "type": "error",
                    "id": msg["id"],
                    **slot_token,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
            return
        future.add_done_callback(
            lambda fut, rid=msg["id"], token=slot_token: on_done(rid, token, fut)
        )

    try:
        while True:
            try:
                msg = decode_message(conn.recv_bytes())
            except (EOFError, OSError):
                break
            kind = msg.get("type")
            if kind == "solve":
                handle_solve(msg)
            elif kind == "warm":
                try:
                    entry = server.warm(
                        msg["distribution"],
                        msg["level"],
                        msg.get("operator"),
                        jobs=msg.get("jobs"),
                    )
                    reply(
                        {
                            "type": "warmed",
                            "id": msg["id"],
                            "source": entry.source,
                            "generation": entry.generation,
                        }
                    )
                except Exception as exc:
                    reply(
                        {
                            "type": "error",
                            "id": msg["id"],
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": traceback.format_exc(),
                        }
                    )
            elif kind == "stats":
                reply(
                    {"type": "stats", "id": msg["id"], "stats": server.stats()}
                )
            elif kind == "wait_swaps":
                settled = server.wait_for_swaps(timeout=msg.get("timeout", 30.0))
                reply({"type": "swaps_settled", "id": msg["id"], "ok": settled})
            elif kind == "shutdown":
                reply({"type": "bye"})
                break
            else:
                reply(
                    {
                        "type": "error",
                        "id": msg.get("id", -1),
                        "error": f"unknown message type {kind!r}",
                    }
                )
    finally:
        server.shutdown(drain=True, timeout=30.0)
        attachments.close()
        conn.close()


@dataclass
class ShardStats:
    """What the autoscaler sees about one live shard."""

    inflight: int
    p99_s: float = 0.0


class Autoscaler:
    """Bounded scale-up/scale-down policy for the front door.

    Pure decision logic: :meth:`decide` maps (per-shard stats, now) to a
    target worker count.  Scale **up** one worker when any shard's
    in-flight backlog exceeds ``up_backlog`` *or* its windowed p99
    breaches ``slo_p99_s`` (capacity, not plans, may be the fix); scale
    **down** one worker after the whole tier has been idle — zero
    backlog everywhere — for ``down_idle_s``.  Every change re-arms a
    ``cooldown_s`` timer so the tier never thrashes.  The front door
    applies decisions via ``resize``; tests drive this with a
    :class:`ManualClock` and assert exact decisions.
    """

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        *,
        up_backlog: int = 4,
        slo_p99_s: float | None = None,
        down_idle_s: float = 30.0,
        cooldown_s: float = 10.0,
        clock: Clock | None = None,
    ) -> None:
        if not 1 <= min_shards <= max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got [{min_shards}, {max_shards}]"
            )
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.up_backlog = up_backlog
        self.slo_p99_s = slo_p99_s
        self.down_idle_s = down_idle_s
        self.cooldown_s = cooldown_s
        self.clock = clock or MONOTONIC_CLOCK
        self._last_change: float | None = None
        self._idle_since: float | None = None

    def decide(self, shards: list[ShardStats]) -> int:
        """Target worker count given current per-shard stats."""
        current = len(shards)
        now = self.clock.now()
        if self._last_change is not None and now - self._last_change < self.cooldown_s:
            return current
        busy = any(s.inflight > 0 for s in shards)
        if busy:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now

        pressed = any(
            s.inflight >= self.up_backlog
            or (self.slo_p99_s is not None and s.p99_s > self.slo_p99_s)
            for s in shards
        )
        if pressed and current < self.max_shards:
            self._last_change = now
            return current + 1
        if (
            not busy
            and current > self.min_shards
            and self._idle_since is not None
            and now - self._idle_since >= self.down_idle_s
        ):
            self._last_change = now
            return current - 1
        return current


# ShardStats is part of the autoscaler contract; re-exported for callers.
__all__.append("ShardStats")
