"""Closed-loop load generation against a solve server or front door.

``clients`` threads each keep exactly one request in flight: submit,
wait for the result, submit the next — the classic closed-loop model,
so offered load adapts to server capacity instead of overrunning it.
Requests follow a **seeded mixed-traffic schedule**: the (distribution,
level, operator) spec and the concrete problem instance of every
request index are drawn once from ``numpy``'s seeded generator before
any client starts, so two runs with the same seed offer byte-identical
traffic — regardless of thread interleaving — and two seeds offer
genuinely different mixes.  The schedule digest is part of the report,
making determinism assertable.

The target may be a single-process :class:`~repro.serve.server.
SolveServer` or a sharded :class:`~repro.serve.frontdoor.FrontDoor` —
both expose the same ``submit(problem, target)`` future contract, and
both reject with :class:`~repro.serve.batching.Backpressure`, which is
counted and retried after a short pause so a saturated tier degrades
throughput instead of failing the run.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.serve.batching import Backpressure
from repro.util.clock import MONOTONIC_CLOCK, Clock
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.frontdoor import FrontDoor
    from repro.serve.server import SolveServer

__all__ = ["build_schedule", "run_load"]

#: Problems pre-generated per workload class; clients cycle over them so
#: RHS generation stays off the measured path.
POOL_SIZE = 8


def _exact_percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def build_schedule(
    requests: int, n_specs: int, seed: int
) -> list[tuple[int, int]]:
    """The mixed-traffic schedule: request index -> (spec, pool slot).

    Spec coverage is balanced (every spec appears ``requests / n_specs``
    times, +/- 1) and the interleaving is a seeded shuffle, so the mix
    looks like real interleaved traffic while staying exactly
    reproducible per seed.
    """
    if requests < 1 or n_specs < 1:
        raise ValueError("requests and n_specs must be >= 1")
    rng = np.random.default_rng(seed)
    spec_order = [i % n_specs for i in range(requests)]
    rng.shuffle(spec_order)
    slots = rng.integers(0, POOL_SIZE, size=requests)
    return [(spec_order[i], int(slots[i])) for i in range(requests)]


def _schedule_digest(schedule: list[tuple[int, int]]) -> str:
    h = hashlib.blake2b(digest_size=8)
    for spec_i, slot in schedule:
        h.update(f"{spec_i}:{slot};".encode())
    return h.hexdigest()


def run_load(
    server: "SolveServer | FrontDoor",
    specs: Sequence[tuple[str, int, "str | None"]],
    requests: int = 64,
    clients: int = 4,
    target: float = 1e5,
    seed: int = 123,
    retry_pause: float = 0.002,
    clock: "Clock | None" = None,
) -> dict[str, Any]:
    """Drive ``requests`` requests through the server; returns a report.

    The report carries throughput, exact latency percentiles over the
    completed requests (p50/p95/p99), rejection counts, a breakdown of
    plan sources served, and the seed + schedule digest the traffic was
    generated from — enough for the cold-vs-warm and single-vs-sharded
    comparisons the serve benchmarks gate on.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    clock = clock or MONOTONIC_CLOCK
    pools: list[list[Any]] = [
        [
            make_problem(
                dist, size_of_level(level), seed, index=i, operator=operator
            )
            for i in range(POOL_SIZE)
        ]
        for dist, level, operator in specs
    ]
    schedule = build_schedule(requests, len(specs), seed)

    counter_lock = threading.Lock()
    issued = 0
    rejected = 0
    results: list[Any] = []

    def next_index() -> int | None:
        nonlocal issued
        with counter_lock:
            if issued >= requests:
                return None
            issued += 1
            return issued - 1

    def client_loop() -> None:
        nonlocal rejected
        while True:
            index = next_index()
            if index is None:
                return
            spec_i, slot = schedule[index]
            problem = pools[spec_i][slot]
            while True:
                try:
                    future = server.submit(problem, target)
                    break
                except Backpressure:
                    with counter_lock:
                        rejected += 1
                    clock.sleep(retry_pause)
            result = future.result()
            with counter_lock:
                results.append(result)

    started = clock.now()
    threads = [
        threading.Thread(target=client_loop, name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = clock.now() - started

    latencies = sorted(r.latency_s for r in results)
    sources: dict[str, int] = {}
    batched = 0
    trace_ids: list[str] = []
    for r in results:
        sources[r.plan_source] = sources.get(r.plan_source, 0) + 1
        if r.batch_size > 1:
            batched += 1
        if getattr(r, "trace_id", None) is not None:
            trace_ids.append(r.trace_id)
    report: dict[str, Any] = {
        "requests": requests,
        "clients": clients,
        "seed": seed,
        "schedule_digest": _schedule_digest(schedule),
        "completed": len(results),
        "rejected": rejected,
        "wall_seconds": wall,
        "throughput_rps": len(results) / wall if wall > 0 else float("inf"),
        "p50_s": _exact_percentile(latencies, 0.50),
        "p95_s": _exact_percentile(latencies, 0.95),
        "p99_s": _exact_percentile(latencies, 0.99),
        "max_s": latencies[-1] if latencies else 0.0,
        "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "batched_fraction": batched / len(results) if results else 0.0,
        "sources": dict(sorted(sources.items())),
    }
    # Only when the target is tracing: the report stays byte-identical
    # for untraced runs, and traced runs can be joined to their spans.
    if trace_ids:
        report["trace_ids"] = sorted(trace_ids)
    return report
