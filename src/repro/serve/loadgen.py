"""Closed-loop load generation against a :class:`SolveServer`.

``clients`` threads each keep exactly one request in flight: submit,
wait for the result, submit the next — the classic closed-loop model,
so offered load adapts to server capacity instead of overrunning it.
Requests cycle over a mixed workload (the (distribution, level,
operator) specs), which exercises the cache's per-class bucketing and
the queue's same-key batching the way real mixed traffic would.

:class:`~repro.serve.batching.Backpressure` rejections are counted and
retried after a short pause, so a saturated queue degrades throughput
instead of failing the run.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

from repro.serve.batching import Backpressure
from repro.util.clock import MONOTONIC_CLOCK, Clock
from repro.util.validation import size_of_level
from repro.workloads.distributions import make_problem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import ServeResult, SolveServer

__all__ = ["run_load"]

#: Problems pre-generated per workload class; clients cycle over them so
#: RHS generation stays off the measured path.
POOL_SIZE = 8


def _exact_percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_load(
    server: "SolveServer",
    specs: Sequence[tuple[str, int, "str | None"]],
    requests: int = 64,
    clients: int = 4,
    target: float = 1e5,
    seed: int = 123,
    retry_pause: float = 0.002,
    clock: "Clock | None" = None,
) -> dict[str, Any]:
    """Drive ``requests`` requests through the server; returns a report.

    The report carries throughput, exact latency percentiles over the
    completed requests (p50/p95/p99), rejection counts, and a breakdown
    of plan sources served — enough for the cold-vs-warm comparisons
    the serve benchmark gates on.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    clock = clock or MONOTONIC_CLOCK
    pools: list[list[Any]] = [
        [
            make_problem(
                dist, size_of_level(level), seed, index=i, operator=operator
            )
            for i in range(POOL_SIZE)
        ]
        for dist, level, operator in specs
    ]

    counter_lock = threading.Lock()
    issued = 0
    rejected = 0
    results: list["ServeResult"] = []

    def next_index() -> int | None:
        nonlocal issued
        with counter_lock:
            if issued >= requests:
                return None
            issued += 1
            return issued - 1

    def client_loop() -> None:
        nonlocal rejected
        while True:
            index = next_index()
            if index is None:
                return
            pool = pools[index % len(pools)]
            problem = pool[(index // len(pools)) % len(pool)]
            while True:
                try:
                    future = server.submit(problem, target)
                    break
                except Backpressure:
                    with counter_lock:
                        rejected += 1
                    clock.sleep(retry_pause)
            result = future.result()
            with counter_lock:
                results.append(result)

    started = clock.now()
    threads = [
        threading.Thread(target=client_loop, name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = clock.now() - started

    latencies = sorted(r.latency_s for r in results)
    sources: dict[str, int] = {}
    batched = 0
    for r in results:
        sources[r.plan_source] = sources.get(r.plan_source, 0) + 1
        if r.batch_size > 1:
            batched += 1
    return {
        "requests": requests,
        "clients": clients,
        "completed": len(results),
        "rejected": rejected,
        "wall_seconds": wall,
        "throughput_rps": len(results) / wall if wall > 0 else float("inf"),
        "p50_s": _exact_percentile(latencies, 0.50),
        "p95_s": _exact_percentile(latencies, 0.95),
        "p99_s": _exact_percentile(latencies, 0.99),
        "max_s": latencies[-1] if latencies else 0.0,
        "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "batched_fraction": batched / len(results) if results else 0.0,
        "sources": dict(sorted(sources.items())),
    }
