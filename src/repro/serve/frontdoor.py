"""The front door: one process routing solves across shard workers.

:class:`FrontDoor` is the client-facing half of the horizontally scaled
serving tier.  It owns the shared-memory slot pools
(:mod:`repro.serve.shm`), spawns N shard workers
(:func:`repro.serve.sharding.shard_worker_main`), and routes each
request by its shard key — ``(operator, level, ndim)`` — so every
worker sees a stable subset of the traffic and its plan cache stays
hot for exactly that subset.

The request path is copy-once, pickle-never:

1. ``submit`` acquires a slot in the pool for the request's shape and
   writes ``b`` + boundary into it (the one unavoidable copy, into
   shared pages both processes map);
2. a ~200-byte JSON control message names (pool, slot, shape) to the
   worker, which solves **in place** into the slot's ``x`` region;
3. the worker's reply is another small JSON message; the front door
   copies the solution out of the slot and releases it.

Routing is *sticky least-loaded*: the first time a shard key appears it
is pinned to the worker currently carrying the fewest keys (ties break
to the lowest index), and it stays there — deterministic, balanced for
benchmarks, and cache-friendly for workers.

Worker death is survivable by construction.  The payload lives in the
front door's shared memory and the request's control message is kept
until its response arrives, so when a worker dies (the reader thread
sees EOF *after* draining every response the worker did send — pipes
preserve written data past writer death) the front door respawns the
shard and resubmits exactly the still-unanswered messages.  Responses
are deduplicated through the pending map: the first reply for a request
id resolves and removes it, any later reply for the same id is counted
and dropped.  No request is lost; none is answered twice.

An optional :class:`~repro.serve.sharding.Autoscaler` drives
:meth:`resize` between bounds from queue depth and windowed tail
latency (:meth:`autoscale_tick`).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from repro.obs.export import span_from_dict
from repro.obs.trace import NOOP_TRACER, NoopTracer, Span, Tracer
from repro.serve.batching import Backpressure
from repro.serve.sharding import (
    Autoscaler,
    ShardStats,
    ShardWorkerConfig,
    decode_message,
    encode_message,
    shard_key,
    shard_worker_main,
)
from repro.serve.shm import SlotPool
from repro.serve.telemetry import Telemetry
from repro.util.clock import MONOTONIC_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing
    from multiprocessing.connection import Connection

    from repro.operators.spec import OperatorSpec
    from repro.workloads.problem import PoissonProblem

__all__ = ["FrontDoor", "FrontDoorResult", "PendingRequest"]


@dataclass(frozen=True)
class FrontDoorResult:
    """What a completed sharded request resolves to."""

    solution: np.ndarray
    plan_source: str
    generation: int
    stale: bool
    batch_size: int
    #: end-to-end latency as seen by the front door (queue + transport +
    #: solve), in seconds
    latency_s: float
    #: solve-side latency the worker reported
    solve_latency_s: float
    #: which shard worker served the request
    shard: int
    #: trace id correlating the front-door + worker span tree (None when
    #: tracing is off)
    trace_id: str | None = None


@dataclass
class PendingRequest:
    """Bookkeeping for one in-flight message (internal).

    Holds everything needed to (a) resolve the caller's future exactly
    once and (b) resubmit the identical control message to a
    replacement worker if the original dies mid-request — the payload
    itself is safe in the front door's shared memory, so recovery costs
    one small message, not a re-upload.
    """

    future: "Future[Any]"
    worker_index: int
    message: dict[str, Any]
    kind: str = "solve"
    pool_shape: tuple[int, ...] | None = None
    slot: int | None = None
    submitted_at: float = 0.0
    resubmits: int = field(default=0, compare=False)
    #: front-door root span of this request's trace (None unless tracing)
    span: "Span | None" = None


class _WorkerHandle:
    """One live shard worker process and its control pipe."""

    def __init__(
        self,
        index: int,
        process: "multiprocessing.process.BaseProcess",
        conn: "Connection",
    ) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.reader: threading.Thread | None = None
        #: set when the front door retires the worker on purpose, so the
        #: reader thread treats EOF as a clean exit, not a crash
        self.retiring = False

    def send(self, msg: Mapping[str, Any]) -> None:
        payload = encode_message(msg)
        with self.send_lock:
            self.conn.send_bytes(payload)


class FrontDoor:
    """Sharded multi-process solve service (see module docstring).

    Parameters
    ----------
    shards:
        Initial worker-process count.
    machine, store_path, and the keyword serving options:
        Forwarded to each worker's inner
        :class:`~repro.serve.server.SolveServer` via
        :class:`~repro.serve.sharding.ShardWorkerConfig`.  ``store_path``
        is a *path* (workers open their own SQLite connections); ``None``
        gives each worker a private in-memory registry.
    pool_slots:
        Shared-memory slots per payload shape — the admission-control
        bound of the sharded tier; ``submit`` raises
        :class:`~repro.serve.batching.Backpressure` when the shape's
        pool is exhausted.
    autoscaler:
        Optional :class:`~repro.serve.sharding.Autoscaler`;
        :meth:`autoscale_tick` then applies its decisions via
        :meth:`resize`.
    clock:
        Injectable clock for front-door latency telemetry.
    """

    def __init__(
        self,
        shards: int = 2,
        machine: str = "intel",
        store_path: str | None = None,
        *,
        workers: int = 2,
        queue_size: int = 128,
        batch_size: int = 8,
        kind: str = "multigrid-v",
        seed: int | None = 0,
        instances: int = 3,
        tune_jobs: int | None = None,
        backend: str = "numpy",
        slo_p99_s: float | None = None,
        slo_window_s: float = 5.0,
        slo_min_samples: int = 8,
        slo_recovery_fraction: float = 0.8,
        slo_degrade_rungs: int = 1,
        pool_slots: int = 32,
        autoscaler: Autoscaler | None = None,
        telemetry: Telemetry | None = None,
        clock: Clock | None = None,
        trace: bool = False,
        tracer: Tracer | NoopTracer | None = None,
        op_span_min_points: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, not {shards}")
        import multiprocessing

        self.clock = clock or MONOTONIC_CLOCK
        self.telemetry = telemetry or Telemetry(
            clock=self.clock, window_s=slo_window_s
        )
        # ``trace=True`` is the one-knob form: a tracer here plus traced
        # workers whose spans ship home in solve replies.  An explicit
        # ``tracer`` overrides the instance (e.g. a ManualClock one).
        if tracer is not None:
            self.tracer: Tracer | NoopTracer = tracer
            trace = trace or tracer.enabled
        else:
            self.tracer = Tracer() if trace else NOOP_TRACER
        self.autoscaler = autoscaler
        self.pool_slots = pool_slots
        self._worker_options = dict(
            machine=machine,
            store_path=store_path,
            workers=workers,
            queue_size=queue_size,
            batch_size=batch_size,
            kind=kind,
            seed=seed,
            instances=instances,
            tune_jobs=tune_jobs,
            backend=backend,
            slo_p99_s=slo_p99_s,
            slo_window_s=slo_window_s,
            slo_min_samples=slo_min_samples,
            slo_recovery_fraction=slo_recovery_fraction,
            slo_degrade_rungs=slo_degrade_rungs,
            trace=trace,
            op_span_min_points=op_span_min_points,
        )
        # Workers hold threads, SQLite handles and shm attachments —
        # spawn, never fork.
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._closed = False
        self._next_id = 0
        self._next_worker_index = 0
        self._workers: dict[int, _WorkerHandle] = {}
        self._pending: dict[int, PendingRequest] = {}
        #: sticky routing: shard key -> worker index
        self._route: dict[str, int] = {}
        self._pools: dict[tuple[int, ...], SlotPool] = {}
        #: consecutive crashes with no successful response in between —
        #: the guard that keeps a systematically failing worker (bad
        #: store path, broken environment) from respawning forever
        self._crash_streak = 0
        self.max_crash_streak = 5
        for _ in range(shards):
            self._spawn_worker()

    # -- client surface ---------------------------------------------------

    def submit(
        self,
        problem: "PoissonProblem",
        target_accuracy: float,
        distribution: str | None = None,
    ) -> "Future[FrontDoorResult]":
        """Route one request to its shard; returns a future.

        Raises :class:`Backpressure` when the payload pool for the
        request's shape has no free slot, and :class:`RuntimeError`
        after :meth:`shutdown`.
        """
        from repro.tuner.dynamic import resolve_distribution

        dist = resolve_distribution(problem, distribution)
        operator = problem.operator.canonical()
        key = shard_key(operator, problem.level, problem.ndim)
        shape = problem.b.shape
        future: "Future[FrontDoorResult]" = Future()
        span: Span | None = None
        if self.tracer.enabled:
            # The front door roots the trace; its context rides the JSON
            # control message so the shard's serve.request span (and
            # everything below it) joins the same tree.
            span = self.tracer.start(
                "frontdoor.request",
                operator=operator,
                level=problem.level,
                distribution=dist,
                shard_key=key,
            )
        with self._lock:
            if self._closed:
                if span is not None:
                    span.set(error="RuntimeError")
                    self.tracer.finish(span)
                raise RuntimeError("front door is shut down")
            handle = self._workers[self._route_key(key)]
            pool = self._pool_for(shape)
            slot = pool.acquire()
            if slot is None:
                self.telemetry.incr("requests_rejected")
                if span is not None:
                    span.set(rejected=True)
                    self.tracer.finish(span)
                raise Backpressure(pool.slots, pool.slots)
            pool.write_payload(slot, problem)
            self._next_id += 1
            rid = self._next_id
            message = {
                "type": "solve",
                "id": rid,
                "pool": pool.name,
                "slot": slot,
                "shape": list(shape),
                "operator": operator,
                "distribution": dist,
                "target": target_accuracy,
            }
            if span is not None:
                span.set(shard=handle.index)
                message["trace"] = span.context().to_dict()
            self._pending[rid] = PendingRequest(
                future=future,
                worker_index=handle.index,
                message=message,
                kind="solve",
                pool_shape=tuple(shape),
                slot=slot,
                submitted_at=self.clock.now(),
                span=span,
            )
            self._send(handle, rid)
        self.telemetry.incr("requests_submitted")
        self._note_inflight()
        return future

    def solve(
        self,
        problem: "PoissonProblem",
        target_accuracy: float,
        distribution: str | None = None,
        timeout: float | None = 120.0,
    ) -> FrontDoorResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(problem, target_accuracy, distribution).result(timeout)

    def warm(
        self,
        distribution: str,
        level: int,
        operator: "OperatorSpec | str | None" = None,
        jobs: int | None = None,
        timeout: float | None = 300.0,
    ) -> dict[str, Any]:
        """Tune-and-cache one workload class on the shard that will
        serve it (synchronous; returns the worker's reply)."""
        from repro.operators.spec import parse_operator

        spec = parse_operator(operator) if operator is not None else None
        canonical = spec.canonical() if spec is not None else "poisson"
        ndim = spec.ndim if spec is not None else 2
        key = shard_key(canonical, level, ndim)
        future: "Future[dict[str, Any]]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("front door is shut down")
            handle = self._workers[self._route_key(key)]
            self._next_id += 1
            rid = self._next_id
            self._pending[rid] = PendingRequest(
                future=future,
                worker_index=handle.index,
                message={
                    "type": "warm",
                    "id": rid,
                    "distribution": distribution,
                    "level": level,
                    "operator": canonical if operator is not None else None,
                    "jobs": jobs,
                },
                kind="control",
                submitted_at=self.clock.now(),
            )
            self._send(handle, rid)
        return future.result(timeout)

    def warm_many(
        self,
        specs: Iterable[tuple[str, int, "OperatorSpec | str | None"]],
        jobs: int | None = None,
    ) -> list[dict[str, Any]]:
        return [self.warm(d, level, op, jobs=jobs) for d, level, op in specs]

    def stats(self) -> dict[str, Any]:
        """Front-door telemetry plus every live shard's snapshot."""
        replies = self._broadcast("stats", timeout=30.0)
        self._note_inflight()
        return {
            "frontdoor": self.telemetry.snapshot(),
            "shards": {
                str(index): reply.get("stats", {})
                for index, reply in sorted(replies.items())
            },
        }

    def wait_for_swaps(self, timeout: float = 30.0) -> bool:
        """True when no shard has a background tune in flight."""
        replies = self._broadcast("wait_swaps", timeout=timeout, extra={
            "timeout": timeout,
        })
        return all(reply.get("ok", False) for reply in replies.values())

    # -- scaling ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        with self._lock:
            return len(self._workers)

    def resize(self, target: int) -> int:
        """Grow or shrink to ``target`` workers; returns the new count.

        Growth spawns fresh workers (new keys will route to them —
        they start with zero routed keys, so least-loaded assignment
        fills them first).  Shrinking retires the highest-index workers:
        each is told to shut down — it drains and answers everything in
        flight before exiting — and its routed keys are unpinned so the
        next request re-routes them to a surviving worker.
        """
        if target < 1:
            raise ValueError(f"target must be >= 1, not {target}")
        retired: list[_WorkerHandle] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("front door is shut down")
            while len(self._workers) < target:
                self._spawn_worker()
            if len(self._workers) > target:
                for index in sorted(self._workers, reverse=True)[
                    : len(self._workers) - target
                ]:
                    handle = self._workers[index]
                    handle.retiring = True
                    retired.append(handle)
                for handle in retired:
                    del self._workers[handle.index]
                    self._route = {
                        key: idx
                        for key, idx in self._route.items()
                        if idx != handle.index
                    }
        for handle in retired:
            try:
                handle.send({"type": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
            handle.process.join(timeout=60.0)
            self.telemetry.incr("workers_retired")
        with self._lock:
            count = len(self._workers)
        self.telemetry.set_gauge("shards", count)
        return count

    def autoscale_tick(self) -> int:
        """Apply one autoscaler decision (no-op without an autoscaler)."""
        with self._lock:
            if self.autoscaler is None or self._closed:
                return len(self._workers)
            stats = [
                ShardStats(
                    inflight=sum(
                        1
                        for p in self._pending.values()
                        if p.worker_index == index and p.kind == "solve"
                    ),
                    p99_s=self.telemetry.window_percentile(
                        f"shard{index}:latency", 0.99
                    ),
                )
                for index in sorted(self._workers)
            ]
        target = self.autoscaler.decide(stats)
        if target != len(stats):
            return self.resize(target)
        return len(stats)

    # -- lifecycle --------------------------------------------------------

    def shutdown(self, timeout: float = 60.0) -> None:
        """Stop every worker, fail what could not drain, free the shm."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
            for handle in handles:
                handle.retiring = True
        for handle in handles:
            try:
                handle.send({"type": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)
            handle.conn.close()
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            pools = list(self._pools.values())
            self._pools.clear()
            self._workers.clear()
        for pending in leftovers:
            if not pending.future.done():  # pragma: no cover - drain failed
                pending.future.set_exception(
                    RuntimeError("front door shut down before a response")
                )
        for pool in pools:
            pool.close()

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- internals --------------------------------------------------------

    def _route_key(self, key: str) -> int:
        """Sticky least-loaded assignment (callers hold the lock)."""
        index = self._route.get(key)
        if index is not None and index in self._workers:
            return index
        loads = {i: 0 for i in self._workers}
        for idx in self._route.values():
            if idx in loads:
                loads[idx] += 1
        index = min(loads, key=lambda i: (loads[i], i))
        self._route[key] = index
        return index

    def _release_pending_slot(self, pending: PendingRequest) -> None:
        """Return a failed request's slot to its pool (lock held)."""
        if pending.kind != "solve" or pending.slot is None:
            return
        pool = self._pools.get(pending.pool_shape or ())
        if pool is not None:
            pool.release(pending.slot)

    def _pool_for(self, shape: tuple[int, ...]) -> SlotPool:
        pool = self._pools.get(tuple(shape))
        if pool is None:
            pool = self._pools[tuple(shape)] = SlotPool(
                tuple(shape), slots=self.pool_slots
            )
        return pool

    def _send(self, handle: _WorkerHandle, rid: int) -> None:
        """Send pending message ``rid`` to ``handle`` (callers hold the
        lock; a dead pipe is handled by the reader's EOF path)."""
        pending = self._pending[rid]
        try:
            handle.send(pending.message)
        except (BrokenPipeError, OSError):
            # The reader thread will see EOF and resubmit this rid along
            # with everything else in flight on the dead worker.
            pass

    def _spawn_worker(self) -> _WorkerHandle:
        """Start one shard worker (callers hold the lock)."""
        index = self._next_worker_index
        self._next_worker_index += 1
        config = ShardWorkerConfig(index=index, **self._worker_options)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(config, child_conn),
            name=f"serve-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent's copy; child keeps its own
        handle = _WorkerHandle(index, process, parent_conn)
        handle.reader = threading.Thread(
            target=self._reader_loop,
            args=(handle,),
            name=f"serve-shard-reader-{index}",
            daemon=True,
        )
        self._workers[index] = handle
        handle.reader.start()
        self.telemetry.incr("workers_spawned")
        self.telemetry.set_gauge("shards", len(self._workers))
        return handle

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        """Drain one worker's responses until EOF; then recover.

        The OS pipe preserves everything the worker wrote before dying,
        so by the time EOF is observed every response the worker *did*
        send has been dispatched — what remains pending on this worker
        is exactly the set of unanswered requests.
        """
        while True:
            try:
                msg = decode_message(handle.conn.recv_bytes())
            except (EOFError, OSError):
                break
            if msg.get("type") == "bye":
                continue
            self._dispatch(handle, msg)
        if not handle.retiring:
            self._recover_worker(handle)

    def _dispatch(self, handle: _WorkerHandle, msg: dict[str, Any]) -> None:
        rid = msg.get("id")
        with self._lock:
            pending = self._pending.pop(rid, None)
            self._crash_streak = 0  # the tier is answering
        if pending is None:
            # Already answered (e.g. resubmitted to a replacement worker
            # and both copies came back) — count it, never resolve twice.
            self.telemetry.incr("duplicate_responses")
            return
        kind = msg.get("type")
        if pending.kind == "solve":
            solution: np.ndarray | None = None
            with self._lock:
                pool = self._pools.get(pending.pool_shape or ())
                if pool is not None and pending.slot is not None:
                    if kind == "result":
                        solution = pool.read_solution(pending.slot)
                    pool.release(pending.slot)
            latency = self.clock.now() - pending.submitted_at
            trace_id: str | None = None
            if pending.span is not None:
                # Merge the worker-side spans (shipped in the reply as
                # JSON) into the front door's sink, then close the root:
                # one sink now holds the whole correlated tree.
                trace_id = pending.span.trace_id
                if self.tracer.enabled and self.tracer.sink is not None:
                    for span_dict in msg.get("spans", []):
                        self.tracer.sink.emit(span_from_dict(span_dict))
                if kind != "result":
                    pending.span.set(error=msg.get("error", "unexpected reply"))
                pending.span.set(resubmits=pending.resubmits)
                self.tracer.finish(pending.span)
            if kind == "result" and solution is not None:
                self.telemetry.observe_windowed(
                    f"shard{handle.index}:latency", latency
                )
                self.telemetry.observe_windowed("request_latency", latency)
                self.telemetry.incr("requests_completed")
                pending.future.set_result(
                    FrontDoorResult(
                        solution=solution,
                        plan_source=msg.get("plan_source", "unknown"),
                        generation=msg.get("generation", 0),
                        stale=msg.get("stale", False),
                        batch_size=msg.get("batch_size", 1),
                        latency_s=latency,
                        solve_latency_s=msg.get("solve_latency_s", 0.0),
                        shard=handle.index,
                        trace_id=trace_id,
                    )
                )
            else:
                self.telemetry.incr("requests_failed")
                detail = msg.get("error", f"unexpected reply {kind!r}")
                pending.future.set_exception(RuntimeError(detail))
            self._note_inflight()
        else:
            pending.future.set_result(msg)

    def _recover_worker(self, handle: _WorkerHandle) -> None:
        """Respawn a crashed shard and resubmit its unanswered work."""
        handle.process.join(timeout=5.0)
        self.telemetry.incr("worker_crashes")
        with self._lock:
            if self._closed or self._workers.get(handle.index) is not handle:
                return
            del self._workers[handle.index]
            orphaned = [
                (rid, p)
                for rid, p in self._pending.items()
                if p.worker_index == handle.index
            ]
            self._crash_streak += 1
            if self._crash_streak > self.max_crash_streak:
                # Workers are dying faster than they answer — respawning
                # again would loop forever.  Fail what this worker owed;
                # surviving shards keep serving their own keys.
                for rid, pending in orphaned:
                    del self._pending[rid]
                    self._release_pending_slot(pending)
                    pending.future.set_exception(
                        RuntimeError(
                            f"shard worker {handle.index} crashed "
                            f"{self._crash_streak} times in a row; giving up"
                        )
                    )
                self.telemetry.incr("requests_failed", len(orphaned))
                return
            replacement = self._spawn_worker()
            self._route = {
                key: (replacement.index if idx == handle.index else idx)
                for key, idx in self._route.items()
            }
            for rid, pending in orphaned:
                pending.worker_index = replacement.index
                pending.resubmits += 1
                self._send(replacement, rid)
        self.telemetry.incr("worker_restarts")
        self.telemetry.incr("requests_resubmitted", len(orphaned))
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _broadcast(
        self,
        msg_type: str,
        timeout: float,
        extra: Mapping[str, Any] | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Send one control message to every worker; gather replies."""
        futures: dict[int, "Future[dict[str, Any]]"] = {}
        with self._lock:
            if self._closed:
                raise RuntimeError("front door is shut down")
            for index, handle in self._workers.items():
                self._next_id += 1
                rid = self._next_id
                future: "Future[dict[str, Any]]" = Future()
                self._pending[rid] = PendingRequest(
                    future=future,
                    worker_index=index,
                    message={"type": msg_type, "id": rid, **(extra or {})},
                    kind="control",
                    submitted_at=self.clock.now(),
                )
                futures[index] = future
                self._send(handle, rid)
        return {index: future.result(timeout) for index, future in futures.items()}

    def _note_inflight(self) -> None:
        with self._lock:
            by_worker: dict[int, int] = {i: 0 for i in self._workers}
            total = 0
            for pending in self._pending.values():
                if pending.kind != "solve":
                    continue
                total += 1
                if pending.worker_index in by_worker:
                    by_worker[pending.worker_index] += 1
        self.telemetry.set_gauge("inflight", total)
        for index, count in by_worker.items():
            self.telemetry.set_gauge(f"shard{index}:inflight", count)
