"""Serving telemetry: latency histograms, cache counters, swap events.

The solve server's hot path is request latency, not tune time, so the
metrics of record change with it: percentile latency (p50/p95/p99),
cache hit/miss/fallback counters, queue depth, and plan hot-swap
events.  Everything here is cheap enough to sit on the request path —
histogram recording is one bisect plus one increment under a lock —
and the whole state exports as JSON for dashboards or CI artifacts.

Since the observability PR, the primitives live in
:mod:`repro.obs.metrics`: every counter, gauge, and histogram here is a
handle minted from a :class:`~repro.obs.metrics.MetricsRegistry` (one
per :class:`Telemetry` by default, or a shared one passed in), so the
same metrics are visible to the unified Prometheus exporter.  The JSON
``snapshot()`` shape is unchanged — byte-compatible with every earlier
release — and is regression-tested against a hand-rolled baseline.

Two latency views coexist.  :class:`LatencyHistogram` is cumulative —
the whole lifetime of the server — which is the right record for a
benchmark report.  :class:`SlidingWindow` is *recent* — only the
samples inside the last ``window_s`` seconds count — which is the only
view an SLO controller may act on: a breach must clear again once the
slow samples age out, and a cumulative histogram never forgets.
Windows read time from the telemetry's injected clock, so SLO tests
drive them deterministically with a ``ManualClock``.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Any, Deque

from repro.obs.metrics import PERCENTILES as PERCENTILES
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_bounds,
)
from repro.util.clock import MONOTONIC_CLOCK, Clock

__all__ = ["LatencyHistogram", "SlidingWindow", "SwapEvent", "Telemetry"]


def _default_bounds() -> tuple[float, ...]:
    """Geometric bucket bounds (now shared via :mod:`repro.obs.metrics`)."""
    return default_bounds()


class LatencyHistogram(Histogram):
    """Fixed-bucket latency histogram with percentile estimation.

    The implementation is :class:`repro.obs.metrics.Histogram` — values
    are durations in seconds, percentiles interpolate to the geometric
    midpoint of the selected bucket, estimates are stable under merge
    and never exceed the observed maximum by more than one bucket
    width.  Not thread-safe on its own; :class:`Telemetry` serializes
    access.
    """


class SlidingWindow:
    """Exact percentiles over the samples of the last ``window_s`` seconds.

    Samples are (timestamp, value) pairs; every read first drops pairs
    older than the window, so a quiet period genuinely empties the
    window.  Percentiles sort the live samples — windows are bounded by
    ``max_samples`` (oldest evicted first), so the sort stays cheap even
    under sustained load.  Not thread-safe on its own;
    :class:`Telemetry` serializes access.
    """

    def __init__(self, window_s: float = 5.0, max_samples: int = 2048) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be > 0 seconds, not {window_s}")
        self.window_s = float(window_s)
        self._samples: Deque[tuple[float, float]] = deque(maxlen=max_samples)

    def record(self, now: float, value: float) -> None:
        if value < 0:
            raise ValueError(f"sample must be >= 0, not {value}")
        self._samples.append((now, value))

    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def count(self, now: float) -> int:
        self._trim(now)
        return len(self._samples)

    def percentile(self, now: float, q: float) -> float:
        """Exact quantile ``q`` of the live samples (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], not {q}")
        self._trim(now)
        if not self._samples:
            return 0.0
        values = sorted(v for _, v in self._samples)
        rank = max(0, min(len(values) - 1, math.ceil(q * len(values)) - 1))
        return values[rank]

    def to_dict(self, now: float) -> dict[str, Any]:
        return {
            "window_s": self.window_s,
            "count": self.count(now),
            "p50_s": self.percentile(now, 0.50),
            "p95_s": self.percentile(now, 0.95),
            "p99_s": self.percentile(now, 0.99),
        }


class SwapEvent:
    """One atomic plan replacement in the cache (telemetry record)."""

    __slots__ = ("seq", "key", "old_source", "new_source", "generation", "stale_served")

    def __init__(
        self,
        seq: int,
        key: str,
        old_source: str,
        new_source: str,
        generation: int,
        stale_served: int,
    ) -> None:
        self.seq = seq
        self.key = key
        self.old_source = old_source
        self.new_source = new_source
        self.generation = generation
        self.stale_served = stale_served

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "key": self.key,
            "old_source": self.old_source,
            "new_source": self.new_source,
            "generation": self.generation,
            "stale_served": self.stale_served,
        }


class Telemetry:
    """Thread-safe metric facade for one serving runtime.

    Counters (monotonic ints), gauges (last-write-wins floats), named
    latency histograms, named sliding windows (recent-percentile view
    for SLO control), and a bounded log of plan swap events.  A
    :meth:`snapshot` is a plain dict — JSON-serializable as-is — taken
    under the lock, so it is internally consistent.

    The counters, gauges, and histograms are handles on a
    :class:`~repro.obs.metrics.MetricsRegistry` (a private one unless
    ``registry`` is passed), so a process-wide registry sees serving
    metrics alongside everything else; the snapshot shape is unchanged.

    ``clock`` timestamps window samples and window reads; the default
    real clock is right for production, tests inject a
    :class:`~repro.util.clock.ManualClock` so "five seconds later"
    is an ``advance(5)`` call, not a sleep.
    """

    def __init__(
        self,
        max_events: int = 256,
        clock: Clock | None = None,
        window_s: float = 5.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock or MONOTONIC_CLOCK
        self.window_s = window_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._windows: dict[str, SlidingWindow] = {}
        self._events: Deque[SwapEvent] = deque(maxlen=max_events)
        self._seq = 0

    # -- registry plumbing -------------------------------------------------

    def _counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = self.registry.counter(name)
        return metric

    def _gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = self.registry.gauge(name)
        return metric

    def _histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = self.registry.histogram(name)
        return metric

    # -- recording --------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counter(name).inc(by)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._histogram(name).record(seconds)

    def observe_windowed(
        self, name: str, seconds: float, window_s: float | None = None
    ) -> None:
        """Record into the cumulative histogram *and* the sliding window.

        One call keeps the two latency views in step: benchmarks read
        the histogram, the SLO controller reads the window.
        """
        now = self.clock.now()
        with self._lock:
            self._histogram(name).record(seconds)
            window = self._windows.get(name)
            if window is None:
                window = self._windows[name] = SlidingWindow(
                    window_s if window_s is not None else self.window_s
                )
            window.record(now, seconds)

    def window_percentile(self, name: str, q: float) -> float:
        """Recent quantile ``q`` for window ``name`` (0.0 when unknown)."""
        now = self.clock.now()
        with self._lock:
            window = self._windows.get(name)
            return window.percentile(now, q) if window is not None else 0.0

    def window_count(self, name: str) -> int:
        """Live sample count for window ``name`` (0 when unknown)."""
        now = self.clock.now()
        with self._lock:
            window = self._windows.get(name)
            return window.count(now) if window is not None else 0

    def swap_event(
        self,
        key: str,
        old_source: str,
        new_source: str,
        generation: int,
        stale_served: int = 0,
    ) -> SwapEvent:
        with self._lock:
            self._seq += 1
            event = SwapEvent(
                self._seq, key, old_source, new_source, generation, stale_served
            )
            self._events.append(event)
            self._counter("plan_swaps").inc()
            return event

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            metric = self._counters.get(name)
            return metric.value if metric is not None else 0

    def gauge(self, name: str) -> float:
        with self._lock:
            metric = self._gauges.get(name)
            return metric.value if metric is not None else 0.0

    def percentile(self, histogram: str, q: float) -> float:
        with self._lock:
            hist = self._histograms.get(histogram)
            return hist.percentile(q) if hist is not None else 0.0

    @property
    def swap_events(self) -> list[SwapEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict[str, Any]:
        """A consistent, JSON-serializable view of every metric."""
        now = self.clock.now()
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "latency": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "windows": {
                    name: window.to_dict(now)
                    for name, window in sorted(self._windows.items())
                },
                "swap_events": [e.to_dict() for e in self._events],
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
