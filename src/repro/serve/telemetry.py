"""Serving telemetry: latency histograms, cache counters, swap events.

The solve server's hot path is request latency, not tune time, so the
metrics of record change with it: percentile latency (p50/p95/p99),
cache hit/miss/fallback counters, queue depth, and plan hot-swap
events.  Everything here is cheap enough to sit on the request path —
histogram recording is one bisect plus one increment under a lock —
and the whole state exports as JSON for dashboards or CI artifacts.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Deque

__all__ = ["LatencyHistogram", "SwapEvent", "Telemetry"]

#: Default percentiles reported by snapshots.
PERCENTILES = (0.50, 0.95, 0.99)


def _default_bounds() -> tuple[float, ...]:
    """Geometric bucket upper bounds from 1 microsecond to ~1000 s.

    Nine decades at 8 buckets/decade keeps relative error per bucket
    under ~33% — plenty for tail-latency reporting — with 72 buckets.
    """
    return tuple(1e-6 * 10 ** (i / 8) for i in range(1, 73))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Values are durations in seconds.  Percentiles interpolate to the
    geometric midpoint of the selected bucket, so estimates are stable
    under merge and never exceed the observed maximum by more than one
    bucket width.  Not thread-safe on its own; :class:`Telemetry`
    serializes access.
    """

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        self.bounds = bounds if bounds is not None else _default_bounds()
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, not {seconds}")
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` in [0, 1] (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], not {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i >= len(self.bounds):
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else self.bounds[i] / 10
                return min(math.sqrt(lo * self.bounds[i]), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    def to_dict(self, percentiles: tuple[float, ...] = PERCENTILES) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "mean_s": self.mean,
            "max_s": self.max,
        }
        for q in percentiles:
            out[f"p{int(round(q * 100))}_s"] = self.percentile(q)
        return out


class SwapEvent:
    """One atomic plan replacement in the cache (telemetry record)."""

    __slots__ = ("seq", "key", "old_source", "new_source", "generation", "stale_served")

    def __init__(
        self,
        seq: int,
        key: str,
        old_source: str,
        new_source: str,
        generation: int,
        stale_served: int,
    ) -> None:
        self.seq = seq
        self.key = key
        self.old_source = old_source
        self.new_source = new_source
        self.generation = generation
        self.stale_served = stale_served

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "key": self.key,
            "old_source": self.old_source,
            "new_source": self.new_source,
            "generation": self.generation,
            "stale_served": self.stale_served,
        }


class Telemetry:
    """Thread-safe metric registry for one serving runtime.

    Counters (monotonic ints), gauges (last-write-wins floats), named
    latency histograms, and a bounded log of plan swap events.  A
    :meth:`snapshot` is a plain dict — JSON-serializable as-is — taken
    under the lock, so it is internally consistent.
    """

    def __init__(self, max_events: int = 256) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._events: Deque[SwapEvent] = deque(maxlen=max_events)
        self._seq = 0

    # -- recording --------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = LatencyHistogram()
            hist.record(seconds)

    def swap_event(
        self,
        key: str,
        old_source: str,
        new_source: str,
        generation: int,
        stale_served: int = 0,
    ) -> SwapEvent:
        with self._lock:
            self._seq += 1
            event = SwapEvent(
                self._seq, key, old_source, new_source, generation, stale_served
            )
            self._events.append(event)
            self._counters["plan_swaps"] = self._counters.get("plan_swaps", 0) + 1
            return event

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def percentile(self, histogram: str, q: float) -> float:
        with self._lock:
            hist = self._histograms.get(histogram)
            return hist.percentile(q) if hist is not None else 0.0

    @property
    def swap_events(self) -> list[SwapEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict[str, Any]:
        """A consistent, JSON-serializable view of every metric."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "latency": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "swap_events": [e.to_dict() for e in self._events],
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
