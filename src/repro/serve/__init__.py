"""Solve-service runtime: batched, cache-warmed serving with background
tuning.

The paper's operational model — tune once, reuse the stored
configuration — becomes a serving layer here: a :class:`SolveServer`
admits requests into a bounded queue, micro-batches them per workload
class, serves cold classes instantly from the heuristic fallback while
a background DP tune hot-swaps the real plan in (**stale-while-tune**),
and exports latency/cache/swap telemetry as JSON.

Quickstart::

    from repro import core
    with core.open_server(machine="intel", workers=2) as server:
        server.warm("unbiased", level=5)
        result = server.solve(core.poisson_problem("unbiased", n=33), 1e5)
        print(result.plan_source, server.stats()["counters"])
"""

from repro.serve.batching import Backpressure, RequestQueue
from repro.serve.cache import CacheEntry, PlanCache, ServeKey
from repro.serve.loadgen import run_load
from repro.serve.server import ServeResult, SolveRequest, SolveServer
from repro.serve.telemetry import LatencyHistogram, SwapEvent, Telemetry

__all__ = [
    "Backpressure",
    "CacheEntry",
    "LatencyHistogram",
    "PlanCache",
    "RequestQueue",
    "ServeKey",
    "ServeResult",
    "SolveRequest",
    "SolveServer",
    "SwapEvent",
    "Telemetry",
    "run_load",
]
