"""Solve-service runtime: batched, cache-warmed serving with background
tuning — single-process or horizontally sharded.

The paper's operational model — tune once, reuse the stored
configuration — becomes a serving layer here.  In one process, a
:class:`SolveServer` admits requests into a bounded queue, micro-batches
them per workload class, serves cold classes instantly from the
heuristic fallback while a background DP tune hot-swaps the real plan in
(**stale-while-tune**), degrades to a lower-accuracy plan when a class's
windowed p99 breaches its SLO (**SLO-driven plan selection**, reverting
on recovery), and exports latency/cache/swap telemetry as JSON.

Scaled out, a :class:`~repro.serve.frontdoor.FrontDoor` routes requests
by (operator, level, ndim) across N shard-worker processes
(:mod:`repro.serve.sharding`), moving grid payloads through
shared-memory slot pools (:mod:`repro.serve.shm`) so no array is ever
pickled on the hot path, surviving worker crashes by resubmitting
exactly the unanswered requests, and optionally resizing the tier with
an :class:`~repro.serve.sharding.Autoscaler`.

Modules: :mod:`~repro.serve.server` (the in-process serving loop),
:mod:`~repro.serve.cache` (plan cache + SLO degrade/restore),
:mod:`~repro.serve.batching` (bounded queue, micro-batches),
:mod:`~repro.serve.telemetry` (histograms, sliding windows, swap log),
:mod:`~repro.serve.shm` (zero-copy payload transport),
:mod:`~repro.serve.sharding` (shard workers, codec, autoscaler),
:mod:`~repro.serve.frontdoor` (multi-process routing tier),
:mod:`~repro.serve.loadgen` (seeded closed-loop traffic).

Quickstart::

    from repro import core
    with core.open_server(machine="intel", workers=2) as server:
        server.warm("unbiased", level=5)
        result = server.solve(core.poisson_problem("unbiased", n=33), 1e5)
        print(result.plan_source, server.stats()["counters"])

    # sharded: same calls, N processes behind a front door
    with core.open_server(shards=4) as door:
        door.warm("unbiased", level=5)
        result = door.solve(core.poisson_problem("unbiased", n=33), 1e5)
"""

from repro.serve.batching import Backpressure, RequestQueue
from repro.serve.cache import CacheEntry, PlanCache, ServeKey
from repro.serve.frontdoor import FrontDoor, FrontDoorResult
from repro.serve.loadgen import run_load
from repro.serve.server import ServeResult, SolveRequest, SolveServer
from repro.serve.sharding import Autoscaler, ShardWorkerConfig, shard_key
from repro.serve.shm import SlotPool
from repro.serve.telemetry import (
    LatencyHistogram,
    SlidingWindow,
    SwapEvent,
    Telemetry,
)

__all__ = [
    "Autoscaler",
    "Backpressure",
    "CacheEntry",
    "FrontDoor",
    "FrontDoorResult",
    "LatencyHistogram",
    "PlanCache",
    "RequestQueue",
    "ServeKey",
    "ServeResult",
    "ShardWorkerConfig",
    "SlidingWindow",
    "SlotPool",
    "SolveRequest",
    "SolveServer",
    "SwapEvent",
    "Telemetry",
    "run_load",
    "shard_key",
]
