"""The serving plan cache: in-memory layer over the plan registry.

Entries are keyed per (machine fingerprint, operator, level,
distribution) — the identity of a serving workload class — and hold an
immutable :class:`CacheEntry` so readers never see a half-updated plan:
a hot swap replaces the whole entry atomically under the cache lock.

The cache implements the **stale-while-tune** contract the server
builds on:

* a warm key serves its cached plan with a dict lookup;
* a key the registry knows (exact fingerprint or nearest profile) is
  pulled in on first touch;
* a genuinely cold key is served *immediately* from the paper's fixed
  heuristic (:func:`repro.tuner.heuristics.tune_heuristic` — seconds,
  not the minutes-scale DP pass), and the entry is marked ``stale`` so
  the server schedules a background DP tune whose result hot-swaps in.

Hot swaps are no longer cold-key-only: the SLO loop calls
:meth:`PlanCache.degrade` when a workload class's windowed p99 breaches
its target — the entry is atomically replaced by a faster-but-coarser
variant (the tuned plan with its accuracy ladder capped below the top
rung) — and :meth:`PlanCache.restore` swaps the full-accuracy plan back
once the window recovers.  Both swaps are stamped into the trial log
with ``serve_swap`` provenance, exactly like stale-while-tune swaps.

The warm-hit path is lock-free: entries live in a dict that is only
ever inserted into or atomically replaced (never deleted from), so a
hit is a plain GIL-safe dict read plus a per-entry counter touch.
Registry misses and background tunes contend on per-key build locks and
the registry's own DB lock — never with warm-key readers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

from repro.machines.profile import MachineProfile
from repro.obs.trace import NOOP_TRACER, NoopTracer, Tracer
from repro.operators.spec import OperatorSpec, parse_operator
from repro.serve.telemetry import Telemetry
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.registry import PlanRegistry, TuneKey

__all__ = ["CacheEntry", "PlanCache", "ServeKey"]


@dataclass(frozen=True)
class ServeKey:
    """Identity of one serving workload class (a cache bucket).

    ``ndim`` defaults to the operator family's dimensionality; passing
    it explicitly must agree (a 3-D workload class can never collide
    with a 2-D one — the operator name alone already separates them,
    the field makes the identity self-describing).  ``backend`` is the
    kernel backend plans for this class are tuned against; the default
    keeps pre-backend keys (and their labels) unchanged.
    """

    fingerprint: str
    operator: str
    level: int
    distribution: str
    ndim: int | None = None
    backend: str = "numpy"

    def __post_init__(self) -> None:
        spec = parse_operator(self.operator)
        object.__setattr__(self, "operator", spec.canonical())
        if self.ndim is None:
            object.__setattr__(self, "ndim", spec.ndim)
        elif self.ndim != spec.ndim:
            raise ValueError(
                f"ndim={self.ndim} does not match operator "
                f"{spec.canonical()!r} (a {spec.ndim}-D family)"
            )

    def label(self) -> str:
        """Compact human-readable form (telemetry event key)."""
        base = f"{self.fingerprint}/{self.operator}/L{self.level}/{self.distribution}"
        if self.backend != "numpy":
            base += f"@{self.backend}"
        return base


@dataclass(frozen=True)
class CacheEntry:
    """One immutable cached plan.

    ``source`` records provenance: ``exact``/``nearest``/``tuned`` come
    from the registry (same meaning as
    :class:`~repro.store.registry.RegistryHit`), ``fallback`` is the
    heuristic stand-in, ``swapped`` a background tune that replaced a
    fallback.  ``stale`` marks entries awaiting a background tune;
    ``generation`` increments on every swap so tests and telemetry can
    observe replacement without comparing plan objects.
    """

    plan: TunedVPlan | TunedFullMGPlan
    source: str
    generation: int = 0
    stale: bool = False
    plan_json: str | None = None
    #: True while this entry is the SLO-degraded stand-in for a tuned plan
    degraded: bool = False
    #: highest accuracy-ladder index this entry may serve (None = no cap);
    #: set on SLO-degraded entries so every request pays for one fewer rung
    accuracy_cap: int | None = None
    #: requests served from this entry (mutable cell; the entry itself
    #: stays frozen so concurrent readers always see a coherent plan)
    served: list[int] = field(default_factory=lambda: [0], compare=False)
    #: guards ``served`` — per-entry, so counting a hit never contends
    #: with the cache-wide lock the miss/swap paths use
    count_lock: threading.Lock = field(
        default_factory=threading.Lock, compare=False, repr=False
    )

    def serve_count(self) -> int:
        return self.served[0]

    def note_served(self, count: int = 1) -> None:
        with self.count_lock:
            self.served[0] += count


class PlanCache:
    """Per-workload-class plan cache with stale-while-tune semantics.

    One cache serves any number of machines; the machine fingerprint is
    part of the key.  The tuning configuration (kind, accuracy ladder,
    seed, training instances) is fixed per cache — it parameterizes the
    registry :class:`~repro.store.registry.TuneKey` every bucket maps
    to.
    """

    def __init__(
        self,
        registry: "PlanRegistry",
        kind: str = "multigrid-v",
        accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
        seed: int | None = 0,
        instances: int = 3,
        allow_nearest: bool = True,
        telemetry: Telemetry | None = None,
        backend: str = "numpy",
        tracer: Tracer | NoopTracer | None = None,
        model_fallback: bool = False,
    ) -> None:
        from repro.kernels import resolve_backend

        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.registry = registry
        self.kind = kind
        self.accuracies = tuple(accuracies)
        self.seed = seed
        self.instances = instances
        self.allow_nearest = allow_nearest
        #: cold keys try a model-predicted plan (the budgeted BO search
        #: warm-started from the store, :mod:`repro.modeltuner`) before
        #: the fixed heuristic; the entry is still stale, so the
        #: background DP tune swaps in the exact plan as usual
        self.model_fallback = model_fallback
        # Resolved once at construction ("auto" -> whatever this host
        # can actually run), so every key this cache mints is concrete.
        self.backend = resolve_backend(backend)
        self.telemetry = telemetry or Telemetry()
        self._lock = threading.Lock()
        self._entries: dict[ServeKey, CacheEntry] = {}
        # Full-accuracy entries parked while their key is SLO-degraded,
        # so recovery restores exactly the plan that was serving before.
        self._preswap: dict[ServeKey, CacheEntry] = {}
        # Per-key build locks so a thundering herd on one cold key tunes
        # the heuristic once, without serializing unrelated keys.
        # (Registry access needs no extra locking here: PlanRegistry
        # serializes its database touches on the TrialDB lock.)
        self._build_locks: dict[ServeKey, threading.Lock] = {}

    # -- keys -------------------------------------------------------------

    def key_for(
        self,
        profile: MachineProfile,
        operator: OperatorSpec | str | None,
        level: int,
        distribution: str,
    ) -> ServeKey:
        return ServeKey(
            fingerprint=profile.fingerprint(),
            operator=parse_operator(operator).canonical(),
            level=level,
            distribution=distribution,
            backend=self.backend,
        )

    def tune_key(self, key: ServeKey) -> "TuneKey":
        """The registry tuning key a cache bucket maps to."""
        from repro.store.registry import TuneKey

        return TuneKey(
            kind=self.kind,
            distribution=key.distribution,
            max_level=key.level,
            accuracies=self.accuracies,
            seed=self.seed,
            instances=self.instances,
            operator=key.operator,
            backend=key.backend,
        )

    # -- lookups ----------------------------------------------------------

    def lookup(self, key: ServeKey) -> CacheEntry | None:
        """The in-memory entry for ``key`` (no registry fallthrough).

        Lock-free for the same reason the hit path is: the entry dict
        only ever grows or has values atomically replaced.
        """
        return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[ServeKey]:
        with self._lock:
            return list(self._entries)

    def get_or_fallback(
        self, profile: MachineProfile, key: ServeKey, count: int = 1
    ) -> CacheEntry:
        """Serve ``key`` without ever blocking on a DP tune.

        Memory hit -> registry hit (exact, then nearest profile) ->
        heuristic fallback, in that order.  The returned entry's
        ``stale`` flag tells the caller a background tune is owed.
        ``count`` is how many requests this lookup serves (batched
        callers pass the batch size so serve counts and hit counters
        stay per-request).

        The warm-hit path takes **no cache-wide lock**: ``_entries`` is
        insert/replace-only (never shrunk), so the dict read is
        GIL-atomic and a hit touches only the entry's own counter lock.
        Concurrent misses — which can hold a per-key build lock through
        a registry lookup or a heuristic tune — therefore never block a
        warm-key reader (regression-tested in tests/serve).
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.note_served(count)
            self.telemetry.incr("cache_hits", count)
            self._trace_decision(key, "hit", entry)
            return entry
        with self._lock:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            # Double-check: another thread may have populated the bucket
            # while this one waited on the build lock.
            entry = self._entries.get(key)
            if entry is not None:
                entry.note_served(count)
                self.telemetry.incr("cache_hits", count)
                self._trace_decision(key, "hit", entry)
                return entry
            self.telemetry.incr("cache_misses", count)
            entry = self._load(profile, key)
            with self._lock:
                entry = self._entries.setdefault(key, entry)
            entry.note_served(count)
            self._trace_decision(key, "miss", entry)
            return entry

    def _trace_decision(self, key: ServeKey, decision: str, entry: CacheEntry) -> None:
        """Emit one zero-duration plan-cache decision span (tracing on).

        Parents to the context-local current span — the server activates
        the batch span around its lookup — so the decision lands inside
        the request's tree: ``... -> serve.batch -> plan_cache.decision``.
        """
        if self.tracer.enabled:
            self.tracer.event(
                "plan_cache.decision",
                key=key.label(),
                decision=decision,
                source=entry.source,
                stale=entry.stale,
                generation=entry.generation,
                degraded=entry.degraded,
            )

    def _load(self, profile: MachineProfile, key: ServeKey) -> CacheEntry:
        hit = self.registry.get(
            profile, self.tune_key(key), allow_nearest=self.allow_nearest
        )
        if hit is not None:
            self.telemetry.incr(f"registry_{hit.source}")
            return CacheEntry(
                plan=hit.plan, source=hit.source, plan_json=hit.plan_json
            )
        self.telemetry.incr("fallback_builds")
        return CacheEntry(
            plan=self._fallback_plan(profile, key), source="fallback", stale=True
        )

    def _fallback_plan(
        self, profile: MachineProfile, key: ServeKey
    ) -> TunedVPlan | TunedFullMGPlan:
        """A stand-in plan served while the real tune runs in background.

        With ``model_fallback`` on, the first try is a model-predicted
        plan — the budgeted BO search priced by the cost model fitted
        from the store's accumulated trials — which beats the fixed
        heuristic whenever the store has evidence; the heuristic remains
        the last resort (and the only path when the model tuner fails
        for any reason, since a fallback build must never take serving
        down).
        """
        if self.model_fallback:
            try:
                plan = self._model_fallback_plan(profile, key)
            except Exception:
                self.telemetry.incr("model_fallback_errors")
            else:
                self.telemetry.incr("model_fallback_builds")
                plan.metadata["serve_fallback"] = True
                return plan
        return self._heuristic_fallback_plan(profile, key)

    def _model_fallback_plan(
        self, profile: MachineProfile, key: ServeKey
    ) -> TunedVPlan | TunedFullMGPlan:
        from repro.modeltuner.warmstart import model_plan_for_key

        return model_plan_for_key(self.registry, profile, self.tune_key(key))

    def _heuristic_fallback_plan(
        self, profile: MachineProfile, key: ServeKey
    ) -> TunedVPlan:
        """The paper's fixed heuristic, trained for this workload class.

        Strategy 10^final (recursion pinned to the ladder's top
        accuracy) is the strongest of the Figure 7 heuristics and needs
        no per-level accuracy search, so it trains in a fraction of the
        DP's time — cheap enough to serve a cold key's first request.
        """
        from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
        from repro.tuner.timing import CostModelTiming
        from repro.tuner.training import TrainingData

        final = len(self.accuracies) - 1
        plan = tune_heuristic(
            HeuristicStrategy(sub_index=final, final_index=final),
            max_level=key.level,
            accuracies=self.accuracies,
            training=TrainingData(
                distribution=key.distribution,
                instances=self.instances,
                seed=self.seed,
                operator=key.operator,
            ),
            timing=CostModelTiming(profile),
        )
        plan.metadata["serve_fallback"] = True
        return plan

    # -- warmup and swap --------------------------------------------------

    def warm(
        self,
        profile: MachineProfile,
        distribution: str,
        level: int,
        operator: OperatorSpec | str | None = None,
        jobs: int | None = None,
    ) -> CacheEntry:
        """Synchronously ensure a *tuned* plan is cached for this class.

        Runs the registry's get-or-tune (the DP on a cold store), so a
        warmed key never serves the heuristic fallback.  Idempotent:
        warming an already-fresh key is a no-op lookup.
        """
        key = self.key_for(profile, operator, level, distribution)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not entry.stale:
                return entry
        hit = self.registry.get_or_tune(
            profile, self.tune_key(key), allow_nearest=self.allow_nearest, jobs=jobs
        )
        self.telemetry.incr("warmed_keys")
        entry = CacheEntry(plan=hit.plan, source=hit.source, plan_json=hit.plan_json)
        return self._install(key, entry)

    def warm_many(
        self,
        profile: MachineProfile,
        specs: Iterable[tuple[str, int, "OperatorSpec | str | None"]],
        jobs: int | None = None,
    ) -> list[CacheEntry]:
        """Warm a batch of (distribution, level, operator) classes."""
        return [
            self.warm(profile, dist, level, operator, jobs=jobs)
            for dist, level, operator in specs
        ]

    def swap(
        self,
        key: ServeKey,
        plan: TunedVPlan | TunedFullMGPlan,
        source: str = "swapped",
        plan_json: str | None = None,
    ) -> CacheEntry:
        """Atomically replace the entry for ``key`` with a tuned plan.

        Readers that already hold the old entry keep solving with it
        (entries are immutable — no torn plans); the next lookup sees
        the new one.  Returns the installed entry.
        """
        with self._lock:
            old = self._entries.get(key)
            generation = (old.generation + 1) if old is not None else 0
            entry = CacheEntry(
                plan=plan, source=source, generation=generation, plan_json=plan_json
            )
            self._entries[key] = entry
            # A tuned plan landing ends any SLO degradation in flight:
            # the parked entry is obsolete, restore() must not resurrect it.
            self._preswap.pop(key, None)
            self.telemetry.swap_event(
                key.label(),
                old_source=old.source if old is not None else "(empty)",
                new_source=source,
                generation=generation,
                stale_served=old.serve_count() if old is not None else 0,
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "plan_cache.swap",
                    key=key.label(),
                    old_source=old.source if old is not None else "(empty)",
                    new_source=source,
                    generation=generation,
                )
            return entry

    # -- SLO-driven plan selection ----------------------------------------

    def degrade(
        self,
        key: ServeKey,
        *,
        rungs: int = 1,
        observed_p99_s: float | None = None,
        target_p99_s: float | None = None,
        reason: str = "slo-breach",
        trace_id: str | None = None,
    ) -> CacheEntry | None:
        """Hot-swap ``key`` to a faster-but-coarser plan (SLO breach).

        The degraded entry keeps the tuned plan but caps its accuracy
        ladder ``rungs`` below the top index, so every request runs the
        plan's cheaper low-rung cycle — strictly faster than the tune's
        full-accuracy path, and instant to produce (no re-tune).  The
        replaced entry is parked for :meth:`restore`.  Idempotent: a key
        that is already degraded (or unknown) returns unchanged/None.

        The swap is stamped into the trial log with ``serve_swap``
        provenance (reason, observed vs target p99, the cap, and the
        trace id of the request that tripped the decision), the same
        durability contract stale-while-tune swaps have.
        """
        if rungs < 1:
            raise ValueError(f"rungs must be >= 1, not {rungs}")
        with self._lock:
            current = self._entries.get(key)
            if current is None or current.degraded:
                return current
            cap = max(0, current.plan.num_accuracies - 1 - rungs)
            entry = CacheEntry(
                plan=current.plan,
                source="slo_degraded",
                generation=current.generation + 1,
                plan_json=current.plan_json,
                degraded=True,
                accuracy_cap=cap,
            )
            self._preswap[key] = current
            self._entries[key] = entry
            self.telemetry.swap_event(
                key.label(),
                old_source=current.source,
                new_source=entry.source,
                generation=entry.generation,
                stale_served=current.serve_count(),
            )
        if self.tracer.enabled:
            self.tracer.event(
                "plan_cache.degrade",
                key=key.label(),
                generation=entry.generation,
                accuracy_cap=entry.accuracy_cap,
                observed_p99_s=observed_p99_s,
                target_p99_s=target_p99_s,
                trace_id=trace_id,
            )
        self._record_slo_swap(
            key, entry, reason=reason, observed_p99_s=observed_p99_s,
            target_p99_s=target_p99_s, trace_id=trace_id,
        )
        return entry

    def restore(
        self,
        key: ServeKey,
        *,
        observed_p99_s: float | None = None,
        target_p99_s: float | None = None,
        reason: str = "slo-recovered",
        trace_id: str | None = None,
    ) -> CacheEntry | None:
        """Swap the full-accuracy plan back after the SLO window recovers.

        Inverse of :meth:`degrade`; a key that is not currently degraded
        returns its entry unchanged.  Also stamped into the trial log.
        """
        with self._lock:
            current = self._entries.get(key)
            if current is None or not current.degraded:
                return current
            parked = self._preswap.pop(key)
            entry = CacheEntry(
                plan=parked.plan,
                source="slo_restored",
                generation=current.generation + 1,
                stale=parked.stale,
                plan_json=parked.plan_json,
            )
            self._entries[key] = entry
            self.telemetry.swap_event(
                key.label(),
                old_source=current.source,
                new_source=entry.source,
                generation=entry.generation,
                stale_served=current.serve_count(),
            )
        if self.tracer.enabled:
            self.tracer.event(
                "plan_cache.restore",
                key=key.label(),
                generation=entry.generation,
                observed_p99_s=observed_p99_s,
                target_p99_s=target_p99_s,
                trace_id=trace_id,
            )
        self._record_slo_swap(
            key, entry, reason=reason, observed_p99_s=observed_p99_s,
            target_p99_s=target_p99_s, trace_id=trace_id,
        )
        return entry

    def _record_slo_swap(
        self,
        key: ServeKey,
        entry: CacheEntry,
        *,
        reason: str,
        observed_p99_s: float | None,
        target_p99_s: float | None,
        trace_id: str | None = None,
    ) -> None:
        """Durably log an SLO swap as a trial row with ``serve_swap``
        provenance (best-effort: telemetry already has the event, and a
        full trial log must never take the serving path down)."""
        import json

        from repro.store.registry import build_provenance
        from repro.store.sink import plan_cycle_shape
        from repro.store.trialdb import TrialRecord
        from repro.tuner.config import plan_to_dict

        try:
            provenance = build_provenance(
                serve_swap={
                    "reason": reason,
                    "key": key.label(),
                    "generation": entry.generation,
                    "accuracy_cap": entry.accuracy_cap,
                    "observed_p99_s": observed_p99_s,
                    "target_p99_s": target_p99_s,
                    # the traced request whose completion triggered the
                    # swap decision (None when tracing is off)
                    "trace_id": trace_id,
                },
            )
            plan_json = entry.plan_json or json.dumps(
                plan_to_dict(entry.plan), sort_keys=True, separators=(",", ":")
            )
            self.registry.sink.record(
                TrialRecord(
                    kind=self.kind,
                    distribution=key.distribution,
                    operator=key.operator,
                    ndim=key.ndim if key.ndim is not None else 2,
                    backend=key.backend,
                    max_level=key.level,
                    accuracies=self.accuracies,
                    machine_fingerprint=key.fingerprint,
                    seed=self.seed,
                    instances=self.instances,
                    cycle_shape=plan_cycle_shape(entry.plan),
                    wall_seconds=0.0,
                    provenance=json.dumps(
                        provenance, sort_keys=True, separators=(",", ":")
                    ),
                    plan_json=plan_json,
                )
            )
        except Exception:
            self.telemetry.incr("swap_log_errors")

    def _install(self, key: ServeKey, entry: CacheEntry) -> CacheEntry:
        """Install a fresh (non-swap) entry, keeping any newer one."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and not existing.stale:
                return existing
            if existing is not None:
                entry = replace(entry, generation=existing.generation + 1)
            self._entries[key] = entry
            return entry
