"""Bounded request queue with shape/operator-bucketed micro-batching.

Admission control happens at the queue: when it is full, ``put``
raises :class:`Backpressure` immediately instead of blocking the
caller — a serving system degrades by shedding load, not by stalling
every client behind an unbounded backlog.

Batching happens at the exit: a worker takes the oldest request and
drains every other queued request with the *same bucket key* (machine,
operator, level, distribution), up to the batch cap.  Requests in one
batch share a plan lookup and a solver setup (per-level operator
instances, cached direct-solver factorizations), which is where the
amortization the server advertises actually comes from.  Requests for
other keys keep their queue order.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, Hashable, TypeVar

__all__ = ["Backpressure", "RequestQueue"]

T = TypeVar("T")


class Backpressure(RuntimeError):
    """The server's bounded queue is full; the request was not admitted.

    Carries ``depth`` and ``capacity`` so callers (and load generators)
    can implement retry-with-backoff without parsing messages.
    """

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"request queue is full ({depth}/{capacity}); retry later"
        )
        self.depth = depth
        self.capacity = capacity


class RequestQueue(Generic[T]):
    """Thread-safe bounded FIFO with same-key batch extraction."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, not {capacity}")
        self.capacity = capacity
        self._items: Deque[tuple[Hashable, T]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def put(self, key: Hashable, item: T) -> int:
        """Admit one request; returns the new depth.

        Raises :class:`Backpressure` when full and :class:`RuntimeError`
        when the queue is closed.
        """
        with self._not_empty:
            if self._closed:
                raise RuntimeError("request queue is closed")
            if len(self._items) >= self.capacity:
                raise Backpressure(len(self._items), self.capacity)
            self._items.append((key, item))
            depth = len(self._items)
            self._not_empty.notify()
            return depth

    def take_batch(self, max_size: int, timeout: float = 0.1) -> list[T] | None:
        """Remove and return the next same-key batch, oldest first.

        Blocks up to ``timeout`` for work; returns ``[]`` on timeout (so
        callers can re-check shutdown flags) and ``None`` exactly when
        the queue is closed *and* drained — the worker's signal to exit.
        """
        if max_size < 1:
            raise ValueError(f"batch size must be >= 1, not {max_size}")
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None if self._closed and not self._items else []
            head_key, head = self._items.popleft()
            batch = [head]
            if max_size > 1 and self._items:
                keep: list[tuple[Hashable, T]] = []
                for key, item in self._items:
                    if key == head_key and len(batch) < max_size:
                        batch.append(item)
                    else:
                        keep.append((key, item))
                self._items = deque(keep)
            return batch

    def drain(self) -> list[T]:
        """Remove and return everything queued (shutdown without drain)."""
        with self._not_empty:
            items = [item for _, item in self._items]
            self._items.clear()
            return items

    def close(self) -> None:
        """Refuse new work and wake blocked workers (idempotent)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        with self._lock:
            return len(self._items)
