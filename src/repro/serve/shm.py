"""Zero-copy payloads over POSIX shared memory (the sharded serving bus).

The sharded serving tier must move grids between the front-door process
and its shard workers without ever pickling an array: a level-7 grid is
~130 KB and the whole point of multi-process serving is to stop paying
per-request serialization on the hot path.  The mechanism is a
:class:`SlotPool` — one ``multiprocessing.shared_memory`` segment cut
into fixed-size slots, each laid out as

    [ b : n^ndim float64 ][ boundary : ring float64 ][ x : n^ndim float64 ]

The front door acquires a slot, writes the request payload (``b`` and
the Dirichlet boundary) directly into it, and sends the worker a small
control message naming (pool, slot, shape) — bytes of JSON, nothing
more.  The worker attaches NumPy *views* onto the same physical pages
(:func:`attach_problem`), solves **in place** into the slot's ``x``
region, and hands the slot token back.  The front door reads the
solution out and releases the slot.  No array crosses a pipe in either
direction.

Pools are sized per payload class (one pool per distinct (shape, dtype)
the traffic mix contains) and created lazily by the owner; workers
attach by name on first use.  Slot exhaustion is admission control:
``acquire`` returning ``None`` maps to :class:`~repro.serve.batching.
Backpressure` at the front door.
"""

from __future__ import annotations

import threading
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.grids.boundary import boundary_size, set_boundary_values

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.problem import PoissonProblem

__all__ = [
    "ShmAttachments",
    "SlotLayout",
    "SlotPool",
    "attach_problem",
    "attach_shared_memory",
    "reset_solution",
]

FLOAT64 = np.dtype(np.float64)


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker, which would unlink the owner's segment
    when the worker exits (CPython gh-82300).  Python 3.13 grew
    ``track=False`` for exactly this; on older interpreters the
    registration is suppressed by stubbing the tracker's ``register``
    for the duration of the attach (unregistering afterwards instead
    would double-count in the tracker, which logs spurious KeyErrors at
    exit).  Either way the owner — the front door — remains solely
    responsible for ``unlink``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SlotLayout:
    """Byte layout of one payload slot for a grid shape.

    All three regions are float64 (the solver's only dtype); offsets
    are computed identically on both sides of the pipe, so a (pool,
    slot, shape) triple fully determines where every array lives.
    """

    def __init__(self, shape: tuple[int, ...]) -> None:
        n = shape[0]
        ndim = len(shape)
        if any(s != n for s in shape):
            raise ValueError(f"grids are cubes; got shape {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.ndim = ndim
        self.grid_nbytes = int(np.prod(self.shape)) * FLOAT64.itemsize
        self.boundary_len = boundary_size(n, ndim)
        self.boundary_nbytes = self.boundary_len * FLOAT64.itemsize
        #: offsets of (b, boundary, x) within the slot
        self.b_offset = 0
        self.boundary_offset = self.grid_nbytes
        self.x_offset = self.grid_nbytes + self.boundary_nbytes
        self.slot_nbytes = 2 * self.grid_nbytes + self.boundary_nbytes

    def views(
        self, buf: memoryview, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(b, boundary, x) NumPy views onto slot ``slot`` of ``buf``.

        Views alias the shared pages directly — writing to them is the
        transport.  Callers mark the request-side views read-only before
        handing them to a solver.
        """
        base = slot * self.slot_nbytes
        b = np.frombuffer(
            buf, dtype=FLOAT64, count=int(np.prod(self.shape)),
            offset=base + self.b_offset,
        ).reshape(self.shape)
        boundary = np.frombuffer(
            buf, dtype=FLOAT64, count=self.boundary_len,
            offset=base + self.boundary_offset,
        )
        x = np.frombuffer(
            buf, dtype=FLOAT64, count=int(np.prod(self.shape)),
            offset=base + self.x_offset,
        ).reshape(self.shape)
        return b, boundary, x


class SlotPool:
    """Owner side: a shared-memory segment cut into ``slots`` slots.

    Thread-safe free-list allocation; ``acquire`` is non-blocking (a
    full pool is the admission-control signal, not a place to queue).
    The owner must call :meth:`close` (which unlinks) exactly once when
    serving stops; workers only ever attach and close, never unlink.
    """

    def __init__(self, shape: tuple[int, ...], slots: int = 32) -> None:
        if slots < 1:
            raise ValueError(f"pool needs >= 1 slot, not {slots}")
        self.layout = SlotLayout(shape)
        self.slots = slots
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.layout.slot_nbytes * slots
        )
        self._lock = threading.Lock()
        self._free = list(range(slots - 1, -1, -1))
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def acquire(self) -> int | None:
        """A free slot index, or ``None`` when the pool is exhausted."""
        with self._lock:
            if self._closed or not self._free:
                return None
            return self._free.pop()

    def release(self, slot: int) -> None:
        with self._lock:
            if self._closed:
                return
            if not 0 <= slot < self.slots or slot in self._free:
                raise ValueError(f"slot {slot} is not an acquired slot")
            self._free.append(slot)

    def in_use(self) -> int:
        with self._lock:
            return self.slots - len(self._free)

    def write_payload(self, slot: int, problem: "PoissonProblem") -> None:
        """Copy a problem's payload into ``slot`` (the only writes the
        owner performs on the request side)."""
        b, boundary, _ = self.layout.views(self._shm.buf, slot)
        np.copyto(b, problem.b)
        np.copyto(boundary, problem.boundary)

    def read_solution(self, slot: int) -> np.ndarray:
        """The solution the worker left in ``slot``, copied into a fresh
        caller-owned array (the slot is about to be reused)."""
        _, _, x = self.layout.views(self._shm.buf, slot)
        return x.copy()

    def views(self, slot: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.layout.views(self._shm.buf, slot)

    def close(self) -> None:
        """Release and destroy the segment (idempotent; owner only).

        Live views keep their pages mapped until they die — a caller
        still holding one sees it stay valid — but the segment's name is
        unlinked here either way, so the memory is reclaimed as soon as
        the last view goes.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
        try:
            self._shm.close()
        except BufferError:
            # A view outlives the pool: hand the mapping over to it.
            # The mmap object is kept alive by (and unmaps with) the
            # last view; dropping our handle's reference stops
            # ``SharedMemory.__del__`` from retrying close() later.
            self._shm._mmap = None  # type: ignore[attr-defined]
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ShmAttachments:
    """Worker side: cached attachments to the front door's pools.

    A worker sees a pool name for the first time inside a request
    message; the attachment is cached so every later request on that
    pool is a pure pointer computation.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()

    def buffer(self, name: str) -> memoryview:
        with self._lock:
            shm = self._segments.get(name)
            if shm is None:
                shm = self._segments[name] = attach_shared_memory(name)
            return shm.buf

    def close(self) -> None:
        with self._lock:
            for shm in self._segments.values():
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - views still alive
                    shm._mmap = None  # type: ignore[attr-defined]
            self._segments.clear()


def attach_problem(
    buf: memoryview,
    slot: int,
    shape: tuple[int, ...],
    operator: str,
    label: str,
) -> tuple["PoissonProblem", np.ndarray]:
    """Rebuild the request problem from a slot, zero-copy.

    Returns ``(problem, x_view)``: the problem's ``b``/``boundary`` are
    *read-only views* of the slot (``PoissonProblem`` shares read-only
    inputs instead of copying them — the zero-copy contract), and
    ``x_view`` is the writable solution region the solve runs in place
    into.
    """
    from repro.workloads.problem import PoissonProblem

    layout = SlotLayout(shape)
    b, boundary, x = layout.views(buf, slot)
    b.setflags(write=False)
    boundary.setflags(write=False)
    problem = PoissonProblem(b=b, boundary=boundary, label=label, operator=operator)
    return problem, x


def reset_solution(x: np.ndarray, boundary: np.ndarray) -> np.ndarray:
    """Initialize a slot's solution region to the canonical initial guess
    (zero interior, Dirichlet ring applied) — what ``initial_guess()``
    builds, but in place in shared memory."""
    x.fill(0.0)
    set_boundary_values(x, boundary)
    return x
